//! # causalmem — causal distributed shared memory
//!
//! A reproduction of *"Implementing and Programming Causal Distributed
//! Shared Memory"* (Hutto, Ahamad, John — ICDCS 1991): the simple owner
//! protocol for causal DSM, the atomic-DSM and causal-broadcast comparators
//! it is evaluated against, an executable specification of causal memory
//! (live sets per Definition 1, plus sequential-consistency and
//! session-guarantee checkers), a deterministic protocol simulator with an
//! exhaustive schedule explorer, and the paper's applications (iterative
//! linear solvers, the distributed dictionary, synchronization variables
//! on causal memory).
//!
//! This facade re-exports the workspace crates under stable module names.
//!
//! # Quickstart
//!
//! ```
//! use causalmem::causal::{CausalCluster, CausalConfig};
//! use causalmem::memcore::{Location, SharedMemory, Word};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 2 processes, 8 locations; locations are round-robin owned.
//! let cluster = CausalCluster::<Word>::builder(2, 8).build()?;
//! let p0 = cluster.handle(0);
//! let p1 = cluster.handle(1);
//!
//! p0.write(Location::new(0), Word::Int(42))?;
//! // P1 misses in its cache and fetches from the owner (P0).
//! assert_eq!(p1.read(Location::new(0))?, Word::Int(42));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shared vocabulary: identifiers, the [`SharedMemory`](memcore::SharedMemory)
/// trait, operation records and message statistics.
pub use memcore;

/// Vector timestamps.
pub use vclock;

/// The reliable FIFO message-passing substrate.
pub use simnet;

/// The paper's contribution: the Figure-4 owner protocol for causal DSM.
pub use causal_dsm as causal;

/// Durability: CRC-framed write-ahead log, checkpoints, crash recovery.
pub use dsm_durable as durable;

/// The strong-consistency baseline: a Li/Hudak-style atomic DSM.
pub use atomic_dsm as atomic;

/// The Figure-3 comparator: causally-ordered broadcast replica memory.
pub use broadcast_mem as broadcast;

/// Executable specification: live sets, causal and SC checkers.
pub use causal_spec as spec;

/// Deterministic discrete-event protocol simulator.
pub use dsm_sim as sim;

/// Typed causal objects over `SharedMemory`: PN-counter, observed-remove
/// set, map with pluggable merge policies, FIFO append-queue, and their
/// per-object sequential-spec oracles.
pub use dsm_objects as objects;

/// The paper's applications: linear solvers and the distributed dictionary.
pub use dsm_apps as apps;

/// Fault injection, the reliable-delivery session layer, and the chaos
/// suite.
pub use dsm_faults as faults;

/// The real network transport: TCP mesh, framing, the server/load
/// binaries' building blocks, and the loopback cluster harness.
pub use dsm_net as net;
