//! The Figure-6 solver on a network that misbehaves: 5% message drop on
//! every link plus one mid-run partition, masked by the `dsm-faults`
//! session layer. Prints the message and retransmission overhead against
//! the same solve on a healthy network.
//!
//! ```text
//! cargo run --example chaos
//! ```

use std::sync::Arc;

use causalmem::apps::{LinearSystem, SolverCoordinator, SolverLayout, SolverWorker};
use causalmem::causal::CausalConfig;
use causalmem::faults::{session_causal_sim, FaultInjector, FaultPlan, LinkFaults};
use causalmem::memcore::{kinds, StatsSnapshot, Word};
use causalmem::sim::{Actor, RunLimits, SimOpts};
use causalmem::simnet::latency::Constant;
use causalmem::simnet::FaultHook;

const WORKERS: usize = 4;
const PHASES: usize = 8;
const LATENCY: u64 = 5;
const RTO: u64 = 25;
const SEED: u64 = 7;

struct Run {
    residual: f64,
    time: u64,
    messages: StatsSnapshot,
}

/// One session-layered solver run, optionally under a fault plan.
fn solve(system: &LinearSystem, plan: Option<FaultPlan>) -> Run {
    let layout = SolverLayout::new(WORKERS);
    let config = CausalConfig::<Word>::builder(layout.nodes(), layout.locations())
        .owners(layout.owners())
        .const_pages(layout.const_pages())
        .build();
    let faults = plan.map(|p| Arc::new(FaultInjector::new(SEED, p)) as Arc<dyn FaultHook>);
    let mut sim = session_causal_sim(
        &config,
        RTO,
        SimOpts {
            latency: Box::new(Constant::new(LATENCY)),
            seed: SEED,
            faults,
            ..SimOpts::default()
        },
    );
    for i in 0..WORKERS {
        sim.set_client(i, SolverWorker::new(layout, i, PHASES));
    }
    sim.set_client(
        WORKERS,
        SolverCoordinator::new(layout, Arc::new(system.clone()), PHASES),
    );
    let report = sim.run(RunLimits::default());
    assert!(report.all_done, "solver wedged: {report:?}");
    let x: Vec<f64> = (0..WORKERS)
        .map(|i| {
            sim.actor(i)
                .peek(layout.x(i))
                .and_then(Word::as_float)
                .unwrap_or(f64::NAN)
        })
        .collect();
    Run {
        residual: system.residual(&x),
        time: report.time,
        messages: sim.messages().snapshot(),
    }
}

fn main() {
    let system = LinearSystem::random(WORKERS, 11);

    // Baseline: the session layer over a healthy network.
    let clean = solve(&system, None);

    // Chaos: 5% drop on every link, and a partition that splits workers
    // {0, 1} from the rest for a sixth of the baseline makespan, starting
    // a third of the way in.
    let start = clean.time / 3;
    let heal = start + clean.time / 6;
    let plan =
        FaultPlan::uniform(LinkFaults::dropping(0.05)).with_partition(start, heal, vec![0, 1]);
    println!(
        "Figure-6 solver, {WORKERS} workers x {PHASES} phases, link latency {LATENCY}, rto {RTO}"
    );
    println!(
        "fault plan: 5% drop per link, partition {{0,1}} | {{2,3,4}} during [{start}, {heal})\n"
    );
    let faulty = solve(&system, Some(plan));

    let overhead = |m: &StatsSnapshot| {
        (
            m.protocol_total(),
            m.kind_total(kinds::RETX),
            m.kind_total(kinds::DUP),
            m.kind_total(kinds::DROP),
            m.kind_total(kinds::ACK),
        )
    };
    let (cp, crx, cdup, cdrop, cack) = overhead(&clean.messages);
    let (fp, frx, fdup, fdrop, fack) = overhead(&faulty.messages);

    println!("            {:>12} {:>12}", "fault-free", "faulty");
    println!(
        "residual    {:>12.2e} {:>12.2e}",
        clean.residual, faulty.residual
    );
    println!("makespan    {:>12} {:>12}", clean.time, faulty.time);
    println!("protocol    {cp:>12} {fp:>12}");
    println!("RETX        {crx:>12} {frx:>12}");
    println!("DUP         {cdup:>12} {fdup:>12}");
    println!("DROP        {cdrop:>12} {fdrop:>12}");
    println!("ACK         {cack:>12} {fack:>12}");
    println!(
        "overhead    {:>11.1}% {:>11.1}%",
        100.0 * clean.messages.overhead_total() as f64 / cp as f64,
        100.0 * faulty.messages.overhead_total() as f64 / fp as f64
    );
    println!(
        "\nBoth runs solve the same system: the session layer re-derives the\n\
         reliable, ordered delivery the owner protocol assumes, at the cost of\n\
         {} retransmissions and a {}x makespan stretch.",
        frx - crx,
        (faulty.time as f64 / clean.time as f64 * 10.0).round() / 10.0
    );
}
