//! Quickstart: stand up a causal DSM, watch caching, invalidation and
//! weakly consistent behaviour happen.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use causalmem::causal::CausalCluster;
use memcore::{Location, SharedMemory, Word};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three processes sharing six locations. Ownership is round-robin:
    // P0 owns x0/x3, P1 owns x1/x4, P2 owns x2/x5.
    let cluster = CausalCluster::<Word>::builder(3, 6).build()?;
    let p0 = cluster.handle(0);
    let p1 = cluster.handle(1);
    let p2 = cluster.handle(2);

    let x0 = Location::new(0);
    let x1 = Location::new(1);

    // Owner writes are free: no messages at all.
    p0.write(x0, Word::Int(42))?;
    println!(
        "P0 wrote x0=42 locally; messages so far: {}",
        cluster.messages().snapshot().total()
    );

    // P1's first read of x0 misses and fetches from the owner (2 messages),
    // then caches: the second read is free.
    println!("P1 reads x0: {}", p1.read(x0)?);
    println!("P1 reads x0 again (cache hit): {}", p1.read(x0)?);
    println!("messages so far: {}", cluster.messages().snapshot().total());

    // Causal propagation: P1 writes x1 after seeing x0=42; when P2 reads
    // x1, its stale knowledge of anything older is invalidated, so P2 can
    // never observe x1's value without also being protected from stale
    // x0 reads.
    p1.write(x1, Word::Int(7))?;
    println!("P2 reads x1: {}", p2.read(x1)?);
    println!("P2 reads x0: {}", p2.read(x0)?);

    // Weak consistency in action: P0 updates x0, but P1's cached copy is
    // NOT eagerly invalidated (no communication happened) — that is the
    // efficiency causal memory buys. A fresh read consults the owner.
    p0.write(x0, Word::Int(43))?;
    println!("P1 still reads cached x0: {}", p1.read(x0)?);
    println!("P1 reads fresh x0:        {}", p1.read_fresh(x0)?);

    println!(
        "\nfinal message counters:\n{}",
        cluster.messages().snapshot()
    );
    Ok(())
}
