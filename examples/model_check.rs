//! Exhaustive schedule exploration: prove (not sample) that the owner
//! protocol is causally correct for a small program — every interleaving
//! of client steps and FIFO message deliveries is enumerated and its
//! recorded execution checked against Definition 2.
//!
//! ```text
//! cargo run --release --example model_check
//! ```

use causalmem::causal::CausalConfig;
use causalmem::sim::{explore_causal, ClientOp};
use memcore::{Location, Word};

fn main() {
    let x = Location::new(0);
    let z = Location::new(2);

    println!("program (the causal core of Figure 3):");
    println!("  P0: w(x)5");
    println!("  P1: r!(x) w(z)4");
    println!("  P2: r!(z) r!(x)\n");

    let config = CausalConfig::<Word>::builder(3, 3).build();
    let scripts = vec![
        vec![ClientOp::Write(x, Word::Int(5))],
        vec![ClientOp::ReadFresh(x), ClientOp::Write(z, Word::Int(4))],
        vec![ClientOp::ReadFresh(z), ClientOp::ReadFresh(x)],
    ];

    let report = explore_causal(&config, &scripts, 10_000_000);
    println!("states expanded    : {}", report.states);
    println!("complete schedules : {}", report.schedules);
    println!("fully enumerated   : {}", report.complete);
    match &report.violation {
        None => println!(
            "verdict            : every schedule satisfies Definition 2 — the\n\
             \x20                    Figure-3 anomaly is impossible on the owner protocol"
        ),
        Some((_, description)) => println!("VIOLATION FOUND     : {description}"),
    }
}
