//! The Figure-6 synchronous iterative linear solver, run on **both** the
//! causal and the atomic threaded DSM from identical source — the paper's
//! central programming claim — with the message bill printed for each.
//!
//! ```text
//! cargo run --example linear_solver
//! ```

use causalmem::apps::{publish_system, run_coordinator, run_worker, LinearSystem, SolverLayout};
use causalmem::atomic::{AtomicCluster, InvalMode};
use causalmem::causal::CausalCluster;
use memcore::{SharedMemory, Word};

const N: usize = 4;
const PHASES: usize = 30;

fn solve<M>(handles: Vec<M>, layout: SolverLayout, system: &LinearSystem) -> Vec<f64>
where
    M: SharedMemory<Word> + Send + Sync,
{
    let mut handles = handles;
    let coordinator = handles.pop().expect("coordinator handle");
    publish_system(&coordinator, &layout, system).expect("publish");
    std::thread::scope(|scope| {
        for (i, mem) in handles.iter().enumerate() {
            scope.spawn(move || run_worker(mem, &layout, i, PHASES).expect("worker"));
        }
        scope.spawn(|| run_coordinator(&coordinator, &layout, PHASES).expect("coordinator"));
    });
    (0..N)
        .map(|i| {
            handles[i]
                .read_fresh(layout.x(i))
                .expect("read")
                .as_float()
                .expect("float")
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = LinearSystem::random(N, 2026);
    let layout = SolverLayout::new(N);
    println!("solving a random {N}x{N} diagonally dominant system, {PHASES} Jacobi phases\n");

    // Causal memory, with A and b marked constant (footnote 2).
    let causal = CausalCluster::<Word>::builder(layout.nodes(), layout.locations())
        .configure(|c| c.owners(layout.owners()).const_pages(layout.const_pages()))
        .build()?;
    let x = solve(causal.handles(), layout, &system);
    println!("causal DSM   : x = {x:.5?}");
    println!("               residual = {:.2e}", system.residual(&x));
    println!(
        "               messages = {} ({} invalidations)",
        causal.messages().snapshot().total(),
        causal.total_invalidations()
    );

    // Atomic memory — the same solver source, strong consistency.
    let atomic = AtomicCluster::<Word>::builder(layout.nodes(), layout.locations())
        .configure(|c| {
            c.owners(layout.owners())
                .inval_mode(InvalMode::Acknowledged)
        })
        .build()?;
    let x = solve(atomic.handles(), layout, &system);
    println!("atomic DSM   : x = {x:.5?}");
    println!("               residual = {:.2e}", system.residual(&x));
    println!(
        "               messages = {} ({} invalidations)",
        atomic.messages().snapshot().total(),
        atomic.total_invalidations()
    );

    let reference = system.solve_jacobi(PHASES);
    println!("reference    : x = {reference:.5?}");
    println!(
        "\n(For the paper's exact 2n+6 vs 3n+5 per-processor counts, which need\n\
         ideal signaling instead of thread polling, run:\n\
         cargo run -p dsm-bench --bin repro -- solver)"
    );
    Ok(())
}
