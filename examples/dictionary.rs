//! The §4.2 distributed dictionary: synchronization-free inserts, deletes
//! and lookups across three processes, including the concurrent
//! delete-vs-reinsert conflict that owner-favored resolution settles.
//!
//! ```text
//! cargo run --example dictionary
//! ```

use causalmem::apps::{DictLayout, Dictionary};
use causalmem::causal::{CausalCluster, WritePolicy};
use causalmem::objects::ObjVal;
use causalmem::sim::witness::dictionary_conflict_witness;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layout = DictLayout::new(3, 16);
    let cluster = CausalCluster::<ObjVal>::builder(3, layout.locations())
        .configure(|c| c.owners(layout.owners()).policy(WritePolicy::OwnerFavored))
        .build()?;

    // Three processes insert concurrently — no synchronization: each owns
    // its own row.
    std::thread::scope(|scope| {
        for node in 0..3u32 {
            let handle = cluster.handle(node);
            scope.spawn(move || {
                let dict = Dictionary::new(handle, layout);
                for k in 1..=4 {
                    dict.insert(i64::from(node) * 10 + k).expect("insert");
                }
            });
        }
    });

    let d0 = Dictionary::new(cluster.handle(0), layout);
    let d1 = Dictionary::new(cluster.handle(1), layout);
    d0.refresh();
    let mut view = d0.items()?;
    view.sort_unstable();
    println!("P0's view after concurrent inserts: {view:?}");

    // Deletes may act on any row.
    d1.refresh();
    d1.delete(3)?;
    d1.delete(21)?;
    d0.refresh();
    let mut view = d0.items()?;
    view.sort_unstable();
    println!("P0's view after P1's deletes:       {view:?}");
    println!(
        "total protocol messages: {}\n",
        cluster.messages().snapshot().total()
    );

    // The §4.2 race, replayed deterministically.
    println!("the delete-vs-reinsert race (owner inserts 20 while a stale delete flies):");
    let favored = dictionary_conflict_witness(WritePolicy::OwnerFavored);
    println!(
        "  OwnerFavored : delete applied = {}, slot = {}",
        favored.delete_applied, favored.final_value
    );
    let arrival = dictionary_conflict_witness(WritePolicy::LastArrival);
    println!(
        "  LastArrival  : delete applied = {}, slot = {}  (the bug the policy prevents)",
        arrival.delete_applied, arrival.final_value
    );
    Ok(())
}
