//! Walk through the paper's figures with the executable specification:
//! causal relations (Fig. 1), live sets (Fig. 2), the broadcast separation
//! (Fig. 3) and the weakly consistent execution (Fig. 5).
//!
//! ```text
//! cargo run --example figures
//! ```

use causalmem::sim::witness::{figure3_broadcast_witness, figure5_owner_witness};
use causalmem::spec::paper::{self, fig1};
use causalmem::spec::{alpha, check_causal, check_sequential, CausalGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 1 — causal relations");
    println!("  P1: w(x)1 w(y)2 r(y)2 r(x)1");
    println!("  P2: w(z)1 r(y)2 r(x)1");
    let exec = paper::figure1();
    let graph = CausalGraph::build(&exec)?;
    println!(
        "  w1(x)1 and w2(z)1 concurrent? {}",
        graph.concurrent(fig1::W_X, fig1::W_Z)
    );
    println!(
        "  w1(x)1 →* r1(y)2?             {}",
        graph.precedes(fig1::W_X, fig1::R1_Y)
    );

    println!("\nFigure 2 — live sets α(o)");
    let exec = paper::figure2();
    let graph = CausalGraph::build(&exec)?;
    for (read, name, expected) in paper::figure2_expected_alphas() {
        let mut values = alpha(&exec, &graph, read).values(&exec, &0);
        values.sort_unstable();
        println!("  α({name}) = {values:?}  (paper: {expected:?})");
    }
    println!("  checker: {}", check_causal(&exec)?);

    println!("\nFigure 3 — causal broadcasting is not causal memory");
    let produced = figure3_broadcast_witness();
    let report = check_causal(&produced)?;
    println!(
        "  BSS broadcast memory produced the figure; causal checker: {} violation(s)",
        report.violations.len()
    );
    for v in &report.violations {
        println!("    {v}");
    }

    println!("\nFigure 5 — weak consistency from the owner protocol");
    let (exec, messages) = figure5_owner_witness();
    println!("  produced with {messages} messages");
    println!("  causal checker: {}", check_causal(&exec)?);
    println!(
        "  sequentially consistent? {}",
        check_sequential(&exec).is_consistent()
    );
    Ok(())
}
