//! E1, E2, E5 — the paper's worked figures, machine-checked end to end
//! through the public facade.

use causalmem::sim::witness::figure5_owner_witness;
use causalmem::spec::paper::{self, fig1};
use causalmem::spec::{alpha, check_causal, check_sequential, CausalGraph, ScVerdict};

#[test]
fn e1_figure1_causal_relations() {
    let exec = paper::figure1();
    let graph = CausalGraph::build(&exec).expect("well formed");

    // "the writes of x and z are concurrent"
    assert!(graph.concurrent(fig1::W_X, fig1::W_Z));
    // "w(x)1 →* r1(y)2"
    assert!(graph.precedes(fig1::W_X, fig1::R1_Y));
    // "r2(y)2 establishes causality by reading from w(y)2"
    assert!(graph.precedes(fig1::W_Y, fig1::R2_Y));
    // "...while r1(x)1 confirms the ordering w(x)1 →* r1(x)1"
    assert!(graph.precedes(fig1::W_X, fig1::R1_X));
    // Transitively, P2's read of x causally follows P1's write of x.
    assert!(graph.precedes(fig1::W_X, fig1::R2_X));
    // And the whole figure is a correct causal-memory execution.
    assert!(check_causal(&exec).unwrap().is_correct());
}

#[test]
fn e2_figure2_alpha_sets_match_the_paper_exactly() {
    let exec = paper::figure2();
    let graph = CausalGraph::build(&exec).expect("well formed");
    for (read, name, expected) in paper::figure2_expected_alphas() {
        let mut values = alpha(&exec, &graph, read).values(&exec, &0);
        values.sort_unstable();
        assert_eq!(values, expected, "α({name})");
    }
    let report = check_causal(&exec).unwrap();
    assert!(report.is_correct());
    assert_eq!(report.reads_checked, 5);
}

#[test]
fn e2_figure2_perturbations_are_caught() {
    // The paper says P2's second read of x "may correctly return only 4
    // or 9". Returning anything else must be flagged.
    for bad_value in [1i64, 2, 7] {
        let exec = causalmem::spec::Execution::<i64>::builder(3)
            .write(0, 0, 2)
            .write(0, 1, 2)
            .write(0, 1, 3)
            .write(1, 0, 1)
            .read(1, 1, 3)
            .write(1, 0, 7)
            .write(1, 2, 5)
            .read(0, 2, 5)
            .write(0, 0, 4)
            .read(2, 2, 5)
            .write(2, 0, 9)
            .read(1, 0, 4)
            .read(1, 0, bad_value)
            .build();
        let report = check_causal(&exec).unwrap();
        assert!(
            !report.is_correct(),
            "r2(x){bad_value} should violate causal memory"
        );
    }
}

#[test]
fn e5_figure5_owner_protocol_produces_weak_consistency() {
    let (exec, messages) = figure5_owner_witness();
    // The protocol really produced Figure 5's operation values.
    assert_eq!(exec.total_ops(), 6);
    // It is correct on causal memory...
    assert!(check_causal(&exec).unwrap().is_correct());
    // ...but no sequentially consistent memory could have produced it.
    assert_eq!(check_sequential(&exec), ScVerdict::Inconsistent);
    // And it needed only the two initial cache fills — no synchronization.
    assert_eq!(messages, 4);
}

#[test]
fn e5_transcribed_figure5_agrees_with_the_witness() {
    let transcribed = paper::figure5();
    assert!(check_causal(&transcribed).unwrap().is_correct());
    assert_eq!(check_sequential(&transcribed), ScVerdict::Inconsistent);
}
