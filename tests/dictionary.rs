//! E8 — the §4.2 distributed dictionary on the threaded causal engine:
//! view property, concurrent-operation safety, convergence, and the
//! owner-favored conflict resolution.

use causalmem::apps::{DictLayout, Dictionary};
use causalmem::causal::{CausalCluster, WritePolicy};
use causalmem::objects::ObjVal;
use causalmem::sim::witness::dictionary_conflict_witness;
use memcore::Word;

fn cluster(layout: DictLayout) -> CausalCluster<ObjVal> {
    CausalCluster::<ObjVal>::builder(layout.rows() as u32, layout.locations())
        .configure(|c| c.owners(layout.owners()).policy(WritePolicy::OwnerFavored))
        .build()
        .expect("cluster")
}

#[test]
fn view_property_knowledge_monotonicity() {
    // "after each communication, receiving (reading) processes know
    // everything about the dictionary known by the writing process at the
    // write operation."
    let layout = DictLayout::new(3, 8);
    let cluster = cluster(layout);
    let d0 = Dictionary::new(cluster.handle(0), layout);
    let d1 = Dictionary::new(cluster.handle(1), layout);
    let d2 = Dictionary::new(cluster.handle(2), layout);

    d0.insert(1).unwrap();
    d0.insert(2).unwrap();
    // P1 reads P0's row during lookup: it now knows 1 and 2.
    assert!(d1.lookup(1).unwrap());
    assert!(d1.lookup(2).unwrap());
    // P1 deletes 2 and inserts 3; P2 then looks up 3 — having seen P1's
    // insert, its view must also include the delete of 2 happening before.
    d1.delete(2).unwrap();
    d1.insert(3).unwrap();
    d2.refresh();
    assert!(d2.lookup(3).unwrap());
    assert!(!d2.lookup(2).unwrap(), "view must include the prior delete");
    assert!(d2.lookup(1).unwrap());
}

#[test]
fn concurrent_inserts_into_distinct_rows_never_conflict() {
    let layout = DictLayout::new(4, 32);
    let cluster = cluster(layout);
    std::thread::scope(|scope| {
        for node in 0..4u32 {
            let handle = cluster.handle(node);
            scope.spawn(move || {
                let dict = Dictionary::new(handle, layout);
                let base = i64::from(node) * 100;
                for k in 1..=20 {
                    assert!(dict.insert(base + k).unwrap());
                }
            });
        }
    });
    // Quiescent: every process converges to the same 80 items.
    for node in 0..4u32 {
        let dict = Dictionary::new(cluster.handle(node), layout);
        dict.refresh();
        let mut items = dict.items().unwrap();
        items.sort_unstable();
        assert_eq!(items.len(), 80, "node {node} sees all items");
        for owner in 0..4i64 {
            for k in 1..=20 {
                assert!(items.binary_search(&(owner * 100 + k)).is_ok());
            }
        }
    }
}

#[test]
fn concurrent_insert_delete_storm_converges() {
    // Each process inserts its items, deletes half of everyone's it can
    // see, re-inserts its own; after quiescence all views agree with the
    // owner's rows.
    let layout = DictLayout::new(3, 64);
    let cluster = cluster(layout);
    std::thread::scope(|scope| {
        for node in 0..3u32 {
            let handle = cluster.handle(node);
            scope.spawn(move || {
                let dict = Dictionary::new(handle, layout);
                let base = i64::from(node) * 1000;
                for k in 1..=10 {
                    dict.insert(base + k).unwrap();
                }
                dict.refresh();
                // Delete every even item currently visible (R2 holds: we
                // just saw them).
                for item in dict.items().unwrap() {
                    if item % 2 == 0 {
                        let _ = dict.delete(item).unwrap();
                    }
                }
            });
        }
    });
    // Convergence after quiescence: all views identical.
    let views: Vec<Vec<i64>> = (0..3u32)
        .map(|node| {
            let dict = Dictionary::new(cluster.handle(node), layout);
            dict.refresh();
            let mut items = dict.items().unwrap();
            items.sort_unstable();
            items
        })
        .collect();
    assert_eq!(views[0], views[1]);
    assert_eq!(views[1], views[2]);
    // No even item that was deleted-by-all survives alongside its deleter's
    // knowledge; odd items inserted and never deleted must all be present.
    for owner in 0..3i64 {
        for k in (1..=10).filter(|k| k % 2 == 1) {
            assert!(
                views[0].binary_search(&(owner * 1000 + k)).is_ok(),
                "odd item {} missing",
                owner * 1000 + k
            );
        }
    }
}

#[test]
fn papers_conflict_scenario_owner_wins() {
    let favored = dictionary_conflict_witness(WritePolicy::OwnerFavored);
    assert!(!favored.delete_applied, "stale delete must be rejected");
    assert_eq!(favored.final_value, Word::Int(20), "re-insert survives");

    // The counterfactual the policy prevents:
    let arrival = dictionary_conflict_witness(WritePolicy::LastArrival);
    assert!(arrival.delete_applied);
    assert_eq!(arrival.final_value, Word::Zero);
}

#[test]
fn deletes_of_unseen_items_are_noops() {
    let layout = DictLayout::new(2, 4);
    let cluster = cluster(layout);
    let d1 = Dictionary::new(cluster.handle(1), layout);
    assert!(!d1.delete(42).unwrap());
    assert!(!d1.lookup(42).unwrap());
}
