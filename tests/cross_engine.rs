//! The paper's programming claim, end to end on the threaded engines: the
//! same workload runs on all three memories, and the recorded causal
//! executions satisfy Definition 2 even under real thread interleavings.

use causalmem::apps::{WorkloadOp, WorkloadSpec};
use causalmem::atomic::{AtomicCluster, InvalMode};
use causalmem::broadcast::BroadcastCluster;
use causalmem::causal::CausalCluster;
use causalmem::spec::{check_causal, Execution};
use memcore::{Recorder, SharedMemory, Word};

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        nodes: 4,
        locations_per_node: 4,
        ops_per_node: 300,
        read_ratio: 0.6,
        locality: 0.4,
        seed: 17,
    }
}

fn run_threaded<M: SharedMemory<Word> + Send>(handles: Vec<M>, workload: &[Vec<WorkloadOp>]) {
    std::thread::scope(|scope| {
        for (mem, ops) in handles.into_iter().zip(workload) {
            scope.spawn(move || {
                for op in ops {
                    match op {
                        WorkloadOp::Read(loc) => {
                            mem.read(*loc).expect("read");
                        }
                        WorkloadOp::Write(loc, v) => {
                            mem.write(*loc, Word::Int(*v)).expect("write");
                        }
                    }
                }
            });
        }
    });
}

#[test]
fn threaded_causal_executions_satisfy_definition2() {
    // Real threads, real races — repeat to vary interleavings. (This
    // suite caught the in-flight-reply race; see docs/PROTOCOL.md.)
    for round in 0..12 {
        let spec = WorkloadSpec {
            seed: 17 + round,
            ..spec()
        };
        let recorder: Recorder<Word> = Recorder::new(spec.nodes);
        let cluster = CausalCluster::<Word>::builder(spec.nodes as u32, spec.locations())
            .recorder(recorder.clone())
            .build()
            .expect("cluster");
        run_threaded(cluster.handles(), &spec.generate());
        let exec = Execution::from_recorder(&recorder);
        let verdict = check_causal(&exec).expect("well formed");
        assert!(verdict.is_correct(), "round {round}:\n{verdict}");
        assert!(verdict.reads_checked > 0);
    }
}

#[test]
fn threaded_atomic_acknowledged_executions_satisfy_definition2() {
    let spec = spec();
    let recorder: Recorder<Word> = Recorder::new(spec.nodes);
    let cluster = AtomicCluster::<Word>::builder(spec.nodes as u32, spec.locations())
        .configure(|c| c.inval_mode(InvalMode::Acknowledged))
        .recorder(recorder.clone())
        .build()
        .expect("cluster");
    run_threaded(cluster.handles(), &spec.generate());
    let exec = Execution::from_recorder(&recorder);
    let verdict = check_causal(&exec).expect("well formed");
    assert!(verdict.is_correct(), "{verdict}");
}

#[test]
fn all_three_engines_run_the_same_workload_source() {
    let spec = spec();
    let workload = spec.generate();

    let causal = CausalCluster::<Word>::builder(spec.nodes as u32, spec.locations())
        .build()
        .expect("causal");
    run_threaded(causal.handles(), &workload);

    let atomic = AtomicCluster::<Word>::builder(spec.nodes as u32, spec.locations())
        .build()
        .expect("atomic");
    run_threaded(atomic.handles(), &workload);

    let broadcast =
        BroadcastCluster::<Word>::new(spec.nodes as u32, spec.locations()).expect("broadcast");
    let handles: Vec<_> = (0..spec.nodes as u32)
        .map(|i| broadcast.handle(i))
        .collect();
    run_threaded(handles, &workload);

    // Causal writes cost at most one owner round-trip; atomic writes add
    // invalidations; broadcast writes cost n−1 updates each. The ordering
    // of total message counts should reflect that for a write-heavy mix.
    let heavy = WorkloadSpec {
        read_ratio: 0.1,
        ..spec
    };
    let heavy_ops = heavy.generate();

    let causal = CausalCluster::<Word>::builder(heavy.nodes as u32, heavy.locations())
        .build()
        .expect("causal");
    run_threaded(causal.handles(), &heavy_ops);
    let causal_msgs = causal.messages().snapshot().total();

    let broadcast =
        BroadcastCluster::<Word>::new(heavy.nodes as u32, heavy.locations()).expect("broadcast");
    let handles: Vec<_> = (0..heavy.nodes as u32)
        .map(|i| broadcast.handle(i))
        .collect();
    run_threaded(handles, &heavy_ops);
    let broadcast_msgs = broadcast.messages().snapshot().total();

    assert!(
        causal_msgs < broadcast_msgs,
        "causal {causal_msgs} vs broadcast {broadcast_msgs} on write-heavy mix"
    );
}

#[test]
fn shutdown_is_clean_and_subsequent_ops_error() {
    let cluster = CausalCluster::<Word>::builder(2, 4)
        .build()
        .expect("cluster");
    let handle = cluster.handle(1);
    handle
        .write(memcore::Location::new(0), Word::Int(1))
        .unwrap();
    cluster.shutdown();
    // Local operations still work (owned or cached data needs no network)…
    assert_eq!(
        handle.read(memcore::Location::new(0)).unwrap(),
        Word::Int(1),
        "cached read survives shutdown"
    );
    assert!(handle.read(memcore::Location::new(1)).is_ok(), "owned read");
    // …but remote ones fail rather than hang.
    assert!(
        handle.read(memcore::Location::new(2)).is_err(),
        "uncached remote read after shutdown must error"
    );
    assert!(
        handle
            .write(memcore::Location::new(0), Word::Int(2))
            .is_err(),
        "remote write after shutdown must error"
    );
}
