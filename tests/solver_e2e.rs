//! E6 end-to-end — the *same* Figure-6 solver source runs on the threaded
//! causal and atomic engines and converges to the right answer; its
//! recorded causal execution satisfies Definition 2.

use causalmem::apps::{publish_system, run_coordinator, run_worker, LinearSystem, SolverLayout};
use causalmem::atomic::{AtomicCluster, InvalMode};
use causalmem::causal::CausalCluster;
use causalmem::spec::{check_causal, Execution};
use memcore::{Recorder, SharedMemory, Word};

const N: usize = 3;
const PHASES: usize = 25;

fn drive_solver<M>(handles: Vec<M>, layout: SolverLayout, system: &LinearSystem) -> Vec<f64>
where
    M: SharedMemory<Word> + Send + Sync + 'static,
{
    let mut handles = handles;
    let coordinator = handles.pop().expect("coordinator handle");
    publish_system(&coordinator, &layout, system).expect("publish A and b");

    std::thread::scope(|scope| {
        for (i, mem) in handles.iter().enumerate() {
            scope.spawn(move || run_worker(mem, &layout, i, PHASES).expect("worker"));
        }
        scope.spawn(|| run_coordinator(&coordinator, &layout, PHASES).expect("coordinator"));
    });

    (0..N)
        .map(|i| {
            handles[i]
                .read_fresh(layout.x(i))
                .expect("final read")
                .as_float()
                .expect("float")
        })
        .collect()
}

#[test]
fn solver_converges_on_threaded_causal_memory() {
    let system = LinearSystem::random(N, 31);
    let layout = SolverLayout::new(N);
    let recorder: Recorder<Word> = Recorder::new(layout.nodes() as usize);
    let cluster = CausalCluster::<Word>::builder(layout.nodes(), layout.locations())
        .configure(|c| c.owners(layout.owners()).const_pages(layout.const_pages()))
        .recorder(recorder.clone())
        .build()
        .expect("cluster");

    let x = drive_solver(cluster.handles(), layout, &system);
    let reference = system.solve_jacobi(PHASES);
    for (got, want) in x.iter().zip(&reference) {
        assert!((got - want).abs() < 1e-9, "causal: {got} vs {want}");
    }
    assert!(system.residual(&x) < 1e-6);

    // The entire threaded run satisfies Definition 2.
    let exec = Execution::from_recorder(&recorder);
    let report = check_causal(&exec).expect("well formed");
    assert!(report.is_correct(), "{report}");
    assert!(report.reads_checked > 100, "solver did real work");
}

#[test]
fn same_solver_source_converges_on_threaded_atomic_memory() {
    let system = LinearSystem::random(N, 32);
    let layout = SolverLayout::new(N);
    let cluster = AtomicCluster::<Word>::builder(layout.nodes(), layout.locations())
        .configure(|c| {
            c.owners(layout.owners())
                .inval_mode(InvalMode::Acknowledged)
        })
        .build()
        .expect("cluster");

    let x = drive_solver(cluster.handles(), layout, &system);
    let reference = system.solve_jacobi(PHASES);
    for (got, want) in x.iter().zip(&reference) {
        assert!((got - want).abs() < 1e-9, "atomic: {got} vs {want}");
    }
}

#[test]
fn causal_solver_uses_fewer_messages_than_atomic_threaded() {
    // Threaded engines poll, so counts are noisy — but the causal run
    // must still use fewer messages than the atomic one for the same
    // solve, because every atomic x-write pays the invalidation storm.
    let system = LinearSystem::random(N, 33);
    let layout = SolverLayout::new(N);

    let causal = CausalCluster::<Word>::builder(layout.nodes(), layout.locations())
        .configure(|c| c.owners(layout.owners()).const_pages(layout.const_pages()))
        .build()
        .expect("cluster");
    drive_solver(causal.handles(), layout, &system);
    let causal_msgs = causal.messages().snapshot().total();

    let atomic = AtomicCluster::<Word>::builder(layout.nodes(), layout.locations())
        .configure(|c| {
            c.owners(layout.owners())
                .inval_mode(InvalMode::Acknowledged)
        })
        .build()
        .expect("cluster");
    drive_solver(atomic.handles(), layout, &system);
    let atomic_msgs = atomic.messages().snapshot().total();

    // Polling makes both counts schedule-dependent; compare with slack.
    assert!(
        (causal_msgs as f64) < atomic_msgs as f64 * 1.5,
        "causal {causal_msgs} vs atomic {atomic_msgs}"
    );
}
