//! E4, strongest form — exhaustive schedule enumeration through the
//! public facade: every interleaving of small program shapes satisfies
//! Definition 2, on both the causal protocol and the atomic baseline.

use causalmem::atomic::{AtomicConfig, InvalMode};
use causalmem::causal::{CausalConfig, WritePolicy};
use causalmem::sim::{explore_atomic, explore_causal, ClientOp};
use memcore::{Location, Word};

fn loc(i: u32) -> Location {
    Location::new(i)
}

#[test]
fn every_schedule_of_the_figure3_core_is_causal() {
    let config = CausalConfig::<Word>::builder(3, 3).build();
    let scripts = vec![
        vec![ClientOp::Write(loc(0), Word::Int(5))],
        vec![
            ClientOp::ReadFresh(loc(0)),
            ClientOp::Write(loc(2), Word::Int(4)),
        ],
        vec![ClientOp::ReadFresh(loc(2)), ClientOp::ReadFresh(loc(0))],
    ];
    let report = explore_causal(&config, &scripts, 5_000_000);
    assert!(report.complete);
    assert!(report.schedules >= 2310, "got {}", report.schedules);
    assert!(report.all_correct());
}

#[test]
fn every_schedule_under_owner_favored_policy_is_causal() {
    // Concurrent remote writes against an owner write, all orders.
    let config = CausalConfig::<Word>::builder(2, 2)
        .policy(WritePolicy::OwnerFavored)
        .build();
    let scripts = vec![
        vec![
            ClientOp::Write(loc(0), Word::Int(1)),
            ClientOp::Read(loc(0)),
        ],
        vec![
            ClientOp::Write(loc(0), Word::Int(2)),
            ClientOp::ReadFresh(loc(0)),
        ],
    ];
    let report = explore_causal(&config, &scripts, 1_000_000);
    assert!(report.complete);
    assert!(
        report.all_correct(),
        "violation: {:?}",
        report.violation.map(|(_, v)| v)
    );
}

#[test]
fn every_schedule_of_paged_programs_is_causal() {
    // Page size 2: two locations share a page; all orders of mixed access.
    let config = CausalConfig::<Word>::builder(2, 4).page_size(2).build();
    let scripts = vec![
        vec![
            ClientOp::Write(loc(0), Word::Int(1)),
            ClientOp::ReadFresh(loc(2)),
        ],
        vec![
            ClientOp::Write(loc(2), Word::Int(2)),
            ClientOp::ReadFresh(loc(1)),
        ],
    ];
    let report = explore_causal(&config, &scripts, 1_000_000);
    assert!(report.complete);
    assert!(
        report.all_correct(),
        "violation: {:?}",
        report.violation.map(|(_, v)| v)
    );
}

#[test]
fn every_atomic_schedule_is_causal() {
    let config = AtomicConfig::<Word>::builder(2, 2)
        .inval_mode(InvalMode::Acknowledged)
        .build();
    let scripts = vec![
        vec![
            ClientOp::Write(loc(1), Word::Int(1)),
            ClientOp::ReadFresh(loc(1)),
        ],
        vec![
            ClientOp::Write(loc(1), Word::Int(2)),
            ClientOp::Read(loc(0)),
        ],
    ];
    let report = explore_atomic(&config, &scripts, 1_000_000);
    assert!(report.complete);
    assert!(
        report.all_correct(),
        "violation: {:?}",
        report.violation.map(|(_, v)| v)
    );
}
