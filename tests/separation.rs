//! E3 — the separations that place causal memory strictly between causal
//! broadcasting and sequential consistency.

use causalmem::causal::CausalConfig;
use causalmem::sim::witness::figure3_broadcast_witness;
use causalmem::sim::{broadcast_sim, causal_sim, RunLimits, Script, SimOpts};
use causalmem::sim::{Actor, ClientOp};
use causalmem::spec::paper;
use causalmem::spec::{check_causal, Execution};
use memcore::{Location, Recorder, Word};

#[test]
fn e3_broadcast_memory_admits_figure3() {
    let exec = figure3_broadcast_witness();
    let report = check_causal(&exec).expect("well formed");
    assert!(
        !report.is_correct(),
        "the broadcast memory produced an execution causal memory forbids"
    );
    // The violation is the paper's: P3's r(x)2 with 2 ∉ α.
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].read, paper::figure3_violating_read());
}

#[test]
fn e3_transcribed_figure3_is_rejected() {
    let report = check_causal(&paper::figure3()).unwrap();
    assert!(!report.is_correct());
}

/// The owner protocol, by contrast, cannot produce Figure 3: run the same
/// program shape under many random schedules and verify every recorded
/// execution satisfies Definition 2 (so in particular never Figure 3).
#[test]
fn e3_owner_protocol_never_produces_causal_violations_on_fig3_shape() {
    let (x, y, z) = (Location::new(0), Location::new(1), Location::new(2));
    for seed in 0..50u64 {
        let recorder: Recorder<Word> = Recorder::new(3);
        // 3 nodes, 3 locations, round-robin: P0 owns x, P1 owns y, P2 owns z.
        let config = CausalConfig::<Word>::builder(3, 3).build();
        let mut sim = causal_sim(
            &config,
            SimOpts {
                latency: Box::new(causalmem::simnet::latency::Uniform::new(1, 20)),
                seed,
                recorder: Some(recorder.clone()),
                ..SimOpts::default()
            },
        );
        // P0 plays Figure 3's P1; P1 plays P2; P2 plays P3 — with fresh
        // reads so values actually flow.
        sim.set_client(
            0,
            Script::new(vec![
                ClientOp::Write(x, Word::Int(5)),
                ClientOp::Write(y, Word::Int(3)),
            ]),
        );
        sim.set_client(
            1,
            Script::new(vec![
                ClientOp::Write(x, Word::Int(2)),
                ClientOp::ReadFresh(y),
                ClientOp::ReadFresh(x),
                ClientOp::Write(z, Word::Int(4)),
            ]),
        );
        sim.set_client(
            2,
            Script::new(vec![ClientOp::ReadFresh(z), ClientOp::ReadFresh(x)]),
        );
        let report = sim.run(RunLimits::default());
        assert!(report.all_done, "seed {seed}: {report:?}");
        let exec = Execution::from_recorder(&recorder);
        let verdict = check_causal(&exec).expect("well formed");
        assert!(
            verdict.is_correct(),
            "seed {seed}: owner protocol violated causal memory:\n{verdict}"
        );
    }
}

/// Sanity: the broadcast replica memory still yields *causally ordered*
/// deliveries — same-sender updates can never be reordered, so a
/// FIFO-violating outcome is impossible even there.
#[test]
fn broadcast_same_sender_updates_stay_ordered() {
    for seed in 0..20u64 {
        let recorder: Recorder<Word> = Recorder::new(2);
        let mut sim = broadcast_sim::<Word>(
            2,
            1,
            SimOpts {
                latency: Box::new(causalmem::simnet::latency::Uniform::new(1, 10)),
                seed,
                recorder: Some(recorder.clone()),
                ..SimOpts::default()
            },
        );
        let loc = Location::new(0);
        sim.set_client(
            0,
            Script::new(vec![
                ClientOp::Write(loc, Word::Int(1)),
                ClientOp::Write(loc, Word::Int(2)),
            ]),
        );
        let report = sim.run(RunLimits::default());
        assert!(report.all_done);
        // After both deliveries the replica must hold the second write.
        let final_value = sim.actor(1).peek(loc).unwrap();
        assert_eq!(final_value, Word::Int(2), "seed {seed}");
    }
}
