//! The boundary of the non-blocking-write enhancement, pinned by
//! exhaustive enumeration: **certification-before-knowledge-export is
//! load-bearing** in the owner protocol. A write whose certification is
//! still in flight can become causally known to third parties (through
//! the writer's subsequent operations), and a reader can then be *served*
//! a provably overwritten value by an owner that has not yet received the
//! write — no reader-side guard can fix a reply that is already stale.
//! This is presumably why Figure 4's writes block, and it scopes
//! `write_nonblocking` to uses where the written location is not read
//! through faster causal channels (e.g., results published once and
//! consumed via `wait_until`, which refetches).

use causalmem::causal::CausalConfig;
use causalmem::sim::{explore_causal, ClientOp};
use memcore::{Location, Word};

#[test]
fn nonblocking_knowledge_can_outrun_the_write() {
    let loc = Location::new;
    // P2 non-blockingly writes x0 (owned by P0), then writes its own x2;
    // P1 reads x2 fresh — causally absorbing the existence of the
    // in-flight write — then reads x0 fresh. In schedules where P0 has
    // not yet received the write, P1 is served the initial value while
    // provably knowing of its overwrite.
    let config = CausalConfig::<Word>::builder(3, 3).build();
    let scripts = vec![
        vec![],
        vec![ClientOp::ReadFresh(loc(2)), ClientOp::ReadFresh(loc(0))],
        vec![
            ClientOp::WriteNonblocking(loc(0), Word::Int(9)),
            ClientOp::Write(loc(2), Word::Int(7)),
        ],
    ];
    let report = explore_causal(&config, &scripts, 2_000_000);
    assert!(report.complete);
    assert!(
        report.violation.is_some(),
        "the non-blocking hazard should be reachable; if this fails, the \
         enhancement became sound — update the documentation!"
    );

    // The *blocking* protocol on the identical program shape is correct in
    // every schedule: the enhancement, not the protocol, is the culprit.
    let scripts = vec![
        vec![],
        vec![ClientOp::ReadFresh(loc(2)), ClientOp::ReadFresh(loc(0))],
        vec![
            ClientOp::Write(loc(0), Word::Int(9)),
            ClientOp::Write(loc(2), Word::Int(7)),
        ],
    ];
    let report = explore_causal(&config, &scripts, 2_000_000);
    assert!(report.complete);
    assert!(report.all_correct(), "blocking writes must be sound");
}
