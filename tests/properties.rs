//! E4 — the central correctness property: **every** execution the
//! Figure-4 owner protocol produces satisfies Definition 2, across random
//! workloads, schedules, latencies, page sizes, cache pressures,
//! invalidation modes and write policies. The atomic baseline (with
//! acknowledged invalidation) must satisfy it too — atomic memory is
//! causal memory.

use causalmem::atomic::{AtomicConfig, InvalMode};
use causalmem::causal::{CausalConfig, InvalidationMode, WritePolicy};
use causalmem::sim::{atomic_sim, causal_sim, ClientOp, RunLimits, Script, SimOpts};
use causalmem::simnet::latency::Uniform;
use causalmem::spec::{check_causal, check_sessions, Execution};
use memcore::{Location, Recorder, Word};
use proptest::prelude::*;

/// A random per-node operation script over a small namespace. Values are
/// made unique by a global counter so reads-from is unambiguous.
fn scripts_strategy(
    nodes: usize,
    locations: u32,
    ops_per_node: usize,
) -> impl Strategy<Value = Vec<Vec<ClientOp<Word>>>> {
    let op = (0u8..5, 0..locations);
    proptest::collection::vec(
        proptest::collection::vec(op, 1..=ops_per_node),
        nodes..=nodes,
    )
    .prop_map(move |raw| {
        let mut counter = 0i64;
        raw.into_iter()
            .map(|ops| {
                ops.into_iter()
                    .map(|(kind, loc)| {
                        let loc = Location::new(loc);
                        match kind {
                            0 => ClientOp::Read(loc),
                            1 => ClientOp::ReadFresh(loc),
                            2 => ClientOp::Discard(loc),
                            // Non-blocking writes are deliberately absent:
                            // they forfeit general causal correctness (see
                            // tests/nonblocking_limits.rs).
                            _ => {
                                counter += 1;
                                ClientOp::Write(loc, Word::Int(counter))
                            }
                        }
                    })
                    .collect()
            })
            .collect()
    })
}

fn run_causal_case(
    scripts: Vec<Vec<ClientOp<Word>>>,
    locations: u32,
    seed: u64,
    invalidation: InvalidationMode,
    policy: WritePolicy,
    page_size: u32,
    cache_capacity: Option<usize>,
) -> Result<(), TestCaseError> {
    let nodes = scripts.len() as u32;
    let recorder: Recorder<Word> = Recorder::new(nodes as usize);
    let mut builder = CausalConfig::<Word>::builder(nodes, locations)
        .page_size(page_size)
        .invalidation(invalidation)
        .policy(policy);
    if let Some(cap) = cache_capacity {
        builder = builder.cache_capacity(cap);
    }
    let config = builder.build();
    let mut sim = causal_sim(
        &config,
        SimOpts {
            latency: Box::new(Uniform::new(1, 16)),
            seed,
            recorder: Some(recorder.clone()),
            ..SimOpts::default()
        },
    );
    for (node, script) in scripts.into_iter().enumerate() {
        sim.set_client(node, Script::new(script));
    }
    let report = sim.run(RunLimits::default());
    prop_assert!(report.all_done, "simulation stuck: {report:?}");

    let exec = Execution::from_recorder(&recorder);
    let verdict = check_causal(&exec).expect("well formed execution");
    prop_assert!(
        verdict.is_correct(),
        "owner protocol violated Definition 2 (seed {seed}, {invalidation:?}, \
         {policy:?}, page {page_size}, cache {cache_capacity:?}):\n{verdict}"
    );

    Ok(())
}

/// Per-node scripts that only write locations the node owns (round-robin:
/// location `node + k·nodes`) — the single-writer discipline both §4
/// applications follow.
fn single_writer_scripts(
    nodes: usize,
    slots_per_node: u32,
    ops_per_node: usize,
) -> impl Strategy<Value = Vec<Vec<ClientOp<Word>>>> {
    let op = (0u8..5, 0..slots_per_node);
    proptest::collection::vec(
        proptest::collection::vec(op, 1..=ops_per_node),
        nodes..=nodes,
    )
    .prop_map(move |raw| {
        let mut counter = 0i64;
        raw.into_iter()
            .enumerate()
            .map(|(node, ops)| {
                ops.into_iter()
                    .map(|(kind, slot)| {
                        let own = Location::new(node as u32 + slot * nodes as u32);
                        let other =
                            Location::new(((node + 1) % nodes) as u32 + slot * nodes as u32);
                        match kind {
                            0 => ClientOp::Read(own),
                            1 => ClientOp::Read(other),
                            2 => ClientOp::ReadFresh(other),
                            _ => {
                                counter += 1;
                                ClientOp::Write(own, Word::Int(counter))
                            }
                        }
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Paper-exact protocol, page size 1.
    #[test]
    fn causal_protocol_satisfies_definition2(
        scripts in scripts_strategy(3, 6, 14),
        seed in 0u64..1_000,
    ) {
        run_causal_case(
            scripts, 6, seed,
            InvalidationMode::PaperExact, WritePolicy::LastArrival, 1, None,
        )?;
    }

    /// Writer-side invalidation (ablation A1) stays correct.
    #[test]
    fn writer_invalidate_mode_satisfies_definition2(
        scripts in scripts_strategy(3, 6, 12),
        seed in 0u64..1_000,
    ) {
        run_causal_case(
            scripts, 6, seed,
            InvalidationMode::WriterInvalidate, WritePolicy::LastArrival, 1, None,
        )?;
    }

    /// Owner-favored resolution rejects some writes but never breaks
    /// causal correctness.
    #[test]
    fn owner_favored_policy_satisfies_definition2(
        scripts in scripts_strategy(3, 6, 12),
        seed in 0u64..1_000,
    ) {
        run_causal_case(
            scripts, 6, seed,
            InvalidationMode::PaperExact, WritePolicy::OwnerFavored, 1, None,
        )?;
    }

    /// Page granularity (the §3.2 enhancement) stays correct.
    #[test]
    fn paged_protocol_satisfies_definition2(
        scripts in scripts_strategy(3, 8, 12),
        seed in 0u64..1_000,
        page_size in prop_oneof![Just(2u32), Just(4u32)],
    ) {
        run_causal_case(
            scripts, 8, seed,
            InvalidationMode::PaperExact, WritePolicy::LastArrival, page_size, None,
        )?;
    }

    /// Severe cache pressure (capacity 1: constant discarding) stays
    /// correct — the paper's `discard` may run "under a variety of
    /// circumstances".
    #[test]
    fn tiny_cache_satisfies_definition2(
        scripts in scripts_strategy(3, 6, 12),
        seed in 0u64..1_000,
    ) {
        run_causal_case(
            scripts, 6, seed,
            InvalidationMode::PaperExact, WritePolicy::LastArrival, 1, Some(1),
        )?;
    }

    /// With a single writer per location (the discipline both §4
    /// applications follow), the protocol additionally provides
    /// read-your-writes and monotonic reads — the session guarantees that
    /// concurrent conflicting writes necessarily forfeit.
    #[test]
    fn single_writer_workloads_get_session_guarantees(
        scripts in single_writer_scripts(3, 2, 14),
        seed in 0u64..1_000,
    ) {
        let nodes = scripts.len() as u32;
        let recorder: Recorder<Word> = Recorder::new(nodes as usize);
        let config = CausalConfig::<Word>::builder(nodes, 6).build();
        let mut sim = causal_sim(
            &config,
            SimOpts {
                latency: Box::new(Uniform::new(1, 16)),
                seed,
                recorder: Some(recorder.clone()),
                ..SimOpts::default()
            },
        );
        for (node, script) in scripts.into_iter().enumerate() {
            sim.set_client(node, Script::new(script));
        }
        let report = sim.run(RunLimits::default());
        prop_assert!(report.all_done, "simulation stuck: {report:?}");
        let exec = Execution::from_recorder(&recorder);
        prop_assert!(check_causal(&exec).expect("well formed").is_correct());
        let sessions = check_sessions(&exec).expect("well formed");
        prop_assert!(
            sessions.is_empty(),
            "session guarantee broken (seed {seed}): {sessions:?}"
        );
    }

    /// Atomic memory (acknowledged invalidation) is causal memory too:
    /// its executions satisfy the weaker Definition 2 as well.
    #[test]
    fn acknowledged_atomic_satisfies_definition2(
        scripts in scripts_strategy(3, 6, 12),
        seed in 0u64..1_000,
    ) {
        let nodes = scripts.len() as u32;
        let recorder: Recorder<Word> = Recorder::new(nodes as usize);
        let config = AtomicConfig::<Word>::builder(nodes, 6)
            .inval_mode(InvalMode::Acknowledged)
            .build();
        let mut sim = atomic_sim(
            &config,
            SimOpts {
                latency: Box::new(Uniform::new(1, 16)),
                seed,
                recorder: Some(recorder.clone()),
                ..SimOpts::default()
            },
        );
        for (node, script) in scripts.into_iter().enumerate() {
            sim.set_client(node, Script::new(script));
        }
        let report = sim.run(RunLimits::default());
        prop_assert!(report.all_done, "simulation stuck: {report:?}");
        let exec = Execution::from_recorder(&recorder);
        let verdict = check_causal(&exec).expect("well formed");
        prop_assert!(verdict.is_correct(), "seed {seed}:\n{verdict}");
    }
}
