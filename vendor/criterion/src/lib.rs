//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock harness with criterion's API shape: groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` entry points. Each benchmark
//! runs a short warm-up, then `sample_size` timed samples, and prints
//! median per-iteration time (plus throughput when annotated). No
//! statistics engine, baselines, or HTML reports.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// Work-per-iteration annotation for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Combines a function name and a displayed parameter.
    #[must_use]
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Uses a parameter alone as the identifier.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId { text: text.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    /// Median per-iteration nanoseconds of the last `iter` call.
    last_median_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via [`black_box`].
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size the measured batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget_ns = self.measurement.as_nanos() as f64 / self.samples as f64;
        let batch = ((budget_ns / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.last_median_ns = sample_ns[sample_ns.len() / 2];
    }
}

/// A named set of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Annotates subsequent benchmarks with work per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.text, |bencher| f(bencher));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.text, |bencher| f(bencher, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: self.samples,
            last_median_ns: f64::NAN,
        };
        f(&mut bencher);
        let median = bencher.last_median_ns;
        let mut line = format!("{}/{id}: {}", self.name, format_ns(median));
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if median.is_finite() && median > 0.0 {
                let rate = count as f64 / (median / 1e9);
                line.push_str(&format!("  ({rate:.3e} {unit}/s)"));
            }
        }
        println!("{line}");
    }

    /// Ends the group (report separator).
    pub fn finish(&mut self) {
        println!();
    }
}

fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "<no samples>".to_string()
    } else if ns < 1e3 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1e6 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else {
        format!("{:.3} s/iter", ns / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    default_warm_up: Duration,
    default_measurement: Duration,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_secs(1),
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (warm_up, measurement, samples) = (
            self.default_warm_up,
            self.default_measurement,
            self.default_samples,
        );
        BenchmarkGroup {
            name: name.into(),
            warm_up,
            measurement,
            samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, |b| f(b));
        self
    }

    /// Applies configuration from the environment (no-op stand-in).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; do nothing
            // there so test runs stay fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(10));
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut criterion = Criterion::default();
        trivial(&mut criterion);
    }

    #[test]
    fn ids_format_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("update", 32).text, "update/32");
        assert_eq!(BenchmarkId::from_parameter(7).text, "7");
    }
}
