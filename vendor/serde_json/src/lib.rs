//! Offline stand-in for `serde_json`: JSON text over the `serde`
//! stand-in's [`Value`] tree. Supports the workspace's API surface:
//! [`to_string`], [`to_string_pretty`], [`from_str`].

#![forbid(unsafe_code)]

use std::fmt;

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// JSON (de)serialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::msg("non-finite float has no JSON representation"));
            }
            // `{:?}` gives Rust's shortest round-trip form, always with a
            // `.` or exponent so the parser reads it back as a float.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_break(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                write_break(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected byte `{}` at position {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let unit = self.parse_hex4()?;
                if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if !(self.eat_literal("\\u")) {
                        return Err(Error::msg("unpaired surrogate"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(Error::msg("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(code).ok_or_else(|| Error::msg("invalid surrogate pair"))?
                } else {
                    char::from_u32(unit).ok_or_else(|| Error::msg("invalid \\u escape"))?
                }
            }
            other => return Err(Error::msg(format!("unknown escape `\\{}`", other as char))),
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let text = std::str::from_utf8(hex).map_err(|_| Error::msg("invalid \\u escape"))?;
        let unit = u32::from_str_radix(text, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        let x = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&x).unwrap()).unwrap(), x);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "a \"quoted\"\\ line\nwith\ttabs and \u{1}control".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\u00e9\\uD83D\\uDE00\"").unwrap(),
            "é😀"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u64, 2], vec![], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u64>>>(&json).unwrap(), v);
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), Some(7i64));
        m.insert("none".to_string(), None);
        let json = to_string(&m).unwrap();
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, Option<i64>>>(&json).unwrap(),
            m
        );
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u64], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
