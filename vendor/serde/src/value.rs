//! The self-describing value tree all (de)serialization routes through.

/// A self-describing serialized value.
///
/// Maps use a `Vec` of pairs (not a `BTreeMap`) so struct-field order is
/// preserved exactly as emitted by the derive.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent / `None` / JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (full `u64` range).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered key/value map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an in-range integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any numeric variant.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::U64(5).as_i64(), Some(5));
        assert_eq!(Value::I64(-5).as_u64(), None);
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
        assert_eq!(Value::I64(3).as_f64(), Some(3.0));
    }

    #[test]
    fn map_get_preserves_order_and_finds_keys() {
        let m = Value::Map(vec![
            ("b".into(), Value::U64(1)),
            ("a".into(), Value::U64(2)),
        ]);
        assert_eq!(m.get("a"), Some(&Value::U64(2)));
        assert_eq!(m.get("missing"), None);
    }
}
