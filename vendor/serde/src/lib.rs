//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor architecture, this stand-in routes all
//! (de)serialization through one self-describing [`value::Value`] tree —
//! exactly expressive enough for the JSON round trips the workspace
//! performs. `#[derive(Serialize, Deserialize)]` is provided by the
//! sibling `serde_derive` stand-in and targets these traits.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use value::Value;

/// Deserialization failed: shape or type mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error carrying `msg`.
    #[must_use]
    pub fn msg(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the self-describing [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value from the tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape doesn't match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::msg("expected unsigned integer"))?;
                <$t>::try_from(raw).map_err(|_| DeError::msg("unsigned integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::msg("expected signed integer"))?;
                <$t>::try_from(raw).map_err(|_| DeError::msg("signed integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::msg("expected float"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::msg("expected float"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(DeError::msg("expected 2-element sequence")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::msg("expected map")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::msg("expected map")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 17, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()), Ok(v));
        }
        for v in [i64::MIN, -1, 0, i64::MAX] {
            assert_eq!(i64::from_value(&v.to_value()), Ok(v));
        }
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&2.5f64.to_value()), Ok(2.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let o = Some(5i64);
        assert_eq!(Option::<i64>::from_value(&o.to_value()), Ok(o));
        assert_eq!(Option::<i64>::from_value(&None::<i64>.to_value()), Ok(None));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        assert_eq!(BTreeMap::from_value(&m.to_value()), Ok(m));
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }
}
