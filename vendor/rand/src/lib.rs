//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: the [`RngCore`] object-safe
//! core, the [`Rng`] extension trait (`gen_range`, `gen_bool`, `gen`), the
//! [`SeedableRng`] constructor trait with the SplitMix64-based
//! `seed_from_u64`, a xoshiro256++ [`rngs::StdRng`], and a deterministic
//! [`thread_rng`]. Sequences are self-consistent (same seed, same
//! stream) but are not bit-compatible with the real crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The object-safe core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let raw = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&raw[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Types drawable via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u8 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u32 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(&mut *self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws a value of a [`Standard`]-drawable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(&mut *self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` by expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let raw = sm.next().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Offline stand-in for OS entropy: a fixed distinguished seed.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5eed_cafe_f00d_d00d)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Stock generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// A xoshiro256++ generator: the stand-in's default `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                let mut sm = SplitMix64 { state: 1 };
                for slot in &mut s {
                    *slot = sm.next();
                }
            }
            StdRng { s }
        }
    }

    /// The deterministic process-local generator behind
    /// [`thread_rng`](super::thread_rng).
    pub type ThreadRng = StdRng;
}

/// A fresh generator seeded from a process-local counter (deterministic
/// per call index — this stand-in has no OS entropy source).
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CALLS: AtomicU64 = AtomicU64::new(0);
    let n = CALLS.fetch_add(1, Ordering::Relaxed);
    SeedableRng::seed_from_u64(0x7452_6e67_0000_0000 ^ n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynr: &mut dyn RngCore = &mut rng;
        let v = dynr.gen_range(0..10u64);
        assert!(v < 10);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
