//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the wire codec uses: an immutable, cheaply
//! sliceable [`Bytes`], a growable [`BytesMut`], and the [`Buf`]/[`BufMut`]
//! accessor traits with network-order (big-endian) integer helpers.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

macro_rules! get_be {
    ($self:ident, $t:ty, $n:expr) => {{
        let mut raw = [0u8; $n];
        raw.copy_from_slice(&$self.chunk()[..$n]);
        $self.advance($n);
        <$t>::from_be_bytes(raw)
    }};
}

macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &b in self.as_ref() {
                write!(f, "\\x{b:02x}")?;
            }
            write!(f, "\"")
        }
    };
}

/// An immutable, reference-counted byte buffer supporting cheap slicing.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied; the stand-in keeps one code path).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of readable bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` iff no bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-slice sharing the same backing storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        let len = vec.len();
        Bytes {
            data: vec.into(),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// `true` iff nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.vec.extend_from_slice(slice);
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        BytesMut {
            vec: self.vec.drain(..at).collect(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

/// Read access to a byte buffer with big-endian integer accessors.
///
/// The `get_*` methods panic when fewer bytes remain than the value
/// requires, matching the real crate; decoders check [`Buf::remaining`]
/// first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The readable byte slice.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// `true` iff any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        get_be!(self, u16, 2)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        get_be!(self, u32, 4)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        get_be!(self, u64, 8)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        get_be!(self, i64, 8)
    }

    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.vec.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.vec
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.vec.len(), "advance out of bounds");
        self.vec.drain(..cnt);
    }
}

/// Write access to a byte buffer with big-endian integer appenders.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.vec.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(u64::MAX - 1);
        buf.put_i64(-5);
        buf.put_f64(2.5);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 1 + 4 + 8 + 8 + 8);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64(), u64::MAX - 1);
        assert_eq!(bytes.get_i64(), -5);
        assert_eq!(bytes.get_f64(), 2.5);
        assert!(bytes.is_empty());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let bytes = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(bytes.slice(1..3), [2u8, 3][..]);
        let mut rest = bytes.clone();
        let head = rest.split_to(2);
        assert_eq!(head, [1u8, 2][..]);
        assert_eq!(rest, [3u8, 4, 5][..]);
    }

    #[test]
    #[should_panic(expected = "advance out of bounds")]
    fn over_advance_panics() {
        let mut bytes = Bytes::from(vec![1]);
        bytes.advance(2);
    }

    #[test]
    fn bytes_mut_split_and_advance() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[1, 2, 3, 4, 5]);
        let head = buf.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        buf.advance(1);
        assert_eq!(&buf[..], &[4, 5]);
    }
}
