//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `parking_lot`'s API it actually
//! uses: [`Mutex`] and [`RwLock`] with the poison-free guard-returning
//! API. Backed by `std::sync` primitives; a poisoned lock is recovered
//! rather than propagated, matching `parking_lot`'s no-poisoning
//! semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
