//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements [`ChaCha8Rng`]: a real ChaCha stream cipher with 8 rounds
//! used as a deterministic, high-quality seeded generator. Same seed,
//! same stream — the property every deterministic-replay test in this
//! workspace depends on. (Word order is self-consistent but not
//! guaranteed bit-identical to the real crate.)

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8-based seeded random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    block: [u32; 16],
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Selects an independent stream (distinct nonce) for the same seed.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (slot, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *slot = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
