//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`boxed`, `any::<T>()`, range and tuple strategies,
//! [`collection::vec`], [`option::of`], `Just`, `prop_oneof!`, and the
//! `proptest!` test macro with `#![proptest_config(...)]`. Cases are
//! generated from a seed derived from the test name, so every run (and
//! every failure report) is deterministic. No shrinking: a failing case
//! reports its case index and seed instead of a minimized input.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen_one(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_one(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_one(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_one(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_one(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_one(&self, rng: &mut TestRng) -> T {
        self.0.gen_one(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps the alternatives; panics if empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_one(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].gen_one(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let magnitude = (unit * 600.0) - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
        sign * magnitude.exp2()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_one(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_one(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_one(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_one(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_one(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_one(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An element-count specification for [`vec()`](fn@vec).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    /// A strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.gen_one(rng)).collect()
        }
    }

    /// Vectors of values from `element`, sized per `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.gen_one(rng))
            }
        }
    }

    /// `None` a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// A failed proptest case's report. The stand-in represents it as the
/// failure message itself (real proptest uses a richer enum).
pub type TestCaseError = String;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives one property: `cases` seeded iterations of `body`.
///
/// Not part of proptest's public API — the expansion target of the
/// [`proptest!`] macro.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first case whose body
/// returns `Err`, reporting the case index and its seed.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let base = fnv1a(name);
    for case in 0..config.cases {
        let seed = base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(msg) = body(&mut rng) {
            panic!("proptest `{name}` failed at case {case} (seed {seed:#x}):\n{msg}");
        }
    }
}

/// Re-exports matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines seeded property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            $crate::run_proptest(&$cfg, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::gen_one(&($strategy), __proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the current proptest case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}`",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Fails the current proptest case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err(format!(
                "assertion failed: `{} != {}`",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        use rand::SeedableRng as _;
        for _ in 0..500 {
            let v = (3u32..9).gen_one(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        use rand::SeedableRng as _;
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.gen_one(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn vec_sizes_in_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        fn tuples_and_maps_compose(
            (a, b) in (0u32..10, any::<bool>()),
            w in (0u64..100).prop_map(|x| x * 2),
        ) {
            prop_assert!(a < 10);
            prop_assert_eq!(w % 2, 0);
            let _ = b;
        }
    }

    #[test]
    fn same_name_same_sequence() {
        let mut first = Vec::new();
        crate::run_proptest(&ProptestConfig::with_cases(5), "stable", |rng| {
            first.push((0u64..1000).gen_one(rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_proptest(&ProptestConfig::with_cases(5), "stable", |rng| {
            second.push((0u64..1000).gen_one(rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
