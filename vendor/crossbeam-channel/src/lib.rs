//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! Provides the unbounded MPSC subset the workspace uses: cloneable
//! senders, a receiver with blocking / non-blocking / timed receives and
//! `len`, and disconnect detection on both ends. FIFO per producer (and
//! globally, since a single queue backs the channel).

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The receiver disconnected before the message could be delivered.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// All senders disconnected and the channel is drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Why a non-blocking receive returned nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders disconnected and the channel is drained.
    Disconnected,
}

/// Why a timed receive returned nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// All senders disconnected and the channel is drained.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `msg`, failing only if the receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        if !state.receiver_alive {
            return Err(SendError(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// `true` iff no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender(..)")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        match state.queue.pop_front() {
            Some(msg) => Ok(msg),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// `true` iff no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receiver_alive = false;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn timeout_elapses_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        t.join().unwrap();
    }
}
