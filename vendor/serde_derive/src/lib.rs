//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the item token stream (no `syn`/`quote` available offline)
//! and emits `serde::Serialize` / `serde::Deserialize` impls targeting the
//! stand-in's value-tree model. Supports the shapes this workspace uses:
//! named structs, tuple structs, and enums whose variants are unit or carry
//! one unnamed field; generics as plain type parameters (e.g. `<V>`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree stand-in).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize` (value-tree stand-in).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    Enum { variants: Vec<(String, bool)> },
}

struct Item {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attributes (including doc comments).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips `pub` / `pub(crate)` / `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected identifier, found {other:?}"),
        }
    }

    /// Parses `<A, B: Bound, ...>` if present, returning the parameter names.
    fn parse_generics(&mut self) -> Vec<String> {
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
            _ => return Vec::new(),
        }
        self.pos += 1;
        let mut params = Vec::new();
        let mut depth = 1usize;
        let mut want_name = true;
        while let Some(tok) = self.next() {
            match tok {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => want_name = true,
                    ':' if depth == 1 => want_name = false,
                    _ => {}
                },
                TokenTree::Ident(id) if want_name && depth == 1 => {
                    params.push(id.to_string());
                    want_name = false;
                }
                _ => {}
            }
        }
        params
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let keyword = c.expect_ident();
    let name = c.expect_ident();
    let generics = c.parse_generics();
    let shape = match (keyword.as_str(), c.next()) {
        ("struct", Some(TokenTree::Group(body))) if body.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct {
                fields: parse_named_fields(body.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(body))) if body.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct {
                arity: count_tuple_fields(body.stream()),
            }
        }
        ("enum", Some(TokenTree::Group(body))) if body.delimiter() == Delimiter::Brace => {
            Shape::Enum {
                variants: parse_variants(body.stream()),
            }
        }
        (kw, tok) => panic!("unsupported item shape: {kw} followed by {tok:?}"),
    };
    Item {
        name,
        generics,
        shape,
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        fields.push(c.expect_ident());
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Consume the type up to a top-level (angle-depth 0) comma.
        let mut depth = 0i32;
        while let Some(tok) = c.next() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tok in body {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => fields += 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount by one, but `f64::NAN`-style paths
    // can't appear here and the workspace writes no trailing commas in
    // tuple structs; count separators + 1 when any tokens were present.
    if saw_tokens {
        fields + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Vec<(String, bool)> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let mut has_payload = false;
        if let Some(TokenTree::Group(g)) = c.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                has_payload = true;
                c.pos += 1;
            }
        }
        variants.push((name, has_payload));
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == ',' {
                c.pos += 1;
            }
        }
    }
    variants
}

/// `impl<V: ::serde::Trait> ::serde::Trait for Name<V>` header pieces.
fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let plain = item.generics.join(", ");
        (
            format!("<{}>", bounded.join(", ")),
            format!("{}<{}>", item.name, plain),
        )
    }
}

fn emit_serialize(item: &Item) -> String {
    let (impl_generics, self_ty) = impl_header(item, "Serialize");
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::value::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct { arity: 1 } => {
            // Newtype structs serialize transparently, like real serde.
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::TupleStruct { arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Seq(vec![{}])", entries.join(", "))
        }
        Shape::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(name, has_payload)| {
                    if *has_payload {
                        format!(
                            "Self::{name}(inner) => ::serde::value::Value::Map(vec![(\"{name}\".to_string(), ::serde::Serialize::to_value(inner))])"
                        )
                    } else {
                        format!(
                            "Self::{name} => ::serde::value::Value::Str(\"{name}\".to_string())"
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {self_ty} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn emit_deserialize(item: &Item) -> String {
    let (impl_generics, self_ty) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").ok_or_else(|| ::serde::DeError::msg(\"missing field `{f}` in {name}\"))?)?"
                    )
                })
                .collect();
            format!("Ok(Self {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct { arity: 1 } => {
            "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        Shape::TupleStruct { arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])"))
                .collect();
            format!(
                "match v {{ ::serde::value::Value::Seq(items) if items.len() == {arity} => \
                 Ok(Self({})), _ => Err(::serde::DeError::msg(\"expected {arity}-element sequence for {name}\")) }}",
                inits
                    .iter()
                    .map(|i| format!("{i}?"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
        Shape::Enum { variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, has_payload)| !has_payload)
                .map(|(n, _)| format!("\"{n}\" => Ok(Self::{n})"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|(_, has_payload)| *has_payload)
                .map(|(n, _)| {
                    format!(
                        "\"{n}\" => Ok(Self::{n}(::serde::Deserialize::from_value(&entries[0].1)?))"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::value::Value::Str(tag) => match tag.as_str() {{ {unit} _ => Err(::serde::DeError::msg(\"unknown variant of {name}\")) }},\n\
                 ::serde::value::Value::Map(entries) if entries.len() == 1 => match entries[0].0.as_str() {{ {payload} _ => Err(::serde::DeError::msg(\"unknown variant of {name}\")) }},\n\
                 _ => Err(::serde::DeError::msg(\"expected enum representation for {name}\")),\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                payload = if payload_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", payload_arms.join(", "))
                },
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {self_ty} {{\n\
         fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
