//! Offline stand-in for the `polling` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small readiness-polling surface the TCP mesh
//! needs: a level-triggered [`Poller`] that multiplexes many sockets
//! onto one thread, backed by `epoll(7)` on Linux with a portable
//! `poll(2)` fallback (selectable at construction so tests can exercise
//! both on one platform), plus a pipe-based waker so other threads can
//! interrupt a blocked [`Poller::wait`]. A tiny [`sockopt`] module
//! exposes the SO_SNDBUF/SO_RCVBUF knobs the cluster spec configures,
//! plus the SO_REUSEADDR bind a restarted server reclaims its port with.
//!
//! This crate is the workspace's one pocket of `unsafe`: raw syscall
//! FFI. Everything above it (`dsm-net` included) stays
//! `#![forbid(unsafe_code)]`. The declarations rely on `std` linking
//! libc, so no external crate is needed.

#![warn(missing_docs)]
#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;
use std::sync::Mutex;
use std::time::Duration;

/// What readiness a registration asks for. Level-triggered: while the
/// condition holds, every [`Poller::wait`] reports it again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or closed/errored).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Readable and writable.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the fd was registered under.
    pub key: usize,
    /// Readable, half-closed, or errored (a read will not block).
    pub readable: bool,
    /// Writable (a write will not block).
    pub writable: bool,
}

/// Key reserved for the internal waker; never reported to callers.
const WAKER_KEY: usize = usize::MAX;

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    /// Portable fallback: registrations live in a map snapshotted into a
    /// `pollfd` array on every wait. Interest changes made while another
    /// thread is waiting take effect on the *next* wait, so callers must
    /// [`Poller::notify`] after changing interest — the same contract the
    /// mesh already follows for the epoll backend.
    Poll {
        fds: Mutex<std::collections::HashMap<RawFd, (usize, Interest)>>,
    },
}

/// A level-triggered readiness poller over a set of file descriptors.
///
/// `add`/`modify`/`delete`/`notify` may be called from any thread while
/// one thread blocks in [`wait`](Poller::wait); after changing interest
/// from another thread, call [`notify`](Poller::notify) so a blocked
/// wait re-snapshots its registrations.
pub struct Poller {
    backend: Backend,
    /// Waker pipe: `notify` writes a byte to `waker_w`; `wait` drains
    /// `waker_r`. Both ends are non-blocking.
    waker_r: RawFd,
    waker_w: RawFd,
}

impl Poller {
    /// Opens a poller on the platform's preferred backend (`epoll` on
    /// Linux, `poll(2)` elsewhere).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let epfd = sys::check(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
            let (waker_r, waker_w) = new_waker()?;
            let poller = Poller {
                backend: Backend::Epoll { epfd },
                waker_r,
                waker_w,
            };
            poller.register_waker()?;
            Ok(poller)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::with_poll_backend()
        }
    }

    /// Opens a poller on the portable `poll(2)` backend regardless of
    /// platform. Tests use this to exercise the fallback on Linux.
    pub fn with_poll_backend() -> io::Result<Poller> {
        let (waker_r, waker_w) = new_waker()?;
        Ok(Poller {
            backend: Backend::Poll {
                fds: Mutex::new(std::collections::HashMap::new()),
            },
            waker_r,
            waker_w,
        })
    }

    /// Names the active backend (`"epoll"` or `"poll"`).
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        }
    }

    #[cfg(target_os = "linux")]
    fn register_waker(&self) -> io::Result<()> {
        self.add(self.waker_r, WAKER_KEY, Interest::READ)
    }

    /// Registers `fd` under `key`. The fd stays registered (and must
    /// stay open) until [`delete`](Poller::delete).
    pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut ev = sys::epoll_event {
                    events: sys::epoll_mask(interest),
                    data: key as u64,
                };
                sys::check(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) })?;
                Ok(())
            }
            Backend::Poll { fds } => {
                let mut map = fds.lock().unwrap();
                if map.insert(fd, (key, interest)).is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                Ok(())
            }
        }
    }

    /// Changes the interest (and key) of an already-registered fd.
    pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut ev = sys::epoll_event {
                    events: sys::epoll_mask(interest),
                    data: key as u64,
                };
                sys::check(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, &mut ev) })?;
                Ok(())
            }
            Backend::Poll { fds } => {
                let mut map = fds.lock().unwrap();
                match map.get_mut(&fd) {
                    Some(slot) => {
                        *slot = (key, interest);
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Removes `fd` from the poll set. Call before closing the fd.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                // The event pointer is ignored for DEL but must be
                // non-null on pre-2.6.9 kernels; pass a dummy.
                let mut ev = sys::epoll_event { events: 0, data: 0 };
                sys::check(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) })?;
                Ok(())
            }
            Backend::Poll { fds } => {
                let mut map = fds.lock().unwrap();
                match map.remove(&fd) {
                    Some(_) => Ok(()),
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses, or another thread calls [`notify`](Poller::notify).
    /// Ready fds are appended to `events` (cleared first). Returns the
    /// number of events delivered; `0` means timeout, a notify-only
    /// wake, or an interrupted syscall.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms = timeout_millis(timeout);
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                const CAP: usize = 64;
                let mut buf = [sys::epoll_event { events: 0, data: 0 }; CAP];
                let n = unsafe {
                    sys::epoll_wait(*epfd, buf.as_mut_ptr(), CAP as sys::c_int, timeout_ms)
                };
                let n = match sys::check(n) {
                    Ok(n) => n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
                for ev in &buf[..n] {
                    // Copy out of the (packed) struct before use.
                    let mask = ev.events;
                    let key = ev.data as usize;
                    if key == WAKER_KEY {
                        self.drain_waker();
                        continue;
                    }
                    events.push(Event {
                        key,
                        readable: mask
                            & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP)
                            != 0,
                        writable: mask & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
                Ok(events.len())
            }
            Backend::Poll { fds } => {
                let mut pollfds: Vec<sys::pollfd> = Vec::new();
                let mut keys: Vec<usize> = Vec::new();
                {
                    let map = fds.lock().unwrap();
                    pollfds.reserve(map.len() + 1);
                    for (&fd, &(key, interest)) in map.iter() {
                        let mut mask: sys::c_short = 0;
                        if interest.read {
                            mask |= sys::POLLIN;
                        }
                        if interest.write {
                            mask |= sys::POLLOUT;
                        }
                        pollfds.push(sys::pollfd {
                            fd,
                            events: mask,
                            revents: 0,
                        });
                        keys.push(key);
                    }
                }
                pollfds.push(sys::pollfd {
                    fd: self.waker_r,
                    events: sys::POLLIN,
                    revents: 0,
                });
                keys.push(WAKER_KEY);
                let n = unsafe {
                    sys::poll(
                        pollfds.as_mut_ptr(),
                        pollfds.len() as sys::nfds_t,
                        timeout_ms,
                    )
                };
                match sys::check(n) {
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(0),
                    Err(e) => return Err(e),
                }
                for (pfd, &key) in pollfds.iter().zip(keys.iter()) {
                    let got = pfd.revents;
                    if got == 0 {
                        continue;
                    }
                    if key == WAKER_KEY {
                        self.drain_waker();
                        continue;
                    }
                    let err = sys::POLLERR | sys::POLLHUP | sys::POLLNVAL;
                    events.push(Event {
                        key,
                        readable: got & (sys::POLLIN | err) != 0,
                        writable: got & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP) != 0,
                    });
                }
                Ok(events.len())
            }
        }
    }

    /// Wakes a blocked [`wait`](Poller::wait) from another thread.
    /// Wakes coalesce: many notifies before a wait cost one wake.
    pub fn notify(&self) -> io::Result<()> {
        let byte = [1u8];
        loop {
            let n = unsafe { sys::write(self.waker_w, byte.as_ptr(), 1) };
            if n >= 0 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            match err.kind() {
                io::ErrorKind::Interrupted => continue,
                // Pipe full: a wake is already pending, which is all
                // notify promises.
                io::ErrorKind::WouldBlock => return Ok(()),
                _ => return Err(err),
            }
        }
    }

    fn drain_waker(&self) {
        let mut buf = [0u8; 256];
        loop {
            let n = unsafe { sys::read(self.waker_r, buf.as_mut_ptr(), buf.len()) };
            if n < buf.len() as isize {
                // Short read, error, or EAGAIN: drained (or will wake
                // again level-triggered) either way.
                return;
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            #[cfg(target_os = "linux")]
            if let Backend::Epoll { epfd } = self.backend {
                sys::close(epfd);
            }
            sys::close(self.waker_r);
            sys::close(self.waker_w);
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend_name())
            .finish()
    }
}

fn timeout_millis(timeout: Option<Duration>) -> sys::c_int {
    match timeout {
        None => -1,
        Some(d) => {
            // Round up so a 1ns timeout doesn't busy-spin at 0ms.
            let ms = d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
            ms.min(sys::c_int::MAX as u128) as sys::c_int
        }
    }
}

/// Opens the non-blocking waker pipe.
fn new_waker() -> io::Result<(RawFd, RawFd)> {
    #[cfg(target_os = "linux")]
    {
        let mut fds = [0 as RawFd; 2];
        sys::check(unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) })?;
        Ok((fds[0], fds[1]))
    }
    #[cfg(not(target_os = "linux"))]
    {
        let mut fds = [0 as RawFd; 2];
        sys::check(unsafe { sys::pipe(fds.as_mut_ptr()) })?;
        for &fd in &fds {
            let flags = sys::check(unsafe { sys::fcntl(fd, sys::F_GETFL, 0) })?;
            sys::check(unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) })?;
        }
        Ok((fds[0], fds[1]))
    }
}

/// Socket buffer-size knobs (SO_SNDBUF / SO_RCVBUF).
pub mod sockopt {
    use super::sys;
    use std::io;
    use std::os::unix::io::RawFd;

    fn set(fd: RawFd, opt: sys::c_int, bytes: usize) -> io::Result<()> {
        let val = bytes.min(sys::c_int::MAX as usize) as sys::c_int;
        sys::check(unsafe {
            sys::setsockopt(
                fd,
                sys::SOL_SOCKET,
                opt,
                (&val as *const sys::c_int).cast(),
                std::mem::size_of::<sys::c_int>() as sys::socklen_t,
            )
        })?;
        Ok(())
    }

    fn get(fd: RawFd, opt: sys::c_int) -> io::Result<usize> {
        let mut val: sys::c_int = 0;
        let mut len = std::mem::size_of::<sys::c_int>() as sys::socklen_t;
        sys::check(unsafe {
            sys::getsockopt(
                fd,
                sys::SOL_SOCKET,
                opt,
                (&mut val as *mut sys::c_int).cast(),
                &mut len,
            )
        })?;
        Ok(val.max(0) as usize)
    }

    /// Requests a send-buffer size. The kernel may clamp (and on Linux
    /// doubles) the request; read back with [`send_buffer`].
    pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
        set(fd, sys::SO_SNDBUF, bytes)
    }

    /// Requests a receive-buffer size; see [`set_send_buffer`].
    pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
        set(fd, sys::SO_RCVBUF, bytes)
    }

    /// Reads the effective send-buffer size.
    pub fn send_buffer(fd: RawFd) -> io::Result<usize> {
        get(fd, sys::SO_SNDBUF)
    }

    /// Reads the effective receive-buffer size.
    pub fn recv_buffer(fd: RawFd) -> io::Result<usize> {
        get(fd, sys::SO_RCVBUF)
    }

    /// Binds a listening TCP socket to `addr` with `SO_REUSEADDR` set
    /// before the bind — the server-restart path: a respawned process
    /// must reclaim its fixed port while the previous life's accepted
    /// connections still sit in TIME_WAIT, which a plain
    /// `TcpListener::bind` refuses with `EADDRINUSE`.
    ///
    /// Linux/Android only (the one place the repo's restart harness
    /// runs); elsewhere this falls back to a plain bind.
    pub fn listen_reusable(addr: std::net::SocketAddrV4) -> io::Result<std::net::TcpListener> {
        #[cfg(any(target_os = "linux", target_os = "android"))]
        {
            use std::os::unix::io::FromRawFd;

            struct Fd(RawFd);
            impl Drop for Fd {
                fn drop(&mut self) {
                    if self.0 >= 0 {
                        unsafe { sys::close(self.0) };
                    }
                }
            }

            let fd = Fd(sys::check(unsafe {
                sys::socket(sys::AF_INET, sys::SOCK_STREAM | sys::SOCK_CLOEXEC, 0)
            })?);
            set(fd.0, sys::SO_REUSEADDR, 1)?;
            let sin = sys::sockaddr_in {
                sin_family: sys::AF_INET as u16,
                sin_port: addr.port().to_be(),
                sin_addr: u32::from_ne_bytes(addr.ip().octets()),
                sin_zero: [0; 8],
            };
            sys::check(unsafe {
                sys::bind(
                    fd.0,
                    (&sin as *const sys::sockaddr_in).cast(),
                    std::mem::size_of::<sys::sockaddr_in>() as sys::socklen_t,
                )
            })?;
            sys::check(unsafe { sys::listen(fd.0, 128) })?;
            let listener = unsafe { std::net::TcpListener::from_raw_fd(fd.0) };
            std::mem::forget(fd);
            Ok(listener)
        }
        #[cfg(not(any(target_os = "linux", target_os = "android")))]
        {
            std::net::TcpListener::bind(addr)
        }
    }
}

/// Raw syscall surface. `std` links libc, so these resolve without any
/// external crate.
mod sys {
    #![allow(non_camel_case_types)]

    use std::io;
    use std::os::unix::io::RawFd;

    pub type c_int = i32;
    pub type c_short = i16;
    pub type socklen_t = u32;
    #[cfg(target_pointer_width = "64")]
    pub type nfds_t = u64;
    #[cfg(not(target_pointer_width = "64"))]
    pub type nfds_t = u32;

    #[repr(C)]
    pub struct pollfd {
        pub fd: RawFd,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    #[cfg(target_os = "linux")]
    mod epoll {
        use super::{c_int, RawFd};

        /// Matches the kernel ABI: packed on x86-64, natural alignment
        /// elsewhere. Fields are copied out before use (no references
        /// into the packed layout).
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLL_CLOEXEC: c_int = 0o2000000;

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: RawFd, op: c_int, fd: RawFd, event: *mut epoll_event) -> c_int;
            pub fn epoll_wait(
                epfd: RawFd,
                events: *mut epoll_event,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }

        /// Builds the level-triggered epoll mask for an interest set.
        pub fn epoll_mask(interest: crate::Interest) -> u32 {
            let mut mask = EPOLLRDHUP;
            if interest.read {
                mask |= EPOLLIN;
            }
            if interest.write {
                mask |= EPOLLOUT;
            }
            mask
        }
    }
    #[cfg(target_os = "linux")]
    pub use epoll::*;

    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(target_os = "linux")]
    pub const O_CLOEXEC: c_int = 0o2000000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x0004;
    #[cfg(not(target_os = "linux"))]
    pub const F_GETFL: c_int = 3;
    #[cfg(not(target_os = "linux"))]
    pub const F_SETFL: c_int = 4;

    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub const SOL_SOCKET: c_int = 1;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub const SO_SNDBUF: c_int = 7;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub const SO_RCVBUF: c_int = 8;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub const SO_REUSEADDR: c_int = 2;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub const AF_INET: c_int = 2;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub const SOCK_STREAM: c_int = 1;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub const SOCK_CLOEXEC: c_int = 0o2000000;

    /// The kernel's IPv4 socket address, for the raw `bind` in
    /// [`sockopt::listen_reusable`](crate::sockopt::listen_reusable).
    #[cfg(any(target_os = "linux", target_os = "android"))]
    #[repr(C)]
    pub struct sockaddr_in {
        pub sin_family: u16,
        /// Network byte order.
        pub sin_port: u16,
        /// Network byte order.
        pub sin_addr: u32,
        pub sin_zero: [u8; 8],
    }
    // BSD-derived values (macOS, the BSDs, illumos).
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    pub const SOL_SOCKET: c_int = 0xffff;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    pub const SO_SNDBUF: c_int = 0x1001;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    pub const SO_RCVBUF: c_int = 0x1002;

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
        pub fn close(fd: RawFd) -> c_int;
        pub fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
        pub fn setsockopt(
            fd: RawFd,
            level: c_int,
            optname: c_int,
            optval: *const u8,
            optlen: socklen_t,
        ) -> c_int;
        pub fn getsockopt(
            fd: RawFd,
            level: c_int,
            optname: c_int,
            optval: *mut u8,
            optlen: *mut socklen_t,
        ) -> c_int;
        #[cfg(any(target_os = "linux", target_os = "android"))]
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        #[cfg(any(target_os = "linux", target_os = "android"))]
        pub fn bind(fd: RawFd, addr: *const u8, addrlen: socklen_t) -> c_int;
        #[cfg(any(target_os = "linux", target_os = "android"))]
        pub fn listen(fd: RawFd, backlog: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn pipe2(fds: *mut RawFd, flags: c_int) -> c_int;
        #[cfg(not(target_os = "linux"))]
        pub fn pipe(fds: *mut RawFd) -> c_int;
        // fcntl is variadic in C; a fixed three-int declaration matches
        // the calling convention for integer arguments on the unix ABIs
        // this fallback targets.
        #[cfg(not(target_os = "linux"))]
        pub fn fcntl(fd: RawFd, cmd: c_int, arg: c_int) -> c_int;
    }

    /// Maps a `-1` return to `io::Error::last_os_error()`.
    pub fn check(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn backends() -> Vec<Poller> {
        let mut v = vec![Poller::with_poll_backend().unwrap()];
        if cfg!(target_os = "linux") {
            v.push(Poller::new().unwrap());
        }
        v
    }

    #[test]
    fn readable_after_peer_writes() {
        for poller in backends() {
            let (mut a, b) = pair();
            b.set_nonblocking(true).unwrap();
            poller.add(b.as_raw_fd(), 7, Interest::READ).unwrap();
            let mut events = Vec::new();
            // Nothing to read yet.
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{}: spurious readiness", poller.backend_name());
            a.write_all(b"hi").unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{}", poller.backend_name());
            assert!(events[0].readable);
            assert_eq!(events[0].key, 7);
            let mut buf = [0u8; 8];
            let got = (&b).read(&mut buf).unwrap();
            assert_eq!(&buf[..got], b"hi");
            poller.delete(b.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn write_interest_reports_writable_and_modify_disarms() {
        for poller in backends() {
            let (_a, b) = pair();
            b.set_nonblocking(true).unwrap();
            poller.add(b.as_raw_fd(), 3, Interest::READ_WRITE).unwrap();
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{}", poller.backend_name());
            assert!(events[0].writable);
            // Drop write interest: an idle socket reports nothing.
            poller.modify(b.as_raw_fd(), 3, Interest::READ).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{}", poller.backend_name());
            poller.delete(b.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn peer_close_wakes_reader() {
        for poller in backends() {
            let (a, b) = pair();
            b.set_nonblocking(true).unwrap();
            poller.add(b.as_raw_fd(), 1, Interest::READ).unwrap();
            drop(a);
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{}", poller.backend_name());
            assert!(events[0].readable, "close must surface as readable");
            poller.delete(b.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn notify_interrupts_wait() {
        for poller in backends() {
            let poller = std::sync::Arc::new(poller);
            let waker = std::sync::Arc::clone(&poller);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.notify().unwrap();
            });
            let start = Instant::now();
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(
                n,
                0,
                "{}: waker must not surface as an event",
                poller.backend_name()
            );
            assert!(start.elapsed() < Duration::from_secs(10));
            t.join().unwrap();
        }
    }

    #[test]
    fn notifies_coalesce() {
        for poller in backends() {
            for _ in 0..1000 {
                poller.notify().unwrap();
            }
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            // Drained: the next wait times out instead of waking hot.
            let start = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(
                start.elapsed() >= Duration::from_millis(15),
                "{}",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn socket_buffers_round_trip() {
        let (a, _b) = pair();
        let fd = a.as_raw_fd();
        sockopt::set_send_buffer(fd, 64 * 1024).unwrap();
        sockopt::set_recv_buffer(fd, 64 * 1024).unwrap();
        // Kernels clamp and (on Linux) double the request; just check
        // the knob moved the value somewhere sane.
        assert!(sockopt::send_buffer(fd).unwrap() >= 16 * 1024);
        assert!(sockopt::recv_buffer(fd).unwrap() >= 16 * 1024);
    }

    #[test]
    fn reusable_listener_accepts_and_rebinds() {
        let listener = sockopt::listen_reusable("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut conn, _) = listener.accept().unwrap();
        conn.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        // Close everything server-side first, leaving the accepted
        // connection's 4-tuple in TIME_WAIT on our port — the rebind a
        // restarted server needs SO_REUSEADDR for.
        drop(conn);
        drop(listener);
        drop(client);
        match addr {
            std::net::SocketAddr::V4(v4) => {
                sockopt::listen_reusable(v4).expect("rebind through TIME_WAIT");
            }
            std::net::SocketAddr::V6(_) => unreachable!("bound v4"),
        }
    }

    #[test]
    fn zero_timeout_returns_immediately() {
        for poller in backends() {
            let mut events = Vec::new();
            let start = Instant::now();
            let n = poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
            assert_eq!(n, 0);
            assert!(start.elapsed() < Duration::from_secs(1));
        }
    }
}
