//! Executions: the objects Definition 1 and Definition 2 speak about.
//!
//! An [`Execution`] is a finite set of processes, each a sequence of read
//! and write operations (the paper's "a process is defined by the sequence
//! of operations it performs"). Writes are unique ([`WriteId`]), every read
//! carries the identity of the write it reads from, and all locations are
//! assumed initialized by distinguished initial writes that precede every
//! operation.

use memcore::{Location, NodeId, OpKind, OpRecord, Recorder, WriteId};
use serde::{Deserialize, Serialize};

/// A reference to one operation in an execution: process index and
/// position within that process's sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpRef {
    /// The process performing the operation.
    pub process: usize,
    /// The operation's position in that process's program order.
    pub index: usize,
}

impl OpRef {
    /// Creates a reference to the `index`th operation of `process`.
    #[must_use]
    pub fn new(process: usize, index: usize) -> Self {
        OpRef { process, index }
    }
}

impl std::fmt::Display for OpRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}[{}]", self.process, self.index)
    }
}

/// A complete recorded execution.
///
/// # Examples
///
/// Figure 1 of the paper, built by hand:
///
/// ```
/// use causal_spec::Execution;
///
/// // P1: w(x)1 w(y)2 r(y)2 r(x)1
/// // P2: w(z)1 r(y)2 r(x)1
/// let exec = Execution::<i64>::builder(2)
///     .write(0, 0, 1) // w(x)1      (x = loc 0)
///     .write(0, 1, 2) // w(y)2      (y = loc 1)
///     .read(0, 1, 2)  // r(y)2
///     .read(0, 0, 1)  // r(x)1
///     .write(1, 2, 1) // w(z)1      (z = loc 2)
///     .read(1, 1, 2)  // r(y)2
///     .read(1, 0, 1)  // r(x)1
///     .build();
/// assert_eq!(exec.process_count(), 2);
/// assert_eq!(exec.total_ops(), 7);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Execution<V> {
    processes: Vec<Vec<OpRecord<V>>>,
}

impl<V: Clone> Execution<V> {
    /// Wraps per-process operation sequences.
    #[must_use]
    pub fn from_processes(processes: Vec<Vec<OpRecord<V>>>) -> Self {
        Execution { processes }
    }

    /// Snapshots a [`Recorder`] filled by a running engine.
    #[must_use]
    pub fn from_recorder(recorder: &Recorder<V>) -> Self {
        Execution {
            processes: recorder.processes(),
        }
    }

    /// Starts building an execution by hand (used for the paper's figures).
    #[must_use]
    pub fn builder(processes: usize) -> ExecutionBuilder<V>
    where
        V: PartialEq,
    {
        ExecutionBuilder {
            processes: vec![Vec::new(); processes],
            write_seqs: vec![0; processes],
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The operation sequence of one process.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    #[must_use]
    pub fn process(&self, process: usize) -> &[OpRecord<V>] {
        &self.processes[process]
    }

    /// All processes.
    #[must_use]
    pub fn processes(&self) -> &[Vec<OpRecord<V>>] {
        &self.processes
    }

    /// Total operations across processes.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.processes.iter().map(Vec::len).sum()
    }

    /// The operation at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn op(&self, r: OpRef) -> &OpRecord<V> {
        &self.processes[r.process][r.index]
    }

    /// Iterates all operations with their references, in process order then
    /// program order.
    pub fn iter_ops(&self) -> impl Iterator<Item = (OpRef, &OpRecord<V>)> {
        self.processes.iter().enumerate().flat_map(|(p, ops)| {
            ops.iter()
                .enumerate()
                .map(move |(i, op)| (OpRef::new(p, i), op))
        })
    }
}

/// Hand-construction of executions with automatic write tagging and
/// value-based reads-from resolution — built for transcribing the paper's
/// figures, where each (location, value) pair identifies a unique write.
#[derive(Clone, Debug)]
pub struct ExecutionBuilder<V> {
    processes: Vec<Vec<OpRecord<V>>>,
    write_seqs: Vec<u64>,
}

impl<V: Clone + PartialEq> ExecutionBuilder<V> {
    /// Appends `w(loc)value` to `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    #[must_use]
    pub fn write(mut self, process: usize, loc: u32, value: V) -> Self {
        let wid = WriteId::new(NodeId::new(process as u32), self.write_seqs[process]);
        self.write_seqs[process] += 1;
        self.processes[process].push(OpRecord::write(Location::new(loc), value, wid));
        self
    }

    /// Appends `r(loc)value` to `process`, reading from the unique write of
    /// `value` to `loc` appended so far (in any process).
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range, no write of `value` to `loc`
    /// exists yet, or more than one does (figures keep values unique per
    /// location).
    #[must_use]
    pub fn read(mut self, process: usize, loc: u32, value: V) -> Self {
        let loc = Location::new(loc);
        let mut matches = self
            .processes
            .iter()
            .flatten()
            .filter(|op| op.kind == OpKind::Write && op.loc == loc && op.value == value);
        let wid = match (matches.next(), matches.next()) {
            (Some(op), None) => op.write_id,
            (None, _) => panic!("no write of that value to {loc} to read from"),
            (Some(_), Some(_)) => panic!("ambiguous reads-from for {loc}: duplicate values"),
        };
        self.processes[process].push(OpRecord::read(loc, value, wid));
        self
    }

    /// Appends `r(loc)value` reading from the distinguished *initial*
    /// write of `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    #[must_use]
    pub fn read_initial(mut self, process: usize, loc: u32, value: V) -> Self {
        let loc = Location::new(loc);
        self.processes[process].push(OpRecord::read(loc, value, WriteId::initial(loc)));
        self
    }

    /// Finalizes the execution.
    #[must_use]
    pub fn build(self) -> Execution<V> {
        Execution {
            processes: self.processes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_unique_write_ids() {
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .write(0, 0, 2)
            .write(1, 0, 3)
            .build();
        let ids: Vec<_> = exec.iter_ops().map(|(_, op)| op.write_id).collect();
        assert_eq!(ids.len(), 3);
        assert!(ids.iter().all(|id| !id.is_initial()));
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn reads_resolve_to_the_matching_write() {
        let exec = Execution::<i64>::builder(2)
            .write(0, 5, 42)
            .read(1, 5, 42)
            .build();
        let write = &exec.process(0)[0];
        let read = &exec.process(1)[0];
        assert_eq!(read.write_id, write.write_id);
    }

    #[test]
    fn read_initial_uses_the_distinguished_write() {
        let exec = Execution::<i64>::builder(1).read_initial(0, 3, 0).build();
        assert!(exec.process(0)[0].write_id.is_initial());
    }

    #[test]
    #[should_panic(expected = "no write of that value")]
    fn read_of_unwritten_value_panics() {
        let _ = Execution::<i64>::builder(1).read(0, 0, 9).build();
    }

    #[test]
    #[should_panic(expected = "ambiguous")]
    fn duplicate_values_make_reads_ambiguous() {
        let _ = Execution::<i64>::builder(1)
            .write(0, 0, 1)
            .write(0, 0, 1)
            .read(0, 0, 1)
            .build();
    }

    #[test]
    fn iter_ops_walks_in_program_order() {
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .write(1, 1, 2)
            .read(0, 1, 2)
            .build();
        let refs: Vec<_> = exec.iter_ops().map(|(r, _)| r).collect();
        assert_eq!(
            refs,
            vec![OpRef::new(0, 0), OpRef::new(0, 1), OpRef::new(1, 0)]
        );
        assert_eq!(OpRef::new(0, 1).to_string(), "P0[1]");
    }

    #[test]
    fn from_recorder_round_trips() {
        let rec: Recorder<i64> = Recorder::new(2);
        rec.record(
            NodeId::new(1),
            OpRecord::write(Location::new(0), 7, WriteId::new(NodeId::new(1), 0)),
        );
        let exec = Execution::from_recorder(&rec);
        assert_eq!(exec.process(1).len(), 1);
        assert_eq!(exec.total_ops(), 1);
    }
}
