//! The paper's example executions (Figures 1, 2, 3, 5), transcribed once
//! and reused by tests, the repro harness and the documentation.
//!
//! Location coding is consistent across figures: `x = 0`, `y = 1`,
//! `z = 2`.

use crate::exec::{Execution, OpRef};

/// Location code for `x`.
pub const X: u32 = 0;
/// Location code for `y`.
pub const Y: u32 = 1;
/// Location code for `z`.
pub const Z: u32 = 2;

/// Figure 1 — example of causal relations:
///
/// ```text
/// P1: w(x)1 w(y)2 r(y)2 r(x)1
/// P2: w(z)1 r(y)2 r(x)1
/// ```
#[must_use]
pub fn figure1() -> Execution<i64> {
    Execution::builder(2)
        .write(0, X, 1)
        .write(0, Y, 2)
        .read(0, Y, 2)
        .read(0, X, 1)
        .write(1, Z, 1)
        .read(1, Y, 2)
        .read(1, X, 1)
        .build()
}

/// Named operations of Figure 1 for assertions and display.
pub mod fig1 {
    use super::OpRef;

    /// `w1(x)1`.
    pub const W_X: OpRef = OpRef {
        process: 0,
        index: 0,
    };
    /// `w1(y)2`.
    pub const W_Y: OpRef = OpRef {
        process: 0,
        index: 1,
    };
    /// `r1(y)2`.
    pub const R1_Y: OpRef = OpRef {
        process: 0,
        index: 2,
    };
    /// `r1(x)1`.
    pub const R1_X: OpRef = OpRef {
        process: 0,
        index: 3,
    };
    /// `w2(z)1`.
    pub const W_Z: OpRef = OpRef {
        process: 1,
        index: 0,
    };
    /// `r2(y)2`.
    pub const R2_Y: OpRef = OpRef {
        process: 1,
        index: 1,
    };
    /// `r2(x)1`.
    pub const R2_X: OpRef = OpRef {
        process: 1,
        index: 2,
    };
}

/// Figure 2 — the paper's worked example of a correct execution on causal
/// memory:
///
/// ```text
/// P1: w(x)2 w(y)2 w(y)3 r(z)5 w(x)4
/// P2: w(x)1 r(y)3 w(x)7 w(z)5 r(x)4 r(x)9
/// P3: r(z)5 w(x)9
/// ```
#[must_use]
pub fn figure2() -> Execution<i64> {
    Execution::builder(3)
        .write(0, X, 2)
        .write(0, Y, 2)
        .write(0, Y, 3)
        .write(1, X, 1)
        .read(1, Y, 3)
        .write(1, X, 7)
        .write(1, Z, 5)
        .read(0, Z, 5)
        .write(0, X, 4)
        .read(2, Z, 5)
        .write(2, X, 9)
        .read(1, X, 4)
        .read(1, X, 9)
        .build()
}

/// The reads of Figure 2 whose α sets the paper computes, with the
/// expected value sets (initial writes resolve to 0).
#[must_use]
pub fn figure2_expected_alphas() -> Vec<(OpRef, &'static str, Vec<i64>)> {
    vec![
        (OpRef::new(0, 3), "r1(z)5", vec![0, 5]),
        (OpRef::new(2, 0), "r3(z)5", vec![0, 5]),
        (OpRef::new(1, 1), "r2(y)3", vec![0, 2, 3]),
        (OpRef::new(1, 4), "r2(x)4", vec![4, 7, 9]),
        (OpRef::new(1, 5), "r2(x)9", vec![4, 9]),
    ]
}

/// Figure 3 — causal broadcasting is **not** causal memory:
///
/// ```text
/// P1: w(x)5 w(y)3
/// P2: w(x)2 r(y)3 r(x)5 w(z)4
/// P3: r(z)4 r(x)2
/// ```
///
/// The final read `r3(x)2` returns a value not live for it; the causal
/// checker must reject this execution, while a causal-broadcast memory
/// can produce it under an adversarial delivery order.
#[must_use]
pub fn figure3() -> Execution<i64> {
    Execution::builder(3)
        .write(0, X, 5)
        .write(0, Y, 3)
        .write(1, X, 2)
        .read(1, Y, 3)
        .read(1, X, 5)
        .write(1, Z, 4)
        .read(2, Z, 4)
        .read(2, X, 2)
        .build()
}

/// The violating read of Figure 3 (`r3(x)2`).
#[must_use]
pub fn figure3_violating_read() -> OpRef {
    OpRef::new(2, 1)
}

/// Figure 5 — a weakly consistent execution, allowed by causal memory
/// (and by the owner protocol with `P1 = owner(x)`, `P2 = owner(y)`) but
/// sequentially inconsistent:
///
/// ```text
/// P1: r(y)0 w(x)1 r(y)0
/// P2: r(x)0 w(y)1 r(x)0
/// ```
#[must_use]
pub fn figure5() -> Execution<i64> {
    Execution::builder(2)
        .read_initial(0, Y, 0)
        .write(0, X, 1)
        .read_initial(0, Y, 0)
        .read_initial(1, X, 0)
        .write(1, Y, 1)
        .read_initial(1, X, 0)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alpha, check_causal, check_sequential, CausalGraph};

    #[test]
    fn figure1_claims() {
        let exec = figure1();
        let g = CausalGraph::build(&exec).unwrap();
        assert!(g.concurrent(fig1::W_X, fig1::W_Z));
        assert!(g.precedes(fig1::W_X, fig1::R1_Y));
        // r2(y)2 establishes causality; r1(x)1 merely confirms it.
        assert!(g.precedes(fig1::W_Y, fig1::R2_Y));
        assert!(g.precedes(fig1::W_X, fig1::R1_X));
        assert!(g.precedes(fig1::W_X, fig1::R2_X));
    }

    #[test]
    fn figure2_alphas_match_the_paper() {
        let exec = figure2();
        let g = CausalGraph::build(&exec).unwrap();
        for (read, name, expected) in figure2_expected_alphas() {
            let mut values = alpha(&exec, &g, read).values(&exec, &0);
            values.sort_unstable();
            assert_eq!(values, expected, "α({name})");
        }
        assert!(check_causal(&exec).unwrap().is_correct());
    }

    #[test]
    fn figure3_is_rejected() {
        let report = check_causal(&figure3()).unwrap();
        assert!(!report.is_correct());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].read, figure3_violating_read());
    }

    #[test]
    fn figure5_is_causal_but_not_sequentially_consistent() {
        let exec = figure5();
        assert!(check_causal(&exec).unwrap().is_correct());
        assert!(!check_sequential(&exec).is_consistent());
    }
}
