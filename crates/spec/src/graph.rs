//! The causality relation `→` and its transitive closure `→*`.
//!
//! Two rules define `→` (paper §2): successive operations of one process
//! are ordered (program order), and a write is ordered before every read
//! that reads from it (reads-from). The closure `→*` is computed once per
//! execution as a reachability bit-matrix; operations unrelated by `→*`
//! are *concurrent*.

use std::collections::HashMap;
use std::fmt;

use memcore::{Location, OpKind, WriteId};

use crate::exec::{Execution, OpRef};

/// Errors found while building the causality graph — executions with these
/// defects cannot be executions of any causal memory.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A read's reads-from tag names a write that appears nowhere in the
    /// execution.
    DanglingReadsFrom {
        /// The offending read.
        read: OpRef,
        /// The missing write tag.
        wid: WriteId,
    },
    /// Two writes carry the same tag (writes must be unique).
    DuplicateWriteId {
        /// The repeated tag.
        wid: WriteId,
    },
    /// A read reads from a write on a different location.
    CrossLocationRead {
        /// The offending read.
        read: OpRef,
    },
    /// The combination of program order and reads-from is cyclic (e.g. a
    /// process reads a value it only writes later).
    CausalCycle,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingReadsFrom { read, wid } => {
                write!(f, "read {read} reads from unknown write {wid}")
            }
            GraphError::DuplicateWriteId { wid } => {
                write!(f, "duplicate write tag {wid}")
            }
            GraphError::CrossLocationRead { read } => {
                write!(f, "read {read} reads from a write to a different location")
            }
            GraphError::CausalCycle => write!(f, "causality relation is cyclic"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A dense reachability matrix over the operations of one execution.
struct BitMatrix {
    n: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        BitMatrix {
            n,
            words_per_row,
            data: vec![0; n * words_per_row],
        }
    }

    fn set(&mut self, i: usize, j: usize) {
        self.data[i * self.words_per_row + j / 64] |= 1 << (j % 64);
    }

    fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.words_per_row + j / 64] & (1 << (j % 64)) != 0
    }

    /// `row[dst] |= row[src]`.
    fn or_row(&mut self, dst: usize, src: usize) {
        let (d, s) = (dst * self.words_per_row, src * self.words_per_row);
        for w in 0..self.words_per_row {
            let bits = self.data[s + w];
            self.data[d + w] |= bits;
        }
    }
}

/// The causality graph of one execution, with precomputed transitive
/// closure.
///
/// # Examples
///
/// Figure 1's claims, machine-checked:
///
/// ```
/// use causal_spec::{CausalGraph, Execution, OpRef};
///
/// let exec = Execution::<i64>::builder(2)
///     .write(0, 0, 1) // w1(x)1
///     .write(0, 1, 2) // w1(y)2
///     .read(0, 1, 2)  // r1(y)2
///     .read(0, 0, 1)  // r1(x)1
///     .write(1, 2, 1) // w2(z)1
///     .read(1, 1, 2)  // r2(y)2
///     .read(1, 0, 1)  // r2(x)1
///     .build();
/// let graph = CausalGraph::build(&exec)?;
/// let w_x = OpRef::new(0, 0);
/// let w_z = OpRef::new(1, 0);
/// let r1_y = OpRef::new(0, 2);
/// // "the writes of x and z are concurrent"
/// assert!(graph.concurrent(w_x, w_z));
/// // "w(x)1 →* r1(y)2"
/// assert!(graph.precedes(w_x, r1_y));
/// # Ok::<(), causal_spec::GraphError>(())
/// ```
pub struct CausalGraph {
    /// Global index of each op: `flat[process] + index`.
    proc_base: Vec<usize>,
    n_ops: usize,
    closure: BitMatrix,
    /// Global index of each write tag.
    write_index: HashMap<WriteId, OpRef>,
    /// Writes per location, in discovery order.
    writes_by_loc: HashMap<Location, Vec<OpRef>>,
    /// Accesses (reads and writes) per location.
    accesses_by_loc: HashMap<Location, Vec<OpRef>>,
}

impl CausalGraph {
    /// Builds the graph and its transitive closure.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the execution is malformed (dangling or
    /// duplicate write tags, cross-location reads) or its causality
    /// relation is cyclic.
    pub fn build<V>(exec: &Execution<V>) -> Result<Self, GraphError>
    where
        V: Clone,
    {
        let mut proc_base = Vec::with_capacity(exec.process_count());
        let mut n_ops = 0;
        for p in 0..exec.process_count() {
            proc_base.push(n_ops);
            n_ops += exec.process(p).len();
        }

        let flat = |r: OpRef, proc_base: &[usize]| -> usize { proc_base[r.process] + r.index };

        // Index writes; collect per-location structures.
        let mut write_index = HashMap::new();
        let mut writes_by_loc: HashMap<Location, Vec<OpRef>> = HashMap::new();
        let mut accesses_by_loc: HashMap<Location, Vec<OpRef>> = HashMap::new();
        for (r, op) in exec.iter_ops() {
            accesses_by_loc.entry(op.loc).or_default().push(r);
            if op.kind == OpKind::Write {
                if write_index.insert(op.write_id, r).is_some() {
                    return Err(GraphError::DuplicateWriteId { wid: op.write_id });
                }
                writes_by_loc.entry(op.loc).or_default().push(r);
            }
        }

        // Edges: program order + reads-from.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
        let mut indegree = vec![0usize; n_ops];
        for (r, op) in exec.iter_ops() {
            let me = flat(r, &proc_base);
            if r.index + 1 < exec.process(r.process).len() {
                let next = me + 1;
                succs[me].push(next);
                indegree[next] += 1;
            }
            if op.kind == OpKind::Read && !op.write_id.is_initial() {
                let Some(&w) = write_index.get(&op.write_id) else {
                    return Err(GraphError::DanglingReadsFrom {
                        read: r,
                        wid: op.write_id,
                    });
                };
                if exec.op(w).loc != op.loc {
                    return Err(GraphError::CrossLocationRead { read: r });
                }
                let w_flat = flat(w, &proc_base);
                if w_flat != me {
                    succs[w_flat].push(me);
                    indegree[me] += 1;
                }
            }
        }

        // Kahn topological order (cycle detection).
        let mut order = Vec::with_capacity(n_ops);
        let mut queue: Vec<usize> = (0..n_ops).filter(|&i| indegree[i] == 0).collect();
        while let Some(i) = queue.pop() {
            order.push(i);
            for &s in &succs[i] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() != n_ops {
            return Err(GraphError::CausalCycle);
        }

        // Transitive closure in reverse topological order:
        // reach[i] = ∪ (reach[s] ∪ {s}) for successors s.
        let mut closure = BitMatrix::new(n_ops);
        for &i in order.iter().rev() {
            // Take the successor list to appease the borrow checker on the
            // matrix row union.
            let node_succs = std::mem::take(&mut succs[i]);
            for &s in &node_succs {
                closure.set(i, s);
                closure.or_row(i, s);
            }
            succs[i] = node_succs;
        }

        Ok(CausalGraph {
            proc_base,
            n_ops,
            closure,
            write_index,
            writes_by_loc,
            accesses_by_loc,
        })
    }

    fn flat(&self, r: OpRef) -> usize {
        self.proc_base[r.process] + r.index
    }

    /// Total operations covered.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.n_ops
    }

    /// `a →* b` (strict: `false` when `a == b`).
    #[must_use]
    pub fn precedes(&self, a: OpRef, b: OpRef) -> bool {
        let (fa, fb) = (self.flat(a), self.flat(b));
        fa != fb && self.closure.get(fa, fb)
    }

    /// Neither `a →* b` nor `b →* a` (and `a ≠ b`).
    #[must_use]
    pub fn concurrent(&self, a: OpRef, b: OpRef) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// `q →* read` **excluding the reads-from edge into `read` itself** —
    /// the modified relation Definition 1 evaluates α under. Any path into
    /// `read` other than its own reads-from edge must pass through its
    /// program-order predecessor.
    #[must_use]
    pub fn precedes_read_excl(&self, q: OpRef, read: OpRef) -> bool {
        if read.index == 0 {
            return false;
        }
        let pred = OpRef::new(read.process, read.index - 1);
        q == pred || self.precedes(q, pred)
    }

    /// The write carrying `wid`, if present.
    #[must_use]
    pub fn write_by_id(&self, wid: WriteId) -> Option<OpRef> {
        self.write_index.get(&wid).copied()
    }

    /// All writes to `loc`, excluding the implicit initial write.
    #[must_use]
    pub fn writes_of(&self, loc: Location) -> &[OpRef] {
        self.writes_by_loc.get(&loc).map_or(&[], Vec::as_slice)
    }

    /// All reads and writes of `loc`.
    #[must_use]
    pub fn accesses_of(&self, loc: Location) -> &[OpRef] {
        self.accesses_by_loc.get(&loc).map_or(&[], Vec::as_slice)
    }
}

impl fmt::Debug for CausalGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CausalGraph")
            .field("ops", &self.n_ops)
            .field("writes", &self.write_index.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> Execution<i64> {
        // x=0, y=1, z=2
        Execution::builder(2)
            .write(0, 0, 1) // P1: w(x)1
            .write(0, 1, 2) // P1: w(y)2
            .read(0, 1, 2) // P1: r(y)2
            .read(0, 0, 1) // P1: r(x)1
            .write(1, 2, 1) // P2: w(z)1
            .read(1, 1, 2) // P2: r(y)2
            .read(1, 0, 1) // P2: r(x)1
            .build()
    }

    #[test]
    fn program_order_is_causal() {
        let exec = figure1();
        let g = CausalGraph::build(&exec).unwrap();
        assert!(g.precedes(OpRef::new(0, 0), OpRef::new(0, 3)));
        assert!(!g.precedes(OpRef::new(0, 3), OpRef::new(0, 0)));
        assert!(!g.precedes(OpRef::new(0, 1), OpRef::new(0, 1)));
    }

    #[test]
    fn figure1_relations_hold() {
        let exec = figure1();
        let g = CausalGraph::build(&exec).unwrap();
        let w_x = OpRef::new(0, 0);
        let w_z = OpRef::new(1, 0);
        let r1_y = OpRef::new(0, 2);
        let r2_y = OpRef::new(1, 1);
        // Writes of x and z are concurrent.
        assert!(g.concurrent(w_x, w_z));
        // w(x)1 →* r1(y)2 (via program order).
        assert!(g.precedes(w_x, r1_y));
        // r2(y)2 *establishes* causality: w(y)2 →* r2(y)2 via reads-from.
        assert!(g.precedes(OpRef::new(0, 1), r2_y));
        // And transitively w(x)1 →* r2(x)1.
        assert!(g.precedes(w_x, OpRef::new(1, 2)));
    }

    #[test]
    fn reads_from_establishes_cross_process_order() {
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 7)
            .read(1, 0, 7)
            .write(1, 1, 8)
            .build();
        let g = CausalGraph::build(&exec).unwrap();
        // w0(x)7 →* w1(y)8 through the read.
        assert!(g.precedes(OpRef::new(0, 0), OpRef::new(1, 1)));
    }

    #[test]
    fn excluded_reads_from_is_not_a_path() {
        // P0: w(x)1; P1: r(x)1 — with the read's own rf edge excluded,
        // the write does NOT precede the read (they are "concurrent" for
        // the purposes of Definition 1, making the value live by clause 1).
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .read(1, 0, 1)
            .build();
        let g = CausalGraph::build(&exec).unwrap();
        let w = OpRef::new(0, 0);
        let r = OpRef::new(1, 0);
        assert!(g.precedes(w, r)); // full relation: rf edge present
        assert!(!g.precedes_read_excl(w, r)); // Definition-1 relation
    }

    #[test]
    fn excluded_relation_keeps_program_order_paths() {
        // P0: w(x)1 ; P1: r(x)1 r(x)1' — second read's exclusion still
        // sees the write via the first read (program-order predecessor).
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .read(1, 0, 1)
            .read(1, 0, 1)
            .build();
        let g = CausalGraph::build(&exec).unwrap();
        let w = OpRef::new(0, 0);
        let r2 = OpRef::new(1, 1);
        assert!(g.precedes_read_excl(w, r2));
    }

    #[test]
    fn first_op_of_process_has_no_excl_predecessors() {
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .read(1, 0, 1)
            .build();
        let g = CausalGraph::build(&exec).unwrap();
        assert!(!g.precedes_read_excl(OpRef::new(0, 0), OpRef::new(1, 0)));
    }

    #[test]
    fn cyclic_causality_is_rejected() {
        // P0 reads y before writing x; P1 reads x before writing y: each
        // read reads-from the other process's *later* write — a cycle.
        use memcore::{Location, NodeId, OpRecord, WriteId};
        let w0 = WriteId::new(NodeId::new(0), 0);
        let w1 = WriteId::new(NodeId::new(1), 0);
        let exec = Execution::from_processes(vec![
            vec![
                OpRecord::read(Location::new(1), 5i64, w1),
                OpRecord::write(Location::new(0), 4, w0),
            ],
            vec![
                OpRecord::read(Location::new(0), 4, w0),
                OpRecord::write(Location::new(1), 5, w1),
            ],
        ]);
        assert!(matches!(
            CausalGraph::build(&exec),
            Err(GraphError::CausalCycle)
        ));
    }

    #[test]
    fn dangling_reads_from_is_rejected() {
        use memcore::{Location, NodeId, OpRecord, WriteId};
        let ghost = WriteId::new(NodeId::new(7), 9);
        let exec =
            Execution::from_processes(vec![vec![OpRecord::read(Location::new(0), 1i64, ghost)]]);
        match CausalGraph::build(&exec) {
            Err(GraphError::DanglingReadsFrom { wid, .. }) => assert_eq!(wid, ghost),
            other => panic!("expected dangling reads-from, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_write_ids_are_rejected() {
        use memcore::{Location, NodeId, OpRecord, WriteId};
        let wid = WriteId::new(NodeId::new(0), 0);
        let exec = Execution::from_processes(vec![vec![
            OpRecord::write(Location::new(0), 1i64, wid),
            OpRecord::write(Location::new(0), 2, wid),
        ]]);
        assert!(matches!(
            CausalGraph::build(&exec),
            Err(GraphError::DuplicateWriteId { .. })
        ));
    }

    #[test]
    fn cross_location_reads_are_rejected() {
        use memcore::{Location, NodeId, OpRecord, WriteId};
        let wid = WriteId::new(NodeId::new(0), 0);
        let exec = Execution::from_processes(vec![vec![
            OpRecord::write(Location::new(0), 1i64, wid),
            OpRecord::read(Location::new(1), 1, wid),
        ]]);
        assert!(matches!(
            CausalGraph::build(&exec),
            Err(GraphError::CrossLocationRead { .. })
        ));
    }

    #[test]
    fn location_indices_cover_reads_and_writes() {
        let exec = figure1();
        let g = CausalGraph::build(&exec).unwrap();
        assert_eq!(g.writes_of(Location::new(0)).len(), 1);
        assert_eq!(g.accesses_of(Location::new(0)).len(), 3);
        assert_eq!(g.writes_of(Location::new(9)).len(), 0);
        assert_eq!(g.op_count(), 7);
    }

    #[test]
    fn errors_display() {
        assert_eq!(
            GraphError::CausalCycle.to_string(),
            "causality relation is cyclic"
        );
    }
}
