//! Graphviz rendering of executions and their causality graphs — the
//! debugging view for checker findings.

use std::fmt::Write as _;

use memcore::OpKind;

use crate::checker::CausalReport;
use crate::exec::{Execution, OpRef};
use crate::graph::{CausalGraph, GraphError};

/// Renders an execution's causality graph in Graphviz DOT:
/// processes as rows, program order as solid edges, reads-from as dashed
/// edges, and (when a report is supplied) violating reads in red.
///
/// # Errors
///
/// Returns a [`GraphError`] if the execution is malformed.
///
/// # Examples
///
/// ```
/// use causal_spec::{paper, render_dot};
///
/// let dot = render_dot(&paper::figure1(), None)?;
/// assert!(dot.starts_with("digraph execution"));
/// assert!(dot.contains("style=dashed")); // a reads-from edge
/// # Ok::<(), causal_spec::GraphError>(())
/// ```
pub fn render_dot<V: Clone + std::fmt::Debug>(
    exec: &Execution<V>,
    report: Option<&CausalReport>,
) -> Result<String, GraphError> {
    let graph = CausalGraph::build(exec)?;
    let mut out = String::new();
    let _ = writeln!(out, "digraph execution {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    let violating = |r: OpRef| {
        report
            .map(|rep| rep.violations.iter().any(|v| v.read == r))
            .unwrap_or(false)
    };

    for (p, ops) in exec.processes().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_p{p} {{");
        let _ = writeln!(out, "    label=\"P{p}\";");
        for (i, op) in ops.iter().enumerate() {
            let r = OpRef::new(p, i);
            let label = match op.kind {
                OpKind::Read => format!("r({}){:?}", op.loc, op.value),
                OpKind::Write => format!("w({}){:?}", op.loc, op.value),
            };
            let color = if violating(r) {
                ", color=red, fontcolor=red"
            } else {
                ""
            };
            let _ = writeln!(out, "    n_{p}_{i} [label=\"{label}\"{color}];");
        }
        // Program order.
        for i in 1..ops.len() {
            let _ = writeln!(out, "    n_{p}_{} -> n_{p}_{i};", i - 1);
        }
        let _ = writeln!(out, "  }}");
    }

    // Reads-from edges (dashed), excluding initial writes.
    for (r, op) in exec.iter_ops() {
        if op.kind == OpKind::Read && !op.write_id.is_initial() {
            if let Some(w) = graph.write_by_id(op.write_id) {
                if w != r {
                    let _ = writeln!(
                        out,
                        "  n_{}_{} -> n_{}_{} [style=dashed, constraint=false];",
                        w.process, w.index, r.process, r.index
                    );
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_causal;
    use crate::paper;

    #[test]
    fn figure1_renders_all_ops_and_edges() {
        let exec = paper::figure1();
        let dot = render_dot(&exec, None).unwrap();
        assert!(dot.contains("subgraph cluster_p0"));
        assert!(dot.contains("subgraph cluster_p1"));
        // 7 operations → 7 nodes (cluster labels use a different syntax).
        assert_eq!(dot.matches("[label=\"").count(), 7);
        // Reads-from edges exist.
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn violations_are_highlighted() {
        let exec = paper::figure3();
        let report = check_causal(&exec).unwrap();
        let dot = render_dot(&exec, Some(&report)).unwrap();
        assert!(dot.contains("color=red"));
        // Exactly one red node (the violating read appears with both color
        // and fontcolor attributes on one line).
        assert_eq!(dot.matches("color=red").count(), 2);
    }

    #[test]
    fn clean_executions_have_no_red() {
        let exec = paper::figure2();
        let report = check_causal(&exec).unwrap();
        let dot = render_dot(&exec, Some(&report)).unwrap();
        assert!(!dot.contains("color=red"));
    }
}
