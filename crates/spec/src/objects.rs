//! Per-object sequential-spec checking: the oracle layer for typed
//! objects built over causal registers.
//!
//! The register checker ([`crate::check_causal`]) certifies Definition 2 —
//! every *read* returns a live value. Objects (counters, sets, maps,
//! queues) are programs over those registers, so register-level causality
//! is necessary but not sufficient: a buggy merge policy can return a
//! wrong *object-level* answer from perfectly causal register reads.
//! Following Mostéfaoui, Perrin & Raynal (arXiv:1802.00706), an object
//! defined by a sequential specification is causally consistent when each
//! process's observed history is explained by the specification applied
//! to the writes in its causal past.
//!
//! This module provides the framework, generic over the cell value type
//! and the object's operation alphabet:
//!
//! * [`TypedOp`] — one completed high-level operation, carrying its
//!   descriptor, abstract return value, and the tagged register
//!   observations ([`Obs`]) and writes that implemented it;
//! * [`TypedRecorder`] — clone-shared per-process collection of typed
//!   operations, the object-layer analogue of [`memcore::Recorder`];
//! * [`ObjectSpec`] — an object's sequential specification as a decision
//!   procedure: given what an operation *observed*, what must it have
//!   *returned*? Concrete specs (PN-counter, OR-set, map, FIFO queue)
//!   live in `dsm-objects`, next to their runtime implementations.
//! * [`check_object`] — runs a recorded typed history against a spec,
//!   plus the generic causal-past checks every object inherits from the
//!   registers underneath (same-writer observation monotonicity; no
//!   resurrection of the initial value).
//!
//! The register execution recorded alongside (via [`memcore::Recorder`])
//! should still be fed to [`crate::check_causal`]; `check_object` layers
//! the object semantics on top of, not instead of, Definition 2.

use std::fmt;
use std::sync::Arc;

use memcore::{Location, NodeId, WriteId};
use parking_lot::Mutex;

/// One tagged register access made while executing a typed operation: the
/// cell read (or written), the write tag the engine reported, and the
/// cell value.
#[derive(Clone, Debug, PartialEq)]
pub struct Obs<V> {
    /// The location accessed.
    pub loc: Location,
    /// The write the access observed (for reads) or issued (for writes).
    pub wid: WriteId,
    /// The cell value read or written.
    pub value: V,
}

impl<V> Obs<V> {
    /// Creates an observation record.
    pub fn new(loc: Location, wid: WriteId, value: V) -> Self {
        Obs { loc, wid, value }
    }
}

/// One completed typed operation, as recorded by an object client.
///
/// `desc` names the operation and its arguments (the object's alphabet),
/// `returned` its abstract result; `observed` lists every tagged register
/// read the operation performed, in program order, and `wrote` every
/// register write it issued. The observations are the operation's *view*:
/// the spec checker reconstructs the expected return from them alone.
#[derive(Clone, Debug)]
pub struct TypedOp<V, D, R> {
    /// The operation descriptor (kind + arguments).
    pub desc: D,
    /// The abstract value the operation returned to the application.
    pub returned: R,
    /// Tagged register reads underpinning the operation, in issue order.
    pub observed: Vec<Obs<V>>,
    /// Tagged register writes the operation issued, in issue order.
    pub wrote: Vec<Obs<V>>,
}

/// One process's typed-operation log in issue order.
pub type TypedLog<V, D, R> = Vec<TypedOp<V, D, R>>;

/// Collects per-process typed-operation logs from running object clients.
///
/// Cheap to clone (internally shared), mirroring [`memcore::Recorder`].
#[derive(Debug)]
pub struct TypedRecorder<V, D, R> {
    procs: Arc<Vec<Mutex<TypedLog<V, D, R>>>>,
}

impl<V, D, R> Clone for TypedRecorder<V, D, R> {
    fn clone(&self) -> Self {
        TypedRecorder {
            procs: Arc::clone(&self.procs),
        }
    }
}

impl<V: Clone, D: Clone, R: Clone> TypedRecorder<V, D, R> {
    /// Creates a recorder for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        TypedRecorder {
            procs: Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect()),
        }
    }

    /// Appends `op` to `node`'s program-order log.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this recorder.
    pub fn record(&self, node: NodeId, op: TypedOp<V, D, R>) {
        self.procs[node.index()].lock().push(op);
    }

    /// Snapshots all per-process logs, in process order.
    #[must_use]
    pub fn processes(&self) -> Vec<TypedLog<V, D, R>> {
        self.procs.iter().map(|m| m.lock().clone()).collect()
    }

    /// Total typed operations recorded across all processes.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.procs.iter().map(|m| m.lock().len()).sum()
    }
}

/// An object's sequential specification as a decision procedure over
/// recorded operations.
///
/// The contract ties the *abstract* level to the *register* level: every
/// typed operation records the cell snapshot it observed, and the spec
/// answers "given that view, what return does the sequential
/// specification dictate?" — independently re-deriving the answer the
/// runtime computed, so a broken runtime merge/conflict policy diverges
/// from its spec and is caught (the mutation tests rely on exactly this).
pub trait ObjectSpec<V> {
    /// The operation alphabet (kind + arguments).
    type Desc: Clone + fmt::Debug;
    /// Abstract return values.
    type Ret: Clone + fmt::Debug + PartialEq;

    /// The return value the sequential specification dictates for `op`,
    /// given the cell snapshot it observed — or `None` when the spec has
    /// nothing to say (e.g. pure update operations).
    fn expected(&self, op: &TypedOp<V, Self::Desc, Self::Ret>) -> Option<Self::Ret>;

    /// Per-process stream invariants beyond single-op correctness
    /// (per-producer FIFO order, monotone counter components, …).
    /// Returns rendered violations.
    fn check_stream(
        &self,
        process: usize,
        ops: &[TypedOp<V, Self::Desc, Self::Ret>],
    ) -> Vec<String> {
        let _ = (process, ops);
        Vec::new()
    }

    /// Whole-history invariants needing every process's log at once
    /// (cross-process FIFO prefix agreement, convergence after
    /// quiescence, …). Returns rendered violations.
    fn check_history(&self, history: &[TypedLog<V, Self::Desc, Self::Ret>]) -> Vec<String> {
        let _ = history;
        Vec::new()
    }
}

/// The verdict of [`check_object`].
#[derive(Clone, Debug)]
pub struct ObjectReport {
    /// Rendered violations (empty for correct histories).
    pub violations: Vec<String>,
    /// Typed operations checked.
    pub ops_checked: usize,
}

impl ObjectReport {
    /// `true` iff no violation was found.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ObjectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_correct() {
            return write!(f, "object history ok ({} ops)", self.ops_checked);
        }
        writeln!(f, "object history REJECTED ({} ops):", self.ops_checked)?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Checks a recorded typed history against an object's sequential
/// specification, plus the causality checks every object inherits from
/// its registers:
///
/// 1. **Spec conformance** — each operation's `returned` must equal the
///    spec's [`expected`](ObjectSpec::expected) answer for its view.
/// 2. **Observation monotonicity** — within one process, successive
///    observations of the same cell must never regress to an *earlier
///    write of the same writer*, nor resurrect the initial value after
///    any write was observed (both are dead under Definition 2: the
///    earlier write is in the later one's causal past).
/// 3. The spec's own [`check_stream`](ObjectSpec::check_stream) and
///    [`check_history`](ObjectSpec::check_history) invariants.
#[must_use]
pub fn check_object<V, S: ObjectSpec<V>>(
    history: &[TypedLog<V, S::Desc, S::Ret>],
    spec: &S,
) -> ObjectReport {
    let mut violations = Vec::new();
    let mut ops_checked = 0;
    for (p, ops) in history.iter().enumerate() {
        // Per-location observation front: (writers' max seq, any write seen).
        let mut front: std::collections::HashMap<Location, std::collections::HashMap<NodeId, u64>> =
            std::collections::HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            ops_checked += 1;
            if let Some(exp) = spec.expected(op) {
                if exp != op.returned {
                    violations.push(format!(
                        "P{p}[{i}] {:?}: returned {:?}, but the sequential spec \
                         dictates {:?} for the observed snapshot",
                        op.desc, op.returned, exp
                    ));
                }
            }
            for obs in &op.observed {
                let seen = front.entry(obs.loc).or_default();
                if obs.wid.is_initial() {
                    if !seen.is_empty() {
                        violations.push(format!(
                            "P{p}[{i}] {:?}: observed the initial value of {} after \
                             observing a write to it (dead under Definition 2)",
                            op.desc, obs.loc
                        ));
                    }
                } else {
                    let writer = obs.wid.writer().expect("non-initial write has a writer");
                    let seq = obs.wid.seq();
                    let max = seen.entry(writer).or_insert(seq);
                    if seq < *max {
                        violations.push(format!(
                            "P{p}[{i}] {:?}: observation of {} regressed to {}'s \
                             write #{seq} after #{max} (overwritten in its causal past)",
                            op.desc, obs.loc, writer
                        ));
                    } else {
                        *max = seq;
                    }
                }
            }
        }
        violations.extend(spec.check_stream(p, ops));
    }
    violations.extend(spec.check_history(history));
    ObjectReport {
        violations,
        ops_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A toy register spec: cells are i64, `desc` is the location read,
    // `returned` must equal the observed cell value.
    struct RegSpec;
    impl ObjectSpec<i64> for RegSpec {
        type Desc = u32;
        type Ret = i64;
        fn expected(&self, op: &TypedOp<i64, u32, i64>) -> Option<i64> {
            op.observed.last().map(|o| o.value)
        }
    }

    fn obs(loc: u32, node: u32, seq: u64, value: i64) -> Obs<i64> {
        Obs::new(
            Location::new(loc),
            WriteId::new(NodeId::new(node), seq),
            value,
        )
    }

    #[test]
    fn conforming_history_passes() {
        let history = vec![vec![TypedOp {
            desc: 0u32,
            returned: 7i64,
            observed: vec![obs(0, 1, 0, 7)],
            wrote: vec![],
        }]];
        let report = check_object(&history, &RegSpec);
        assert!(report.is_correct(), "{report}");
        assert_eq!(report.ops_checked, 1);
    }

    #[test]
    fn spec_divergence_is_reported() {
        let history = vec![vec![TypedOp {
            desc: 0u32,
            returned: 8i64,
            observed: vec![obs(0, 1, 0, 7)],
            wrote: vec![],
        }]];
        let report = check_object(&history, &RegSpec);
        assert!(!report.is_correct());
        assert!(report.violations[0].contains("sequential spec"), "{report}");
    }

    #[test]
    fn same_writer_regression_is_reported() {
        let history = vec![vec![
            TypedOp {
                desc: 0u32,
                returned: 9i64,
                observed: vec![obs(0, 1, 5, 9)],
                wrote: vec![],
            },
            TypedOp {
                desc: 0u32,
                returned: 7i64,
                observed: vec![obs(0, 1, 2, 7)],
                wrote: vec![],
            },
        ]];
        let report = check_object(&history, &RegSpec);
        assert!(report.violations.iter().any(|v| v.contains("regressed")));
    }

    #[test]
    fn initial_resurrection_is_reported() {
        let initial = Obs::new(Location::new(0), WriteId::initial(Location::new(0)), 0i64);
        let history = vec![vec![
            TypedOp {
                desc: 0u32,
                returned: 9i64,
                observed: vec![obs(0, 1, 5, 9)],
                wrote: vec![],
            },
            TypedOp {
                desc: 0u32,
                returned: 0i64,
                observed: vec![initial],
                wrote: vec![],
            },
        ]];
        let report = check_object(&history, &RegSpec);
        assert!(report.violations.iter().any(|v| v.contains("initial")));
    }

    #[test]
    fn recorder_collects_per_process() {
        let rec: TypedRecorder<i64, u32, i64> = TypedRecorder::new(2);
        rec.record(
            NodeId::new(1),
            TypedOp {
                desc: 0u32,
                returned: 1i64,
                observed: vec![],
                wrote: vec![],
            },
        );
        let procs = rec.clone().processes();
        assert_eq!(procs[0].len(), 0);
        assert_eq!(procs[1].len(), 1);
        assert_eq!(rec.total_ops(), 1);
    }
}
