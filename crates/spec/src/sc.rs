//! A brute-force sequential-consistency checker.
//!
//! Used for the Figure-5 separation: the weakly consistent execution the
//! owner protocol admits has **no** sequentially consistent witness — no
//! interleaving of the process sequences lets every read return the latest
//! write. Deciding SC is NP-hard in general; executions here are tiny, so
//! exhaustive search with memoization is fine.

use std::collections::{HashMap, HashSet};

use memcore::{Location, OpKind, WriteId};

use crate::exec::Execution;

/// The result of searching for a sequentially consistent witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScVerdict {
    /// A witness interleaving exists; the per-operation schedule is given
    /// as `(process, index)` pairs in execution order.
    Consistent(Vec<(usize, usize)>),
    /// No interleaving satisfies the register property.
    Inconsistent,
}

impl ScVerdict {
    /// `true` iff a witness was found.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        matches!(self, ScVerdict::Consistent(_))
    }
}

/// Searches for an interleaving of the process sequences in which every
/// read returns the most recent preceding write to its location (initial
/// writes count as writes before everything).
///
/// Reads and writes are matched by [`WriteId`], so values never need
/// comparing.
///
/// # Examples
///
/// ```
/// use causal_spec::{check_sequential, Execution};
///
/// // P0: w(x)1 ; P1: r(x)1 — trivially SC.
/// let exec = Execution::<i64>::builder(2).write(0, 0, 1).read(1, 0, 1).build();
/// assert!(check_sequential(&exec).is_consistent());
/// ```
#[must_use]
pub fn check_sequential<V: Clone>(exec: &Execution<V>) -> ScVerdict {
    let n = exec.process_count();
    let mut positions = vec![0usize; n];
    let mut memory: HashMap<Location, WriteId> = HashMap::new();
    let mut schedule = Vec::with_capacity(exec.total_ops());
    let mut seen: HashSet<u64> = HashSet::new();

    if dfs(exec, &mut positions, &mut memory, &mut schedule, &mut seen) {
        ScVerdict::Consistent(schedule)
    } else {
        ScVerdict::Inconsistent
    }
}

fn state_key(positions: &[usize], memory: &HashMap<Location, WriteId>) -> u64 {
    // FNV-style hash of (positions, sorted memory contents). Collisions
    // would only cause extra search, never wrong verdicts — but we store
    // full equality via the hash of a canonical encoding, so keep it
    // deterministic and well-mixed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for &p in positions {
        mix(p as u64 + 1);
    }
    let mut entries: Vec<_> = memory.iter().collect();
    entries.sort();
    for (loc, wid) in entries {
        mix(loc.index() as u64 + 0x9e37);
        mix(match wid.writer() {
            Some(w) => ((w.index() as u64) << 32) | wid.seq(),
            None => u64::MAX - wid.seq(),
        });
    }
    h
}

fn dfs<V: Clone>(
    exec: &Execution<V>,
    positions: &mut Vec<usize>,
    memory: &mut HashMap<Location, WriteId>,
    schedule: &mut Vec<(usize, usize)>,
    seen: &mut HashSet<u64>,
) -> bool {
    if positions
        .iter()
        .enumerate()
        .all(|(p, &i)| i == exec.process(p).len())
    {
        return true;
    }
    if !seen.insert(state_key(positions, memory)) {
        return false;
    }
    for p in 0..positions.len() {
        let i = positions[p];
        if i == exec.process(p).len() {
            continue;
        }
        let op = &exec.process(p)[i];
        match op.kind {
            OpKind::Read => {
                let current = memory
                    .get(&op.loc)
                    .copied()
                    .unwrap_or_else(|| WriteId::initial(op.loc));
                if current != op.write_id {
                    continue; // this read cannot be scheduled now
                }
                positions[p] += 1;
                schedule.push((p, i));
                if dfs(exec, positions, memory, schedule, seen) {
                    return true;
                }
                schedule.pop();
                positions[p] -= 1;
            }
            OpKind::Write => {
                let prev = memory.insert(op.loc, op.write_id);
                positions[p] += 1;
                schedule.push((p, i));
                if dfs(exec, positions, memory, schedule, seen) {
                    return true;
                }
                schedule.pop();
                positions[p] -= 1;
                match prev {
                    Some(w) => {
                        memory.insert(op.loc, w);
                    }
                    None => {
                        memory.remove(&op.loc);
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_execution_is_sc() {
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .read(1, 0, 1)
            .build();
        let verdict = check_sequential(&exec);
        assert!(verdict.is_consistent());
        if let ScVerdict::Consistent(schedule) = verdict {
            assert_eq!(schedule.len(), 2);
            assert_eq!(schedule[0], (0, 0)); // write must come first
        }
    }

    #[test]
    fn figure5_has_no_sc_witness() {
        // P1: r(y)0 w(x)1 r(y)0 ; P2: r(x)0 w(y)1 r(x)0.
        // Each process's final read requires the other's write not to have
        // happened yet — impossible in any total order.
        let exec = Execution::<i64>::builder(2)
            .read_initial(0, 1, 0)
            .write(0, 0, 1)
            .read_initial(0, 1, 0)
            .read_initial(1, 0, 0)
            .write(1, 1, 1)
            .read_initial(1, 0, 0)
            .build();
        assert_eq!(check_sequential(&exec), ScVerdict::Inconsistent);
    }

    #[test]
    fn dekker_style_both_zero_reads_not_sc() {
        // P0: w(x)1 r(y)0 ; P1: w(y)1 r(x)0 — the classic SC litmus.
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .read_initial(0, 1, 0)
            .write(1, 1, 1)
            .read_initial(1, 0, 0)
            .build();
        assert_eq!(check_sequential(&exec), ScVerdict::Inconsistent);
    }

    #[test]
    fn one_zero_read_is_sc() {
        // P0: w(x)1 r(y)1 ; P1: w(y)1 r(x)0 is realizable:
        // P1's ops first? r(x)0 needs x unwritten → order: w(y)1, r...
        // schedule: P1.w(y)1, P1.r(x)0, P0.w(x)1, P0.r(y)1.
        let exec = Execution::<i64>::builder(2)
            .write(1, 1, 1)
            .read_initial(1, 0, 0)
            .write(0, 0, 1)
            .read(0, 1, 1)
            .build();
        assert!(check_sequential(&exec).is_consistent());
    }

    #[test]
    fn overwritten_read_order_is_not_sc() {
        // P0: w(x)1 w(x)2 ; P1: r(x)2 r(x)1 — 1 cannot follow 2 in any
        // total order consistent with P0's program order.
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .write(0, 0, 2)
            .read(1, 0, 2)
            .read(1, 0, 1)
            .build();
        assert_eq!(check_sequential(&exec), ScVerdict::Inconsistent);
    }

    #[test]
    fn concurrent_disagreeing_readers_are_not_sc_but_are_causal() {
        // P0: w(x)1 ; P1: w(x)2 ; P2: r(x)1 r(x)2 ; P3: r(x)2 r(x)1.
        // Readers disagree on the order of concurrent writes — allowed by
        // causal memory, not by SC.
        let exec = Execution::<i64>::builder(4)
            .write(0, 0, 1)
            .write(1, 0, 2)
            .read(2, 0, 1)
            .read(2, 0, 2)
            .read(3, 0, 2)
            .read(3, 0, 1)
            .build();
        assert_eq!(check_sequential(&exec), ScVerdict::Inconsistent);
        assert!(crate::check_causal(&exec).unwrap().is_correct());
    }

    #[test]
    fn empty_execution_is_sc() {
        let exec = Execution::<i64>::from_processes(vec![vec![], vec![]]);
        assert!(check_sequential(&exec).is_consistent());
    }

    #[test]
    fn schedule_respects_program_order() {
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .write(0, 1, 2)
            .read(1, 1, 2)
            .read(1, 0, 1)
            .build();
        let ScVerdict::Consistent(schedule) = check_sequential(&exec) else {
            panic!("expected SC");
        };
        let mut last: HashMap<usize, usize> = HashMap::new();
        for (p, i) in schedule {
            if let Some(&prev) = last.get(&p) {
                assert!(i > prev);
            }
            last.insert(p, i);
        }
    }
}
