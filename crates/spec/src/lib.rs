//! Executable specification of **causal memory** (ICDCS'91, §2).
//!
//! This crate turns the paper's definitions into decision procedures over
//! recorded executions:
//!
//! * [`Execution`] — processes as operation sequences, with unique write
//!   tags and an exact reads-from relation (built by hand for the paper's
//!   figures, or snapshotted from a running engine's
//!   [`memcore::Recorder`]).
//! * [`CausalGraph`] — the causality relation `→` (program order ∪
//!   reads-from) and its transitive closure `→*`.
//! * [`alpha`] — **Definition 1**: the live set `α(o)` of each read.
//! * [`check_causal`] — **Definition 2**: an execution is correct iff
//!   every read returns a live value.
//! * [`check_sequential`] — a brute-force sequential-consistency witness
//!   search, used to prove the Figure-5 execution is *weakly* consistent
//!   (causal but not SC).
//!
//! The paper's own worked examples are this crate's acceptance tests: the
//! α sets of Figure 2 are reproduced exactly ({0,5}, {0,2,3}, {4,7,9},
//! {4,9}), Figure 3 is rejected, and Figure 5 is accepted causally while
//! provably having no SC witness.
//!
//! # Examples
//!
//! ```
//! use causal_spec::{check_causal, check_sequential, Execution};
//!
//! // Figure 5: the weakly consistent execution (x=0, y=1).
//! let exec = Execution::<i64>::builder(2)
//!     .read_initial(0, 1, 0)
//!     .write(0, 0, 1)
//!     .read_initial(0, 1, 0)
//!     .read_initial(1, 0, 0)
//!     .write(1, 1, 1)
//!     .read_initial(1, 0, 0)
//!     .build();
//! assert!(check_causal(&exec)?.is_correct());         // causal: yes
//! assert!(!check_sequential(&exec).is_consistent());  // SC: no
//! # Ok::<(), causal_spec::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alpha;
mod checker;
mod dot;
mod exec;
mod graph;
pub mod objects;
pub mod paper;
mod sc;
mod sessions;

pub use alpha::{alpha, alpha_with_mode, LiveSet, NoticeMode};
pub use checker::{
    check_causal, check_causal_mode, check_causal_with_graph, CausalReport, Violation,
};
pub use dot::render_dot;
pub use exec::{Execution, ExecutionBuilder, OpRef};
pub use graph::{CausalGraph, GraphError};
pub use objects::{check_object, ObjectReport, ObjectSpec, Obs, TypedOp, TypedRecorder};
pub use sc::{check_sequential, ScVerdict};
pub use sessions::{check_sessions, SessionGuarantee, SessionViolation};
