//! Live sets — Definition 1, executable.
//!
//! For a read `o = r(x)v`, the live set `α(o)` contains every value the
//! read may correctly return. Evaluated over all causal relationships in
//! the execution *except* the reads-from ordering established by `o`
//! itself:
//!
//! 1. a write `o' = w(x)v` **concurrent** with `o` is live;
//! 2. a write that **precedes** `o` is live unless an intervening read or
//!    write of `x` with another value sits causally between them
//!    (that value has been *overwritten* — or its overwriting has been
//!    *noticed* by an intervening read);
//! 3. a write that **follows** `o` is never live.
//!
//! The distinguished initial write of each location participates like any
//! other write: it precedes everything, so it is live iff no access of `x`
//! causally precedes the read.

use std::collections::BTreeSet;

use memcore::{OpKind, WriteId};

use crate::exec::{Execution, OpRef};
use crate::graph::CausalGraph;

/// Which intervening accesses "serve notice" that a value was overwritten
/// (Definition 1, clause 2).
///
/// The paper studies **strict** causal memory, where "an intervening read
/// operation r(x)v' serves notice that v has been overwritten" — reads
/// and writes both eliminate. Its companion theory paper's plain causal
/// memory is weaker: only causally ordered *writes* overwrite, so a
/// process may flip-flop between concurrent values it has merely read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum NoticeMode {
    /// Strict causal memory (this paper): reads and writes intervene.
    #[default]
    ReadsAndWrites,
    /// Plain causal memory: only writes intervene.
    WritesOnly,
}

/// The live set `α(o)` of one read, as the set of write tags whose values
/// the read may return.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiveSet {
    /// The read this set belongs to.
    pub read: OpRef,
    /// Tags of live writes (the initial write's tag included when live).
    pub writes: BTreeSet<WriteId>,
}

impl LiveSet {
    /// `true` iff the value written by `wid` is live.
    #[must_use]
    pub fn contains(&self, wid: WriteId) -> bool {
        self.writes.contains(&wid)
    }

    /// The live *values*, resolved against the execution (the initial
    /// write resolves to `initial`). Sorted by write tag; duplicates (same
    /// value written by different writes) are preserved.
    #[must_use]
    pub fn values<V: Clone + PartialEq>(&self, exec: &Execution<V>, initial: &V) -> Vec<V> {
        let graph_lookup = |wid: WriteId| -> Option<V> {
            exec.iter_ops()
                .find(|(_, op)| op.kind == OpKind::Write && op.write_id == wid)
                .map(|(_, op)| op.value.clone())
        };
        self.writes
            .iter()
            .map(|wid| {
                if wid.is_initial() {
                    initial.clone()
                } else {
                    graph_lookup(*wid).expect("live write exists in execution")
                }
            })
            .collect()
    }
}

/// Computes `α(o)` for the read at `read`, under strict causal memory
/// (the paper's definition).
///
/// # Panics
///
/// Panics if `read` does not refer to a read operation of `exec` (the
/// graph and execution must match).
#[must_use]
pub fn alpha<V: Clone>(exec: &Execution<V>, graph: &CausalGraph, read: OpRef) -> LiveSet {
    alpha_with_mode(exec, graph, read, NoticeMode::ReadsAndWrites)
}

/// [`alpha`] with an explicit [`NoticeMode`].
///
/// # Panics
///
/// Panics if `read` does not refer to a read operation of `exec`.
#[must_use]
pub fn alpha_with_mode<V: Clone>(
    exec: &Execution<V>,
    graph: &CausalGraph,
    read: OpRef,
    mode: NoticeMode,
) -> LiveSet {
    let op = exec.op(read);
    assert_eq!(op.kind, OpKind::Read, "alpha is defined for reads");
    let loc = op.loc;

    let mut writes = BTreeSet::new();

    // Real writes of x.
    for &w in graph.writes_of(loc) {
        if w == read {
            continue;
        }
        // Clause 3: writes that causally follow o are never live.
        if graph.precedes(read, w) {
            continue;
        }
        if !graph.precedes_read_excl(w, read) {
            // Clause 1: concurrent with o (under the modified relation).
            writes.insert(exec.op(w).write_id);
        } else if !overwritten(exec, graph, w, read, mode) {
            // Clause 2: precedes o with no intervening access.
            writes.insert(exec.op(w).write_id);
        }
    }

    // The initial write precedes everything; it is live iff un-overwritten:
    // no access of x causally precedes o (every access of x follows the
    // initial write by assumption).
    let initial_overwritten = graph.accesses_of(loc).iter().any(|&a| {
        a != read
            && intervenes(exec, a, mode)
            && graph.precedes_read_excl(a, read)
            && reads_other_value(exec, a, WriteId::initial(loc))
    });
    if !initial_overwritten {
        writes.insert(WriteId::initial(loc));
    }

    LiveSet { read, writes }
}

/// Is there an intervening access `o'' = a(x)v'` with
/// `w →* o'' →* read` (the read-side relation excluding the read's own
/// reads-from edge) carrying a *different* value than `w`'s?
fn overwritten<V: Clone>(
    exec: &Execution<V>,
    graph: &CausalGraph,
    w: OpRef,
    read: OpRef,
    mode: NoticeMode,
) -> bool {
    let wid = exec.op(w).write_id;
    graph.accesses_of(exec.op(w).loc).iter().any(|&a| {
        a != w
            && a != read
            && intervenes(exec, a, mode)
            && reads_other_value(exec, a, wid)
            && graph.precedes(w, a)
            && graph.precedes_read_excl(a, read)
    })
}

/// Can access `a` serve notice under this mode?
fn intervenes<V: Clone>(exec: &Execution<V>, a: OpRef, mode: NoticeMode) -> bool {
    match mode {
        NoticeMode::ReadsAndWrites => true,
        NoticeMode::WritesOnly => exec.op(a).kind == OpKind::Write,
    }
}

/// `true` iff access `a` concerns a different write than `wid` (writes are
/// unique, so "different value" is "different write tag"; a read of the
/// same write serves notice of nothing).
fn reads_other_value<V: Clone>(exec: &Execution<V>, a: OpRef, wid: WriteId) -> bool {
    exec.op(a).write_id != wid
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::{Location, NodeId};

    /// Figure 2 of the paper (x=0, y=1, z=2):
    /// P1: w(x)2 w(y)2 w(y)3 r(z)5 w(x)4
    /// P2: w(x)1 r(y)3 w(x)7 w(z)5 r(x)4 r(x)9
    /// P3: r(z)5 w(x)9
    fn figure2() -> Execution<i64> {
        Execution::builder(3)
            .write(0, 0, 2)
            .write(0, 1, 2)
            .write(0, 1, 3)
            .write(1, 0, 1)
            .read(1, 1, 3)
            .write(1, 0, 7)
            .write(1, 2, 5)
            .read(0, 2, 5)
            .write(0, 0, 4)
            .read(2, 2, 5)
            .write(2, 0, 9)
            .read(1, 0, 4)
            .read(1, 0, 9)
            .build()
    }

    fn alpha_values(exec: &Execution<i64>, read: OpRef) -> Vec<i64> {
        let graph = CausalGraph::build(exec).unwrap();
        let mut vals = alpha(exec, &graph, read).values(exec, &0);
        vals.sort_unstable();
        vals
    }

    #[test]
    fn figure2_alpha_of_r1_z5_is_0_and_5() {
        let exec = figure2();
        // P1's r(z)5 is its 4th op (index 3).
        assert_eq!(alpha_values(&exec, OpRef::new(0, 3)), vec![0, 5]);
    }

    #[test]
    fn figure2_alpha_of_r3_z5_is_0_and_5() {
        let exec = figure2();
        assert_eq!(alpha_values(&exec, OpRef::new(2, 0)), vec![0, 5]);
    }

    #[test]
    fn figure2_alpha_of_r2_y3_is_0_2_3() {
        let exec = figure2();
        // P2's r(y)3 is its 2nd op (index 1).
        assert_eq!(alpha_values(&exec, OpRef::new(1, 1)), vec![0, 2, 3]);
    }

    #[test]
    fn figure2_alpha_of_r2_x4_is_4_7_9() {
        let exec = figure2();
        // P2's r(x)4 is its 5th op (index 4).
        assert_eq!(alpha_values(&exec, OpRef::new(1, 4)), vec![4, 7, 9]);
    }

    #[test]
    fn figure2_alpha_of_final_read_is_4_and_9() {
        let exec = figure2();
        // "P2's second read of x may correctly return only 4 or 9."
        assert_eq!(alpha_values(&exec, OpRef::new(1, 5)), vec![4, 9]);
    }

    #[test]
    fn initial_value_live_until_noticed() {
        // P0: w(x)1 ; P1: r(x)0 — P1 has seen nothing: α = {0, 1} (the
        // write is concurrent; initial is unoverwritten).
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .read_initial(1, 0, 0)
            .build();
        assert_eq!(alpha_values(&exec, OpRef::new(1, 0)), vec![0, 1]);
    }

    #[test]
    fn own_write_overwrites_initial() {
        // P0: w(x)1 r(x)1 — after its own write, 0 is no longer live.
        let exec = Execution::<i64>::builder(1)
            .write(0, 0, 1)
            .read(0, 0, 1)
            .build();
        assert_eq!(alpha_values(&exec, OpRef::new(0, 1)), vec![1]);
    }

    #[test]
    fn intervening_read_serves_notice() {
        // P0: w(x)1 w(x)2 ; P1: r(x)2 r(x)? — P1's first read (of 2)
        // serves notice that 1 was overwritten: α(second read) = {2}.
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .write(0, 0, 2)
            .read(1, 0, 2)
            .read(1, 0, 2)
            .build();
        assert_eq!(alpha_values(&exec, OpRef::new(1, 1)), vec![2]);
    }

    #[test]
    fn unseen_overwrite_leaves_old_value_live() {
        // P0: w(x)1 w(x)2 ; P1: r(x)1 — both writes concurrent with the
        // read under the modified relation: α = {0, 1, 2}. (P1 has seen
        // nothing, so even the initial 0 is live.)
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .write(0, 0, 2)
            .read(1, 0, 1)
            .build();
        assert_eq!(alpha_values(&exec, OpRef::new(1, 0)), vec![0, 1, 2]);
    }

    #[test]
    fn writes_following_the_read_are_never_live() {
        // P0: r(x)? w(x)5 — the write follows the read in program order.
        let exec = Execution::<i64>::builder(1)
            .read_initial(0, 0, 0)
            .write(0, 0, 5)
            .build();
        assert_eq!(alpha_values(&exec, OpRef::new(0, 0)), vec![0]);
    }

    #[test]
    fn live_set_contains_checks_tags() {
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .read(1, 0, 1)
            .build();
        let graph = CausalGraph::build(&exec).unwrap();
        let set = alpha(&exec, &graph, OpRef::new(1, 0));
        let wid = exec.op(OpRef::new(0, 0)).write_id;
        assert!(set.contains(wid));
        assert!(set.contains(WriteId::initial(Location::new(0))));
        assert!(!set.contains(WriteId::new(NodeId::new(5), 0)));
    }

    #[test]
    fn writes_only_mode_keeps_merely_read_values_live() {
        // P0: w(x)1 ; P1: w(x)2 ; P2: r1 r2 r1 — under strict causal
        // memory the second read of 1 is illegal (the read of 2 served
        // notice); under plain causal memory (writes-only notice) 1 stays
        // live because no *write* sits causally between w(x)1 and the
        // read.
        let exec = Execution::<i64>::builder(3)
            .write(0, 0, 1)
            .write(1, 0, 2)
            .read(2, 0, 1)
            .read(2, 0, 2)
            .read(2, 0, 1)
            .build();
        let graph = CausalGraph::build(&exec).unwrap();
        let third = OpRef::new(2, 2);
        let strict = alpha_with_mode(&exec, &graph, third, NoticeMode::ReadsAndWrites);
        let plain = alpha_with_mode(&exec, &graph, third, NoticeMode::WritesOnly);
        let wid1 = exec.op(OpRef::new(0, 0)).write_id;
        assert!(!strict.contains(wid1), "strict: read served notice");
        assert!(plain.contains(wid1), "plain: only writes overwrite");
    }

    #[test]
    fn modes_agree_when_writes_do_the_overwriting() {
        // P0: w(x)1 ; P1: r(x)1 w(x)2 ; P2: r(x)2 then ask about 1 —
        // the overwriting access is a *write*, so both modes eliminate 1.
        let exec = Execution::<i64>::builder(3)
            .write(0, 0, 1)
            .read(1, 0, 1)
            .write(1, 0, 2)
            .read(2, 0, 2)
            .read(2, 0, 2)
            .build();
        let graph = CausalGraph::build(&exec).unwrap();
        let last = OpRef::new(2, 1);
        let wid1 = exec.op(OpRef::new(0, 0)).write_id;
        for mode in [NoticeMode::ReadsAndWrites, NoticeMode::WritesOnly] {
            let set = alpha_with_mode(&exec, &graph, last, mode);
            assert!(!set.contains(wid1), "{mode:?}");
        }
    }

    #[test]
    #[should_panic(expected = "defined for reads")]
    fn alpha_of_a_write_panics() {
        let exec = Execution::<i64>::builder(1).write(0, 0, 1).build();
        let graph = CausalGraph::build(&exec).unwrap();
        let _ = alpha(&exec, &graph, OpRef::new(0, 0));
    }
}
