//! The causal-memory correctness checker — Definition 2, executable.
//!
//! "An execution on causal memory is correct if the value returned by each
//! read operation in the execution is live for that read."

use std::fmt;

use memcore::{OpKind, WriteId};

use crate::alpha::{alpha_with_mode, LiveSet, NoticeMode};
use crate::exec::{Execution, OpRef};
use crate::graph::{CausalGraph, GraphError};

/// One read returning a value outside its live set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The offending read.
    pub read: OpRef,
    /// The write the read returned.
    pub returned: WriteId,
    /// What the read was allowed to return.
    pub live: LiveSet,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {} returned {} but α = {:?}",
            self.read, self.returned, self.live.writes
        )
    }
}

/// The verdict of checking one execution against Definition 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CausalReport {
    /// Reads found returning non-live values (empty for correct
    /// executions).
    pub violations: Vec<Violation>,
    /// Number of reads checked.
    pub reads_checked: usize,
}

impl CausalReport {
    /// `true` iff the execution is correct on causal memory.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for CausalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_correct() {
            write!(f, "correct on causal memory ({} reads)", self.reads_checked)
        } else {
            writeln!(
                f,
                "NOT causal: {} of {} reads violate Definition 2:",
                self.violations.len(),
                self.reads_checked
            )?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Checks an execution against Definition 2 (each read returns a live
/// value).
///
/// # Errors
///
/// Returns a [`GraphError`] if the execution is structurally malformed
/// (dangling reads-from, duplicate write tags, cyclic causality) — such
/// executions are not executions of any memory at all.
///
/// # Examples
///
/// Figure 2 of the paper is correct; flipping one read's value breaks it:
///
/// ```
/// use causal_spec::{check_causal, Execution};
///
/// let exec = Execution::<i64>::builder(2)
///     .write(0, 0, 1)
///     .write(0, 0, 2)
///     .read(1, 0, 2) // P1 sees 2 ...
///     .read(1, 0, 2) // ... and may read 2 again
///     .build();
/// assert!(check_causal(&exec)?.is_correct());
///
/// let bad = Execution::<i64>::builder(2)
///     .write(0, 0, 1)
///     .write(0, 0, 2)
///     .read(1, 0, 2) // P1 sees 2 (overwriting 1) ...
///     .read(1, 0, 1) // ... then reads the overwritten 1: violation.
///     .build();
/// assert!(!check_causal(&bad)?.is_correct());
/// # Ok::<(), causal_spec::GraphError>(())
/// ```
pub fn check_causal<V: Clone>(exec: &Execution<V>) -> Result<CausalReport, GraphError> {
    let graph = CausalGraph::build(exec)?;
    check_causal_with_graph(exec, &graph)
}

/// [`check_causal`] under an explicit [`NoticeMode`] — `WritesOnly`
/// checks the weaker, *plain* causal memory of the paper's companion
/// theory paper (where the memory in this paper is called "strict").
///
/// # Errors
///
/// Returns a [`GraphError`] if the execution is structurally malformed.
pub fn check_causal_mode<V: Clone>(
    exec: &Execution<V>,
    mode: NoticeMode,
) -> Result<CausalReport, GraphError> {
    let graph = CausalGraph::build(exec)?;
    check_with(exec, &graph, mode)
}

/// [`check_causal`] against a prebuilt graph (avoids rebuilding when the
/// caller also needs α sets).
///
/// # Errors
///
/// Infallible today; mirrors [`check_causal`] for interface stability.
pub fn check_causal_with_graph<V: Clone>(
    exec: &Execution<V>,
    graph: &CausalGraph,
) -> Result<CausalReport, GraphError> {
    check_with(exec, graph, NoticeMode::ReadsAndWrites)
}

fn check_with<V: Clone>(
    exec: &Execution<V>,
    graph: &CausalGraph,
    mode: NoticeMode,
) -> Result<CausalReport, GraphError> {
    let mut violations = Vec::new();
    let mut reads_checked = 0;
    for (r, op) in exec.iter_ops() {
        if op.kind != OpKind::Read {
            continue;
        }
        reads_checked += 1;
        let live = alpha_with_mode(exec, graph, r, mode);
        if !live.contains(op.write_id) {
            violations.push(Violation {
                read: r,
                returned: op.write_id,
                live,
            });
        }
    }
    Ok(CausalReport {
        violations,
        reads_checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2 (§2): the paper's worked example of a correct execution.
    fn figure2() -> Execution<i64> {
        Execution::builder(3)
            .write(0, 0, 2)
            .write(0, 1, 2)
            .write(0, 1, 3)
            .write(1, 0, 1)
            .read(1, 1, 3)
            .write(1, 0, 7)
            .write(1, 2, 5)
            .read(0, 2, 5)
            .write(0, 0, 4)
            .read(2, 2, 5)
            .write(2, 0, 9)
            .read(1, 0, 4)
            .read(1, 0, 9)
            .build()
    }

    #[test]
    fn figure2_is_correct_on_causal_memory() {
        let report = check_causal(&figure2()).unwrap();
        assert!(report.is_correct(), "{report}");
        assert_eq!(report.reads_checked, 5);
        assert!(report.to_string().contains("correct"));
    }

    #[test]
    fn figure3_is_not_causal_memory() {
        // Figure 3 (x=0, y=1, z=2):
        // P1: w(x)5 w(y)3
        // P2: w(x)2 r(y)3 r(x)5 w(z)4
        // P3: r(z)4 r(x)2
        // "2 is not in α(r(x)2)" — the final read violates Definition 2.
        let exec = Execution::<i64>::builder(3)
            .write(0, 0, 5)
            .write(0, 1, 3)
            .write(1, 0, 2)
            .read(1, 1, 3)
            .read(1, 0, 5)
            .write(1, 2, 4)
            .read(2, 2, 4)
            .read(2, 0, 2)
            .build();
        let report = check_causal(&exec).unwrap();
        assert!(!report.is_correct());
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.read, crate::OpRef::new(2, 1));
        assert!(v.to_string().contains("P2[1]"));
    }

    #[test]
    fn figure5_weakly_consistent_execution_is_causal() {
        // Figure 5 (x=0, y=1):
        // P1: r(y)0 w(x)1 r(y)0
        // P2: r(x)0 w(y)1 r(x)0
        let exec = Execution::<i64>::builder(2)
            .read_initial(0, 1, 0)
            .write(0, 0, 1)
            .read_initial(0, 1, 0)
            .read_initial(1, 0, 0)
            .write(1, 1, 1)
            .read_initial(1, 0, 0)
            .build();
        let report = check_causal(&exec).unwrap();
        assert!(report.is_correct(), "{report}");
    }

    #[test]
    fn reading_overwritten_value_is_flagged() {
        // P0: w(x)1 w(x)2 ; P1: r(x)2 r(x)1 — the second read returns a
        // value its first read proved overwritten.
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .write(0, 0, 2)
            .read(1, 0, 2)
            .read(1, 0, 1)
            .build();
        let report = check_causal(&exec).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].read, crate::OpRef::new(1, 1));
    }

    #[test]
    fn stale_initial_after_own_read_is_flagged() {
        // P0: w(x)1 ; P1: r(x)1 r(x)0 — after seeing 1, 0 is overwritten.
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .read(1, 0, 1)
            .read_initial(1, 0, 0)
            .build();
        let report = check_causal(&exec).unwrap();
        assert!(!report.is_correct());
    }

    #[test]
    fn strict_is_stricter_than_plain() {
        // The flip-flop execution separates the two memories.
        let exec = Execution::<i64>::builder(3)
            .write(0, 0, 1)
            .write(1, 0, 2)
            .read(2, 0, 1)
            .read(2, 0, 2)
            .read(2, 0, 1)
            .build();
        assert!(!check_causal(&exec).unwrap().is_correct());
        assert!(check_causal_mode(&exec, NoticeMode::WritesOnly)
            .unwrap()
            .is_correct());
    }

    #[test]
    fn malformed_executions_error() {
        use memcore::{Location, NodeId, OpRecord, WriteId};
        let ghost = WriteId::new(NodeId::new(9), 0);
        let exec =
            Execution::from_processes(vec![vec![OpRecord::read(Location::new(0), 1i64, ghost)]]);
        assert!(check_causal(&exec).is_err());
    }

    #[test]
    fn empty_execution_is_trivially_correct() {
        let exec = Execution::<i64>::from_processes(vec![vec![], vec![]]);
        let report = check_causal(&exec).unwrap();
        assert!(report.is_correct());
        assert_eq!(report.reads_checked, 0);
    }
}
