//! Session-guarantee checkers: read-your-writes and monotonic reads.
//!
//! These are *stronger* than Definition 2 in one direction: causal memory
//! permits a process to read a value concurrent with its own latest write
//! (any concurrent-write resolution must pick someone's loser). The owner
//! protocol therefore does **not** provide them in general — but it does
//! whenever no two processes write the same location concurrently (e.g.
//! the single-writer-per-location layouts of both §4 applications), which
//! the property suites verify. These checkers make that boundary precise:
//! they are diagnostics for *where* causal memory is weaker than a session
//! -guaranteed store, not part of its correctness condition.

use std::collections::HashMap;
use std::fmt;

use memcore::{Location, OpKind, WriteId};

use crate::exec::{Execution, OpRef};
use crate::graph::{CausalGraph, GraphError};

/// Which session guarantee a read broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionGuarantee {
    /// The read returned a value that neither is nor causally follows the
    /// reader's own latest prior write to the location.
    ReadYourWrites,
    /// The read returned a value strictly causally older than one the same
    /// process read earlier from the same location.
    MonotonicReads,
}

impl fmt::Display for SessionGuarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionGuarantee::ReadYourWrites => write!(f, "read-your-writes"),
            SessionGuarantee::MonotonicReads => write!(f, "monotonic reads"),
        }
    }
}

/// One session-guarantee violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionViolation {
    /// The guarantee broken.
    pub guarantee: SessionGuarantee,
    /// The offending read.
    pub read: OpRef,
    /// The write the read returned.
    pub returned: WriteId,
    /// The write it should have matched or followed.
    pub expected_at_least: WriteId,
}

impl fmt::Display for SessionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violated at {}: returned {} against {}",
            self.guarantee, self.read, self.returned, self.expected_at_least
        )
    }
}

/// Checks both session guarantees over an execution.
///
/// # Errors
///
/// Returns a [`GraphError`] if the execution is structurally malformed.
///
/// # Examples
///
/// ```
/// use causal_spec::{Execution, check_sessions};
///
/// // P0 writes then reads its own value: fine.
/// let ok = Execution::<i64>::builder(1).write(0, 0, 1).read(0, 0, 1).build();
/// assert!(check_sessions(&ok)?.is_empty());
///
/// // P0 writes 1 but reads back the initial 0: read-your-writes broken
/// // (even though plain causal memory might allow a concurrent value).
/// let bad = Execution::<i64>::builder(1)
///     .write(0, 0, 1)
///     .read_initial(0, 0, 0)
///     .build();
/// assert_eq!(check_sessions(&bad)?.len(), 1);
/// # Ok::<(), causal_spec::GraphError>(())
/// ```
pub fn check_sessions<V: Clone>(exec: &Execution<V>) -> Result<Vec<SessionViolation>, GraphError> {
    let graph = CausalGraph::build(exec)?;
    let mut violations = Vec::new();

    for p in 0..exec.process_count() {
        // Latest own write per location, and latest read-from per location.
        let mut own_write: HashMap<Location, WriteId> = HashMap::new();
        let mut last_read: HashMap<Location, WriteId> = HashMap::new();
        for (i, op) in exec.process(p).iter().enumerate() {
            let read = OpRef::new(p, i);
            match op.kind {
                OpKind::Write => {
                    own_write.insert(op.loc, op.write_id);
                }
                OpKind::Read => {
                    if let Some(&expected) = own_write.get(&op.loc) {
                        if !at_least(&graph, op.write_id, expected) {
                            violations.push(SessionViolation {
                                guarantee: SessionGuarantee::ReadYourWrites,
                                read,
                                returned: op.write_id,
                                expected_at_least: expected,
                            });
                        }
                    }
                    if let Some(&previous) = last_read.get(&op.loc) {
                        if strictly_older(&graph, op.write_id, previous) {
                            violations.push(SessionViolation {
                                guarantee: SessionGuarantee::MonotonicReads,
                                read,
                                returned: op.write_id,
                                expected_at_least: previous,
                            });
                        }
                    }
                    last_read.insert(op.loc, op.write_id);
                }
            }
        }
    }
    Ok(violations)
}

/// `returned` is `expected` or causally follows it.
fn at_least(graph: &CausalGraph, returned: WriteId, expected: WriteId) -> bool {
    if returned == expected {
        return true;
    }
    if expected.is_initial() {
        // Everything follows the initial write.
        return true;
    }
    match (graph.write_by_id(expected), write_ref(graph, returned)) {
        (Some(e), Some(r)) => graph.precedes(e, r),
        // Returned an initial write while a real write was expected.
        _ => false,
    }
}

/// `returned` strictly causally precedes `previous` (a regression).
fn strictly_older(graph: &CausalGraph, returned: WriteId, previous: WriteId) -> bool {
    if returned == previous {
        return false;
    }
    if returned.is_initial() {
        // The initial write precedes every real write to its location.
        return !previous.is_initial();
    }
    match (write_ref(graph, returned), graph.write_by_id(previous)) {
        (Some(r), Some(p)) => graph.precedes(r, p),
        _ => false,
    }
}

fn write_ref(graph: &CausalGraph, wid: WriteId) -> Option<OpRef> {
    if wid.is_initial() {
        None
    } else {
        graph.write_by_id(wid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_executions_have_no_violations() {
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .read(0, 0, 1)
            .read(1, 0, 1)
            .read(1, 0, 1)
            .build();
        assert!(check_sessions(&exec).unwrap().is_empty());
    }

    #[test]
    fn reading_initial_after_own_write_breaks_ryw() {
        let exec = Execution::<i64>::builder(1)
            .write(0, 0, 1)
            .read_initial(0, 0, 0)
            .build();
        let violations = check_sessions(&exec).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].guarantee, SessionGuarantee::ReadYourWrites);
        assert!(violations[0].to_string().contains("read-your-writes"));
    }

    #[test]
    fn reading_a_concurrent_value_after_own_write_breaks_ryw_but_not_def2() {
        // P0 writes 1; P1 concurrently writes 2; P0 then reads 2. Causal
        // memory allows it (2 is concurrent, hence live) but
        // read-your-writes does not: 2 does not follow P0's own write.
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .write(1, 0, 2)
            .read(0, 0, 2)
            .build();
        assert!(crate::check_causal(&exec).unwrap().is_correct());
        let violations = check_sessions(&exec).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].guarantee, SessionGuarantee::ReadYourWrites);
    }

    #[test]
    fn causally_newer_value_satisfies_ryw() {
        // P0 writes 1; P1 reads it and writes 2 (so 2 follows 1); P0 reads
        // 2: fine.
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .read(1, 0, 1)
            .write(1, 0, 2)
            .read(0, 0, 2)
            .build();
        assert!(check_sessions(&exec).unwrap().is_empty());
    }

    #[test]
    fn regressing_reads_break_monotonicity() {
        // P0 writes 1 then (after P1 read it) P1 writes 2; P2 reads 2
        // then 1: monotonic-reads violation (also a Def-2 violation).
        let exec = Execution::<i64>::builder(3)
            .write(0, 0, 1)
            .read(1, 0, 1)
            .write(1, 0, 2)
            .read(2, 0, 2)
            .read(2, 0, 1)
            .build();
        let violations = check_sessions(&exec).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].guarantee, SessionGuarantee::MonotonicReads);
    }

    #[test]
    fn regressing_to_initial_breaks_monotonicity() {
        let exec = Execution::<i64>::builder(2)
            .write(0, 0, 1)
            .read(1, 0, 1)
            .read_initial(1, 0, 0)
            .build();
        let violations = check_sessions(&exec).unwrap();
        assert!(violations
            .iter()
            .any(|v| v.guarantee == SessionGuarantee::MonotonicReads));
    }

    #[test]
    fn concurrent_value_switches_do_not_break_monotonicity() {
        // Reading 2 then the concurrent 1 is not a *monotonic-reads*
        // regression (no causal order between them) — strict causal
        // memory's flip-flop rule is the stronger constraint here.
        let exec = Execution::<i64>::builder(3)
            .write(0, 0, 1)
            .write(1, 0, 2)
            .read(2, 0, 2)
            .read(2, 0, 1)
            .build();
        assert!(check_sessions(&exec).unwrap().is_empty());
    }
}
