//! Differential test of the α(o) implementation against a naive reference
//! that follows Definition 1 with no shortcuts: for each read, the
//! reads-from edge established by that read is literally *removed* from
//! the edge set and reachability recomputed by DFS.
//!
//! The production implementation instead reasons through the read's
//! program-order predecessor (`precedes_read_excl`); this suite proves the
//! two agree on random executions.

use std::collections::BTreeSet;

use causal_spec::{alpha, CausalGraph, Execution, OpRef};
use memcore::{Location, NodeId, OpKind, OpRecord, WriteId};
use proptest::prelude::*;

/// Plain edge-list causality graph with per-read edge exclusion.
struct NaiveGraph {
    n: usize,
    /// Adjacency as (from, to, is_reads_from) triples over flattened
    /// indices — the kind tag keeps a reads-from edge distinguishable from
    /// a program-order edge between the same pair (a write immediately
    /// followed by its own reader has both).
    edges: Vec<(usize, usize, bool)>,
    flat: Vec<usize>, // process -> base index
}

impl NaiveGraph {
    fn build<V: Clone>(exec: &Execution<V>) -> Self {
        let mut flat = Vec::new();
        let mut n = 0;
        for p in 0..exec.process_count() {
            flat.push(n);
            n += exec.process(p).len();
        }
        let idx = |r: OpRef, flat: &[usize]| flat[r.process] + r.index;

        let mut edges = Vec::new();
        // Program order.
        for (r, _) in exec.iter_ops() {
            if r.index + 1 < exec.process(r.process).len() {
                edges.push((idx(r, &flat), idx(r, &flat) + 1, false));
            }
        }
        // Reads-from.
        for (r, op) in exec.iter_ops() {
            if op.kind == OpKind::Read && !op.write_id.is_initial() {
                let w = exec
                    .iter_ops()
                    .find(|(_, o)| o.kind == OpKind::Write && o.write_id == op.write_id)
                    .map(|(wr, _)| wr)
                    .expect("write exists");
                if w != r {
                    edges.push((idx(w, &flat), idx(r, &flat), true));
                }
            }
        }
        NaiveGraph { n, edges, flat }
    }

    fn idx(&self, r: OpRef) -> usize {
        self.flat[r.process] + r.index
    }

    /// `a →* b` strictly, optionally excluding one reads-from edge.
    fn reaches(&self, a: OpRef, b: OpRef, excluded: Option<(usize, usize)>) -> bool {
        let (a, b) = (self.idx(a), self.idx(b));
        if a == b {
            return false;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![a];
        while let Some(node) = stack.pop() {
            for &(from, to, is_rf) in &self.edges {
                let is_excluded = is_rf && Some((from, to)) == excluded;
                if from == node && !is_excluded && !seen[to] {
                    if to == b {
                        return true;
                    }
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        false
    }
}

/// Definition 1, verbatim, with per-read edge removal.
fn naive_alpha<V: Clone>(exec: &Execution<V>, read: OpRef) -> BTreeSet<WriteId> {
    let graph = NaiveGraph::build(exec);
    let read_op = exec.op(read);
    assert_eq!(read_op.kind, OpKind::Read);

    // The edge to exclude: the reads-from edge into this read.
    let excluded = if read_op.write_id.is_initial() {
        None
    } else {
        exec.iter_ops()
            .find(|(_, o)| o.kind == OpKind::Write && o.write_id == read_op.write_id)
            .map(|(w, _)| (graph.idx(w), graph.idx(read)))
            .filter(|(w, r)| w != r)
    };

    let mut live = BTreeSet::new();
    let writes: Vec<(OpRef, WriteId)> = exec
        .iter_ops()
        .filter(|(_, o)| o.kind == OpKind::Write && o.loc == read_op.loc)
        .map(|(r, o)| (r, o.write_id))
        .collect();

    for &(w, wid) in &writes {
        if w == read {
            continue;
        }
        // Clause 3: follows the read (full relation; the excluded edge is
        // an IN-edge of the read, irrelevant to paths FROM it).
        if graph.reaches(read, w, excluded) {
            continue;
        }
        if !graph.reaches(w, read, excluded) {
            // Clause 1: concurrent under the modified relation.
            live.insert(wid);
        } else {
            // Clause 2: precedes with no intervening access of x carrying
            // a different write.
            let intervening = exec.iter_ops().any(|(a, o)| {
                a != w
                    && a != read
                    && o.loc == read_op.loc
                    && o.write_id != wid
                    && graph.reaches(w, a, excluded)
                    && graph.reaches(a, read, excluded)
            });
            if !intervening {
                live.insert(wid);
            }
        }
    }

    // The initial write: precedes everything; live unless an access of x
    // with a different (non-initial-of-x) write sits before the read.
    let initial = WriteId::initial(read_op.loc);
    let overwritten = exec.iter_ops().any(|(a, o)| {
        a != read
            && o.loc == read_op.loc
            && o.write_id != initial
            && graph.reaches(a, read, excluded)
    });
    if !overwritten {
        live.insert(initial);
    }
    live
}

/// Random executions with (mostly) sensible reads-from: each read picks a
/// random prior-or-concurrent write of its location, or the initial write.
fn random_execution() -> impl Strategy<Value = Execution<i64>> {
    let op = (0usize..3, 0u32..3, any::<u8>());
    proptest::collection::vec(op, 1..18).prop_map(|steps| {
        let mut procs: Vec<Vec<OpRecord<i64>>> = vec![Vec::new(); 3];
        let mut writes_so_far: Vec<(Location, WriteId, i64)> = Vec::new();
        let mut seqs = [0u64; 3];
        let mut counter = 0i64;
        for (p, l, pick) in steps {
            let loc = Location::new(l);
            if pick % 3 == 0 {
                counter += 1;
                let wid = WriteId::new(NodeId::new(p as u32), seqs[p]);
                seqs[p] += 1;
                writes_so_far.push((loc, wid, counter));
                procs[p].push(OpRecord::write(loc, counter, wid));
            } else {
                // Read from a random existing write of this location, or
                // the initial write.
                let candidates: Vec<_> = writes_so_far
                    .iter()
                    .filter(|(wl, _, _)| *wl == loc)
                    .collect();
                if candidates.is_empty() || pick % 3 == 1 {
                    procs[p].push(OpRecord::read(loc, 0, WriteId::initial(loc)));
                } else {
                    let (_, wid, v) = candidates[pick as usize % candidates.len()];
                    procs[p].push(OpRecord::read(loc, *v, *wid));
                }
            }
        }
        Execution::from_processes(procs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The optimized α agrees with the naive Definition-1 reference on
    /// every read of every random execution.
    #[test]
    fn alpha_matches_naive_reference(exec in random_execution()) {
        // Skip the rare cyclic constructions (a process reading its own
        // later write); both implementations reject those structurally.
        let Ok(graph) = CausalGraph::build(&exec) else {
            return Ok(());
        };
        for (r, op) in exec.iter_ops() {
            if op.kind != OpKind::Read {
                continue;
            }
            let fast = alpha(&exec, &graph, r).writes;
            let slow = naive_alpha(&exec, r);
            prop_assert_eq!(
                &fast, &slow,
                "α disagrees at {}: fast {:?} vs naive {:?}\nexec: {:?}",
                r, fast, slow, exec
            );
        }
    }
}
