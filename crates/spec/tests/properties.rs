//! Property tests for the executable specification itself.
//!
//! The key inclusion the paper leans on: sequential consistency is
//! *strictly stronger* than causal memory, so every SC execution must pass
//! the Definition-2 checker — and executions that "notice" an overwrite
//! and then return the overwritten value must fail it.

use causal_spec::{check_causal, check_sequential, Execution, ScVerdict};
use memcore::{Location, NodeId, OpRecord, WriteId};
use proptest::prelude::*;

/// Generate a random *sequentially consistent* execution by construction:
/// pick a global schedule of (process, is_write, location) steps and let
/// every read return the latest write in schedule order.
fn sc_execution(
    processes: usize,
    locations: u32,
    steps: usize,
) -> impl Strategy<Value = Execution<i64>> {
    proptest::collection::vec((0..processes, any::<bool>(), 0..locations), 1..=steps).prop_map(
        move |schedule| {
            let mut procs: Vec<Vec<OpRecord<i64>>> = vec![Vec::new(); processes];
            let mut latest: Vec<WriteId> = (0..locations)
                .map(|l| WriteId::initial(Location::new(l)))
                .collect();
            let mut latest_value: Vec<i64> = vec![0; locations as usize];
            let mut seqs = vec![0u64; processes];
            let mut counter = 0i64;
            for (p, is_write, l) in schedule {
                let loc = Location::new(l);
                if is_write {
                    counter += 1;
                    let wid = WriteId::new(NodeId::new(p as u32), seqs[p]);
                    seqs[p] += 1;
                    latest[l as usize] = wid;
                    latest_value[l as usize] = counter;
                    procs[p].push(OpRecord::write(loc, counter, wid));
                } else {
                    procs[p].push(OpRecord::read(
                        loc,
                        latest_value[l as usize],
                        latest[l as usize],
                    ));
                }
            }
            Execution::from_processes(procs)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SC ⊂ causal: anything a sequentially consistent memory can do,
    /// causal memory allows.
    #[test]
    fn sequentially_consistent_executions_are_causal(
        exec in sc_execution(3, 3, 24),
    ) {
        let report = check_causal(&exec).expect("well formed by construction");
        prop_assert!(report.is_correct(), "SC execution rejected:\n{report}");
    }

    /// And the SC checker itself finds the witness we built them from
    /// (kept small: witness search is exponential).
    #[test]
    fn sc_checker_accepts_constructed_sc_executions(
        exec in sc_execution(2, 2, 10),
    ) {
        prop_assert!(matches!(check_sequential(&exec), ScVerdict::Consistent(_)));
    }

    /// Noticing an overwrite and then reading the overwritten value is
    /// always a violation: append `r(x)new  r(x)old` to a process after
    /// two program-ordered writes of `x` elsewhere.
    #[test]
    fn noticed_overwrites_are_always_caught(
        filler in sc_execution(2, 2, 10),
    ) {
        // Build: keep the filler execution intact; P0 additionally writes
        // x twice (old then new); P1 then reads new, then reads old.
        let mut procs: Vec<Vec<OpRecord<i64>>> =
            filler.processes().to_vec();
        let x = Location::new(9); // a fresh location untouched by filler
        let w_old = WriteId::new(NodeId::new(0), 900);
        let w_new = WriteId::new(NodeId::new(0), 901);
        procs[0].push(OpRecord::write(x, 100i64, w_old));
        procs[0].push(OpRecord::write(x, 200, w_new));
        procs[1].push(OpRecord::read(x, 200, w_new));
        procs[1].push(OpRecord::read(x, 100, w_old));
        let exec = Execution::from_processes(procs);
        let report = check_causal(&exec).expect("well formed");
        prop_assert!(!report.is_correct());
        // The stale read is among the violations.
        prop_assert!(
            report
                .violations
                .iter()
                .any(|v| v.returned == w_old),
            "stale read not flagged: {report}"
        );
    }

    /// Dropping all reads from any execution leaves a trivially correct
    /// one (writes alone cannot violate Definition 2).
    #[test]
    fn write_only_executions_are_correct(exec in sc_execution(3, 3, 20)) {
        let writes_only: Vec<Vec<OpRecord<i64>>> = exec
            .processes()
            .iter()
            .map(|ops| ops.iter().filter(|op| !op.is_read()).cloned().collect())
            .collect();
        let exec = Execution::from_processes(writes_only);
        prop_assert!(check_causal(&exec).unwrap().is_correct());
    }

    /// The checker is deterministic: checking twice gives identical
    /// reports.
    #[test]
    fn checker_is_deterministic(exec in sc_execution(3, 3, 20)) {
        let a = check_causal(&exec).unwrap();
        let b = check_causal(&exec).unwrap();
        prop_assert_eq!(a, b);
    }
}

/// A subtlety of *strict* causal memory (Definition 1, clause 2): once a
/// process has read value 1 and then reads the concurrent value 2, the
/// read of 2 is an intervening access between `w(x)1` (which now causally
/// precedes the process's operations via its first read) and any later
/// read — so flip-flopping back to 1 is a violation, even though the two
/// writes themselves are concurrent.
#[test]
fn reads_of_concurrent_values_cannot_flip_flop() {
    let exec = Execution::<i64>::builder(3)
        .write(0, 0, 1)
        .write(1, 0, 2)
        .read(2, 0, 1)
        .read(2, 0, 2)
        .read(2, 0, 1)
        .build();
    let report = check_causal(&exec).unwrap();
    assert!(!report.is_correct());
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].read.index, 2);

    // Without the first read, 1 never causally precedes P2's reads, so
    // finishing on 1 is fine: readers may disagree about concurrent
    // writes' order, they just cannot individually regress.
    let exec = Execution::<i64>::builder(3)
        .write(0, 0, 1)
        .write(1, 0, 2)
        .read(2, 0, 2)
        .read(2, 0, 1)
        .build();
    assert!(check_causal(&exec).unwrap().is_correct());
}

/// But once the *writer* of one value has seen the other and writes again,
/// order exists and stale reads get caught downstream.
#[test]
fn causally_chained_writes_do_overwrite() {
    // P0: w(x)1 ; P1: r(x)1 w(x)2 ; P2: r(x)2 r(x)1 — P2's second read
    // returns a value that 2 overwrote (w1 →* w2 via P1's read).
    let exec = Execution::<i64>::builder(3)
        .write(0, 0, 1)
        .read(1, 0, 1)
        .write(1, 0, 2)
        .read(2, 0, 2)
        .read(2, 0, 1)
        .build();
    let report = check_causal(&exec).unwrap();
    assert!(!report.is_correct());
}
