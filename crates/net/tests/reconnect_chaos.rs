//! Chaos: a peer socket dies mid-run and the mesh must heal itself.
//!
//! A three-node loopback cluster runs the mixed workload with
//! session-backed links (`reconnect on`). Partway through its slice, the
//! highest-numbered node hard-drops its socket toward node 0 — both
//! directions, as a real network failure would. The redial policy brings
//! the connection back, the session layer replays the unacked window,
//! and the run must finish with a history the Definition-2 oracle
//! accepts. No operation may be lost, duplicated, or reordered by the
//! transport outage.

use std::net::TcpListener;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use causal_spec::{check_causal, Execution};
use dsm_net::harness::mixed_script;
use dsm_net::{ClusterSpec, NetCluster, NetOptions, WireStats};
use memcore::{NodeId, Recorder, SharedMemory};

const NODES: u32 = 3;
const LOCATIONS: u32 = 32;
const SCRIPT_LEN: usize = 1536;

#[test]
fn severed_socket_mid_run_heals_and_stays_causal() {
    let listeners: Vec<TcpListener> = (0..NODES)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect();
    let spec = ClusterSpec::new(LOCATIONS, addrs).with_net(NetOptions {
        reconnect: true,
        rto_ms: 30,
        ..NetOptions::default()
    });
    let recorder: Recorder<Vec<u8>> = Recorder::new(NODES as usize);
    let script = Arc::new(mixed_script(NODES, LOCATIONS, 99, SCRIPT_LEN, 60));
    let go = Arc::new(Barrier::new(NODES as usize));
    let done = Arc::new(Barrier::new(NODES as usize));

    let threads: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let me = NodeId::new(i as u32);
            let spec = spec.clone();
            let recorder = recorder.clone();
            let script = Arc::clone(&script);
            let go = Arc::clone(&go);
            let done = Arc::clone(&done);
            thread::Builder::new()
                .name(format!("chaos-node-{me}"))
                .spawn(move || {
                    let cluster = NetCluster::start(
                        &spec,
                        me,
                        listener,
                        Some(recorder),
                        Duration::from_secs(30),
                    )
                    .expect("establish cluster");
                    // The event-driven mesh owns exactly two threads —
                    // an acceptor and the poller — however many peers.
                    assert_eq!(cluster.mesh_thread_count(), 2);
                    let handle = cluster.handle();
                    go.wait();
                    let mut executed = 0u64;
                    for (j, &(node, loc, is_read)) in script.entries.iter().enumerate() {
                        if node != me.index() as u32 {
                            continue;
                        }
                        executed += 1;
                        // The chaos: the redialing side (highest id)
                        // repeatedly kills its link to node 0 mid-run,
                        // including while requests are outstanding on it.
                        if me.index() == 2 && executed.is_multiple_of(100) {
                            cluster.sever(NodeId::new(0));
                        }
                        if is_read {
                            handle.read(loc).expect("read across the outage");
                        } else {
                            handle
                                .write(loc, script.pool[j & 63].clone())
                                .expect("write across the outage");
                        }
                    }
                    done.wait();
                    let wire = cluster.wire_stats();
                    cluster.shutdown();
                    (executed, wire)
                })
                .expect("spawn node thread")
        })
        .collect();

    let mut ops = 0u64;
    let mut wire = WireStats::default();
    for handle in threads {
        let (executed, node_wire) = handle.join().expect("node thread");
        ops += executed;
        wire += node_wire;
    }
    assert_eq!(ops, SCRIPT_LEN as u64, "every scripted op must complete");
    assert!(
        wire.reconnects >= 1,
        "the severed link must have been re-established"
    );
    assert!(
        wire.retx >= 1,
        "healing must replay the session window (saw {} reconnects)",
        wire.reconnects
    );

    let execution = Execution::from_recorder(&recorder);
    let verdict = check_causal(&execution).expect("well formed");
    assert!(
        verdict.is_correct(),
        "oracle rejected the healed run: {verdict}"
    );
}
