//! Satellite of the TCP transport PR: the `dsm-faults` session protocol
//! over a *real* TCP connection that is hard-dropped and re-established
//! mid-run.
//!
//! TCP is reliable per connection, but a connection that dies takes its
//! in-flight bytes with it — exactly the gap `ReliableLink` closes with
//! sequence numbers, cumulative acks, and RTO retransmission. This test
//! kills the socket with unacknowledged writes outstanding, brings up a
//! fresh connection, lets the retransmission timer fire (twice, so real
//! duplicates cross the wire), and requires every payload to come out
//! exactly once, in order.

use std::io::Write as _;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::Duration;

use bytes::Bytes;
use dsm_faults::session::{ReliableLink, SessionMsg};
use dsm_net::framing::{read_frame, write_frame, MAX_FRAME};
use memcore::NodeId;
use simnet::codec::FrameDecoder;

fn a_id() -> NodeId {
    NodeId::new(0)
}
fn b_id() -> NodeId {
    NodeId::new(1)
}
const RTO: u64 = 10;

struct Endpoint {
    stream: TcpStream,
    dec: FrameDecoder,
}

impl Endpoint {
    fn new(stream: TcpStream) -> Self {
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Endpoint {
            stream,
            dec: FrameDecoder::new(MAX_FRAME),
        }
    }

    fn send(&mut self, msg: &SessionMsg<u64>) {
        write_frame(&mut self.stream, msg).unwrap();
        self.stream.flush().unwrap();
    }

    fn recv(&mut self) -> SessionMsg<u64> {
        let body: Bytes = read_frame(&mut self.stream, &mut self.dec)
            .expect("socket alive")
            .expect("peer still sending");
        dsm_net::framing::decode_body(body).expect("well-formed session frame")
    }
}

fn connect(listener: &TcpListener) -> (Endpoint, Endpoint) {
    let addr = listener.local_addr().unwrap();
    let client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    (Endpoint::new(client), Endpoint::new(server))
}

/// Ships `count` data frames A→B over `wire`, delivers them at B, and
/// routes B's acks back into A.
fn exchange(
    a: &mut (Endpoint, ReliableLink<u64>),
    b: &mut (Endpoint, ReliableLink<u64>),
    now: u64,
    values: std::ops::Range<u64>,
    delivered: &mut Vec<u64>,
) {
    let count = usize::try_from(values.end - values.start).unwrap();
    for v in values {
        let frame = a.1.send(now, b_id(), v);
        a.0.send(&frame);
    }
    for _ in 0..count {
        let msg = b.0.recv();
        let (replies, released) = b.1.on_receive(now, a_id(), msg);
        delivered.extend(released);
        for reply in replies {
            b.0.send(&reply);
        }
    }
    // Drain B's acks into A's link.
    while a.1.unacked() > 0 {
        let msg = a.0.recv();
        let (replies, released) = a.1.on_receive(now, b_id(), msg);
        assert!(replies.is_empty() && released.is_empty(), "acks are silent");
    }
}

#[test]
fn certified_writes_survive_a_tcp_connection_drop() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut link_a: ReliableLink<u64> = ReliableLink::new(RTO);
    let mut link_b: ReliableLink<u64> = ReliableLink::new(RTO);
    let mut delivered: Vec<u64> = Vec::new();

    // Healthy phase: 0..80 flow and are acknowledged.
    let (ep_a, ep_b) = connect(&listener);
    let mut a = (ep_a, link_a);
    let mut b = (ep_b, link_b);
    exchange(&mut a, &mut b, 0, 0..80, &mut delivered);
    assert_eq!(a.1.unacked(), 0);

    // Hard drop: 80..120 are sent into a connection B has already
    // abandoned — their bytes are lost with it.
    b.0.stream.shutdown(Shutdown::Both).unwrap();
    for v in 80..120 {
        let frame = a.1.send(1, b_id(), v);
        // The kernel may buffer or may fail with a reset; both are
        // fine — the point is B never sees these bytes.
        let _ = write_frame(&mut a.0.stream, &frame);
    }
    // May already be reset by the peer's shutdown — either way it's dead.
    let _ = a.0.stream.shutdown(Shutdown::Both);
    assert_eq!(a.1.unacked(), 40);

    // Reconnect and let the RTO fire twice before any ack comes back:
    // two full copies of every lost write cross the new connection, so
    // B's dedup is exercised by genuine wire duplicates.
    let (ep_a2, ep_b2) = connect(&listener);
    (link_a, link_b) = (a.1, b.1);
    let mut a = (ep_a2, link_a);
    let mut b = (ep_b2, link_b);
    let mut resent = 0;
    for fire in 1..=2 {
        let due = a.1.next_timer().expect("unacked writes arm the timer");
        for (dst, frame) in a.1.on_timer(due + fire) {
            assert_eq!(dst, b_id());
            a.0.send(&frame);
            resent += 1;
        }
    }
    assert_eq!(resent, 80, "two retransmission rounds of 40 writes");
    for _ in 0..resent {
        let msg = b.0.recv();
        let (replies, released) = b.1.on_receive(2, a_id(), msg);
        delivered.extend(released);
        for reply in replies {
            b.0.send(&reply);
        }
    }
    while a.1.unacked() > 0 {
        let msg = a.0.recv();
        a.1.on_receive(2, b_id(), msg);
    }

    // Healthy again: the session keeps going on the new connection.
    exchange(&mut a, &mut b, 100, 120..160, &mut delivered);

    // Exactly once, in order, nothing lost — despite 40 writes dying
    // with the first connection and 80 duplicates on the second.
    assert_eq!(delivered, (0..160).collect::<Vec<u64>>());
    assert_eq!(a.1.unacked(), 0);
    assert!(a.1.stats().retransmits >= 40);
}
