//! End-to-end: the causal-memory engine over real loopback TCP sockets,
//! checked against the executable Definition-2 specification.
//!
//! Every node of these clusters is a thread with its *own* partial
//! `Network`, connected to the others only through the kernel's TCP
//! stack — the same data path `dsm-server` processes use.

use causal_spec::check_causal;
use dsm_net::{run_loopback, run_loopback_with, run_loopback_workload, NetOptions};

#[test]
fn four_node_tcp_cluster_is_causal() {
    let report = run_loopback(4, 64, 42, 2048);
    // Entries are drawn uniformly over nodes; every node must have run
    // a meaningful slice.
    assert!(report.ops > 1500, "only {} ops ran", report.ops);
    assert_eq!(report.execution.processes().len(), 4);
    // A mixed workload at 64 locations across 4 owners cannot be
    // message-free; if the bill is empty the mesh was bypassed.
    assert!(
        report.protocol_msgs > 0,
        "no protocol messages crossed the sockets"
    );
    let verdict = check_causal(&report.execution).expect("well formed");
    assert!(verdict.is_correct(), "oracle rejected: {verdict}");
}

#[test]
fn batched_pipelined_cluster_keeps_the_logical_bill() {
    // The PR-7 transport invariant, end to end: switching on write
    // pipelining + batching changes what crosses the kernel — fewer
    // envelopes, batch frames on the wire — but the logical per-kind
    // message bill is byte-identical to the plain run, because batching
    // is an envelope, not a protocol change.
    let plain = run_loopback(4, 64, 42, 2048);
    let batched = run_loopback_with(
        4,
        64,
        42,
        2048,
        &NetOptions {
            pipeline: 8,
            batching: true,
            ..NetOptions::default()
        },
    );
    let verdict = check_causal(&batched.execution).expect("well formed");
    assert!(verdict.is_correct(), "oracle rejected: {verdict}");
    assert_eq!(batched.ops, plain.ops);
    // WRITE traffic is a pure function of the script (ownership is
    // static), so it must not move at all. READ counts are
    // cache-dependent — page fetches serve later reads locally, and the
    // interleaving differs between runs — but every REQUEST must still
    // pair with exactly one reply: the protocol's *shape* is untouched.
    assert_eq!(
        batched.msgs_by_kind.get("WRITE"),
        plain.msgs_by_kind.get("WRITE"),
        "batching must not change the logical WRITE bill"
    );
    assert_eq!(
        batched.msgs_by_kind.get("W_REPLY"),
        plain.msgs_by_kind.get("W_REPLY"),
        "batching must not change the logical W_REPLY bill"
    );
    for run in [&plain, &batched] {
        assert_eq!(
            run.msgs_by_kind.get("READ"),
            run.msgs_by_kind.get("R_REPLY"),
            "every READ pairs with one R_REPLY"
        );
    }
    assert!(
        batched.envelope_msgs < batched.protocol_msgs + batched.overhead_msgs,
        "batching never collapsed messages into shared envelopes \
         ({} envelopes for {} logical msgs)",
        batched.envelope_msgs,
        batched.protocol_msgs + batched.overhead_msgs
    );
    assert!(
        batched.wire.batch_frames > 0,
        "no batch envelope ever crossed a socket"
    );
    // No syscall comparison on the mixed runs: uniform-random owners
    // drain the window on almost every op, so batching saves only ~1%
    // of writev calls here and the draw can land either way. The
    // write-heavy pair below is where the saving is structural.
}

#[test]
fn batching_saves_syscalls_on_a_pipelined_write_stream() {
    // Two nodes, pure writes, deep window: every remote write targets
    // the same owner, so runs accumulate for a full round trip and
    // batching must collapse them into shared envelopes — the kernel
    // sees materially fewer writev calls than one-envelope-per-write.
    // (The bench suite's write_pipeline_tcp cells measure the same
    // shape at ~1.0 → ~0.75 syscalls/op.)
    let opts = NetOptions {
        pipeline: 32,
        ..NetOptions::default()
    };
    let plain = run_loopback_workload(2, 16, 42, 512, 0, &opts);
    let batched = run_loopback_workload(
        2,
        16,
        42,
        512,
        0,
        &NetOptions {
            batching: true,
            ..opts
        },
    );
    let verdict = check_causal(&batched.execution).expect("well formed");
    assert!(verdict.is_correct(), "oracle rejected: {verdict}");
    assert_eq!(batched.ops, plain.ops);
    assert_eq!(
        batched.msgs_by_kind.get("WRITE"),
        plain.msgs_by_kind.get("WRITE"),
        "batching must not change the logical WRITE bill"
    );
    assert!(
        batched.wire.batch_frames > 0,
        "no batch envelope ever crossed a socket"
    );
    // 10% margin: the structural gap is ~25%, far outside scheduling
    // noise in a syscall *count* (not a timing) comparison.
    assert!(
        batched.wire.writev_calls * 10 < plain.wire.writev_calls * 9,
        "batched run did not save syscalls ({} vs {})",
        batched.wire.writev_calls,
        plain.wire.writev_calls
    );
}

#[test]
fn two_node_tcp_cluster_is_causal_across_seeds() {
    for seed in [7, 1991] {
        let report = run_loopback(2, 16, seed, 512);
        let verdict = check_causal(&report.execution).expect("well formed");
        assert!(verdict.is_correct(), "seed {seed}: {verdict}");
    }
}
