//! End-to-end: the causal-memory engine over real loopback TCP sockets,
//! checked against the executable Definition-2 specification.
//!
//! Every node of these clusters is a thread with its *own* partial
//! `Network`, connected to the others only through the kernel's TCP
//! stack — the same data path `dsm-server` processes use.

use causal_spec::check_causal;
use dsm_net::run_loopback;

#[test]
fn four_node_tcp_cluster_is_causal() {
    let report = run_loopback(4, 64, 42, 2048);
    // Entries are drawn uniformly over nodes; every node must have run
    // a meaningful slice.
    assert!(report.ops > 1500, "only {} ops ran", report.ops);
    assert_eq!(report.execution.processes().len(), 4);
    // A mixed workload at 64 locations across 4 owners cannot be
    // message-free; if the bill is empty the mesh was bypassed.
    assert!(
        report.protocol_msgs > 0,
        "no protocol messages crossed the sockets"
    );
    let verdict = check_causal(&report.execution).expect("well formed");
    assert!(verdict.is_correct(), "oracle rejected: {verdict}");
}

#[test]
fn two_node_tcp_cluster_is_causal_across_seeds() {
    for seed in [7, 1991] {
        let report = run_loopback(2, 16, seed, 512);
        let verdict = check_causal(&report.execution).expect("well formed");
        assert!(verdict.is_correct(), "seed {seed}: {verdict}");
    }
}
