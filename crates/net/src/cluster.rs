//! One process's slice of a multi-process causal-memory cluster.
//!
//! [`NetCluster::start`] glues the pieces together: a [`TcpMesh`] to the
//! peers, a partial [`Network`] that hands off-process envelopes to the
//! mesh, and a [`CausalCluster`] hosting only this node — built in
//! *inline* mode, so the mesh's poller thread runs the Figure-4 server
//! loop itself (`InlineSink`) instead of feeding a separate server
//! thread through a mailbox. The protocol is byte-for-byte the
//! in-process one — same `Msg` codec, same Figure-4 serve steps — which
//! is the point: the transport is swappable under an unchanged protocol.

use std::io;
use std::net::TcpListener;
use std::path::Path;
use std::time::Duration;

use causal_dsm::{
    CausalCluster, CausalConfig, CausalHandle, DirDisk, DurableConfig, InlineServer, Msg,
};
use crossbeam_channel::Receiver;
use memcore::{NodeId, Recorder};
use simnet::{Envelope, Network};

use crate::mesh::{CtrlConn, EnvelopeSink, SinkClosed, TcpMesh, WireStats};
use crate::spec::ClusterSpec;

/// The poller-side envelope sink: every decoded inbound envelope is
/// served by the engine's [`InlineServer`] on the poller thread itself.
/// One request costs one thread wake-up instead of two (poller decodes
/// *and* serves), and the process runs no per-node engine thread at all.
struct InlineSink {
    server: InlineServer<Payload>,
    nodes: usize,
    me: NodeId,
}

impl EnvelopeSink<Msg<Payload>> for InlineSink {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn hosts(&self, dst: NodeId) -> bool {
        dst == self.me
    }

    fn deliver(&self, env: Envelope<Msg<Payload>>) -> Result<(), SinkClosed> {
        self.server.deliver(env).map_err(|_| SinkClosed)
    }
}

/// The value type multi-process clusters share: raw bytes, so the load
/// harness controls payload size exactly.
pub type Payload = Vec<u8>;

/// Binds `addr` for listening with `SO_REUSEADDR` set, so a restarted
/// server can reclaim its fixed port while connections of its previous
/// life still sit in TIME_WAIT (a plain `TcpListener::bind` refuses
/// with `EADDRINUSE` for up to a minute). Non-IPv4 addresses fall back
/// to a plain bind.
///
/// # Errors
///
/// Propagates resolution and bind failures.
pub fn bind_reusable(addr: &str) -> io::Result<TcpListener> {
    use std::net::{SocketAddr, ToSocketAddrs};
    let mut last = None;
    for sa in addr.to_socket_addrs()? {
        let attempt = match sa {
            SocketAddr::V4(v4) => polling::sockopt::listen_reusable(v4),
            SocketAddr::V6(_) => TcpListener::bind(sa),
        };
        match attempt {
            Ok(listener) => return Ok(listener),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{addr}: no usable address"),
        )
    }))
}

/// A causal-memory node wired to its peers over TCP.
pub struct NetCluster {
    cluster: CausalCluster<Payload>,
    mesh: TcpMesh<Msg<Payload>>,
    me: NodeId,
}

impl NetCluster {
    /// Brings up this node: binds nothing itself — `listener` must
    /// already be bound to `spec.addr(me)` — establishes the mesh,
    /// and starts the engine for `me` only.
    ///
    /// Blocks until every peer is connected or `timeout` expires.
    ///
    /// # Errors
    ///
    /// Propagates mesh-establishment failures (unreachable peers,
    /// handshake mismatches, timeout).
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `spec` or the engine rejects
    /// the configuration (a bug).
    pub fn start(
        spec: &ClusterSpec,
        me: NodeId,
        listener: TcpListener,
        recorder: Option<Recorder<Payload>>,
        timeout: Duration,
    ) -> io::Result<Self> {
        Self::bring_up(spec, me, listener, recorder, timeout, None)
    }

    /// [`NetCluster::start`] plus a write-ahead log under `data_dir`
    /// (created if absent) — what `dsm-server --data-dir` builds.
    ///
    /// A directory that already holds state makes the node *recover*:
    /// its page images, origin clocks, and owner epochs are replayed
    /// from the checkpoint and log tail, and the node rejoins as a full
    /// peer under a bumped incarnation, which the mesh's session layer
    /// announces so peers fence the previous life's frames. The sync
    /// policy is `every_op`: a write is certified (and its reply sent)
    /// only once the WAL frame is synced, so a `kill -9` loses nothing
    /// that was acknowledged.
    ///
    /// # Errors
    ///
    /// Propagates mesh-establishment failures and `data_dir` I/O errors.
    ///
    /// # Panics
    ///
    /// Same conditions as [`NetCluster::start`].
    pub fn start_durable(
        spec: &ClusterSpec,
        me: NodeId,
        listener: TcpListener,
        recorder: Option<Recorder<Payload>>,
        timeout: Duration,
        data_dir: &Path,
    ) -> io::Result<Self> {
        Self::bring_up(spec, me, listener, recorder, timeout, Some(data_dir))
    }

    fn bring_up(
        spec: &ClusterSpec,
        me: NodeId,
        listener: TcpListener,
        recorder: Option<Recorder<Payload>>,
        timeout: Duration,
        data_dir: Option<&Path>,
    ) -> io::Result<Self> {
        let mesh = TcpMesh::establish(me, spec, listener, timeout)?;
        let net: Network<Msg<Payload>> =
            Network::partial(spec.nodes() as usize, &[me], mesh.link());
        // The spec's transport knobs select the engine's send shape too:
        // a pipeline window lets writes overlap, and batching seals the
        // window's messages into Msg::Batch envelopes — which the mesh
        // then carries in single writev calls.
        let mut builder = CausalConfig::<Payload>::builder(spec.nodes(), spec.locations())
            .pipeline_window(spec.net().pipeline)
            .batching(spec.net().batching);
        if data_dir.is_some() {
            builder = builder.durability(DurableConfig::default());
        }
        let config = builder.build();
        // Engine before poller: inbound frames that arrive in the gap sit
        // in the kernel's socket buffers (the same window they'd spend in
        // a mailbox) until the poller starts and serves them.
        let (cluster, server) = match data_dir {
            None => CausalCluster::with_inline_transport(config, recorder, net, me)
                .expect("engine rejected configuration"),
            Some(dir) => {
                let disk = DirDisk::open(dir)?;
                let (cluster, server) = CausalCluster::with_durable_inline_transport(
                    config,
                    recorder,
                    net,
                    me,
                    Box::new(disk),
                )
                .expect("engine rejected configuration");
                // The sessions must speak for the recovered life before
                // any frame leaves: peers fence on the incarnation.
                mesh.set_incarnation(cluster.node_incarnation(me.index() as u32));
                (cluster, server)
            }
        };
        mesh.start(InlineSink {
            server,
            nodes: spec.nodes() as usize,
            me,
        });
        Ok(NetCluster { cluster, mesh, me })
    }

    /// This node's incarnation: 0 for a first life, the persisted
    /// maximum plus one after a durable recovery.
    #[must_use]
    pub fn incarnation(&self) -> u32 {
        self.cluster.node_incarnation(self.me.index() as u32)
    }

    /// The node this process hosts.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// An operation handle for the local node.
    #[must_use]
    pub fn handle(&self) -> CausalHandle<Payload> {
        self.cluster.handle(self.me.index() as u32)
    }

    /// The local engine (message counters, configuration, …).
    #[must_use]
    pub fn cluster(&self) -> &CausalCluster<Payload> {
        &self.cluster
    }

    /// Control connections accepted on this node's listener.
    #[must_use]
    pub fn ctrl_conns(&self) -> &Receiver<CtrlConn> {
        self.mesh.ctrl_conns()
    }

    /// Wire-level counters of this node's mesh endpoint (frames,
    /// syscalls, retransmissions, reconnects).
    #[must_use]
    pub fn wire_stats(&self) -> WireStats {
        self.mesh.wire_stats()
    }

    /// Mesh threads this endpoint owns — O(1) in cluster size (an
    /// acceptor and a poller), regardless of peer count.
    #[must_use]
    pub fn mesh_thread_count(&self) -> usize {
        self.mesh.thread_count()
    }

    /// Chaos hook: hard-drops the socket toward `peer`, as if the link
    /// failed. With `reconnect on` in the spec the mesh heals itself.
    pub fn sever(&self, peer: NodeId) {
        self.mesh.sever(peer);
    }

    /// Stops the local engine, then tears the mesh down.
    ///
    /// Engine first: raising its stop flag turns the poller's inline
    /// deliveries into no-ops, so the mesh teardown that follows races
    /// with nothing. The poller exiting drops the `InlineSink` — and
    /// with it the engine's reply channel, which is what fails any
    /// application operation still blocked on a remote owner.
    pub fn shutdown(self) {
        self.cluster.shutdown();
        self.mesh.shutdown();
    }
}
