//! One process's slice of a multi-process causal-memory cluster.
//!
//! [`NetCluster::start`] glues the pieces together: a [`TcpMesh`] to the
//! peers, a partial [`Network`] that hands off-process envelopes to the
//! mesh, and a [`CausalCluster`] hosting only this node. The engine is
//! byte-for-byte the in-process one — same `Msg` codec, same Figure-4
//! server loop — which is the point: the transport is swappable under an
//! unchanged protocol.

use std::io;
use std::net::TcpListener;
use std::time::Duration;

use causal_dsm::{CausalCluster, CausalConfig, CausalHandle, Msg};
use crossbeam_channel::Receiver;
use memcore::{NodeId, Recorder};
use simnet::Network;

use crate::mesh::{CtrlConn, TcpMesh};
use crate::spec::ClusterSpec;

/// The value type multi-process clusters share: raw bytes, so the load
/// harness controls payload size exactly.
pub type Payload = Vec<u8>;

/// A causal-memory node wired to its peers over TCP.
pub struct NetCluster {
    cluster: CausalCluster<Payload>,
    mesh: TcpMesh<Msg<Payload>>,
    me: NodeId,
}

impl NetCluster {
    /// Brings up this node: binds nothing itself — `listener` must
    /// already be bound to `spec.addr(me)` — establishes the mesh,
    /// and starts the engine for `me` only.
    ///
    /// Blocks until every peer is connected or `timeout` expires.
    ///
    /// # Errors
    ///
    /// Propagates mesh-establishment failures (unreachable peers,
    /// handshake mismatches, timeout).
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `spec` or the engine rejects
    /// the configuration (a bug).
    pub fn start(
        spec: &ClusterSpec,
        me: NodeId,
        listener: TcpListener,
        recorder: Option<Recorder<Payload>>,
        timeout: Duration,
    ) -> io::Result<Self> {
        let mesh = TcpMesh::establish(me, spec, listener, timeout)?;
        let net: Network<Msg<Payload>> = Network::partial(spec.nodes() as usize, &[me], mesh.link());
        mesh.start(&net);
        let config = CausalConfig::<Payload>::builder(spec.nodes(), spec.locations()).build();
        let cluster = CausalCluster::with_transport(config, recorder, net, &[me])
            .expect("engine rejected configuration");
        Ok(NetCluster { cluster, mesh, me })
    }

    /// The node this process hosts.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// An operation handle for the local node.
    #[must_use]
    pub fn handle(&self) -> CausalHandle<Payload> {
        self.cluster.handle(self.me.index() as u32)
    }

    /// The local engine (message counters, configuration, …).
    #[must_use]
    pub fn cluster(&self) -> &CausalCluster<Payload> {
        &self.cluster
    }

    /// Control connections accepted on this node's listener.
    #[must_use]
    pub fn ctrl_conns(&self) -> &Receiver<CtrlConn> {
        self.mesh.ctrl_conns()
    }

    /// Stops the local engine, then tears the mesh down.
    ///
    /// Engine first: its server thread drains and exits while the
    /// sockets still work, so in-flight replies to peers are not cut
    /// mid-frame.
    pub fn shutdown(self) {
        self.cluster.shutdown();
        self.mesh.shutdown();
    }
}
