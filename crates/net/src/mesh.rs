//! The TCP mesh: one persistent connection per node pair, multiplexed
//! onto a single poller thread, plus an acceptor for control
//! connections.
//!
//! # Topology and handshake
//!
//! Every node binds the listen address its [`ClusterSpec`]
//! entry names. Node `i` dials every node `j < i` and accepts connections
//! from every `j > i`, so each unordered pair shares exactly one
//! connection and there is no simultaneous-open race. Both sides open
//! with a [`Hello`] frame ([`ConnKind::Peer`] plus their node id); the
//! dialer speaks first, the acceptor replies.
//!
//! Controllers (the load generator) connect to the same listener with a
//! [`ConnKind::Ctrl`] hello; those connections are handed to the process
//! through [`TcpMesh::ctrl_conns`] instead of joining the mesh.
//!
//! # Data plane: the event loop
//!
//! Peer sockets run non-blocking and are multiplexed by **one** poller
//! thread (`mesh-poll-{me}`) over a [`polling::Poller`] — `epoll` on
//! Linux, `poll(2)` elsewhere — so the thread inventory is O(1) in peer
//! count instead of the previous reader-thread-per-peer O(n).
//!
//! Sends are buffered: [`MeshLink::send_remote`] encodes the frame,
//! appends it to the destination's outbound queue, and opportunistically
//! drains the queue with a vectored write from the calling thread — one
//! `writev` can carry many frames, which is where the syscall
//! amortization of batched workloads comes from. If the socket
//! backpressures (`EWOULDBLOCK`), the frame stays queued, the poller is
//! woken, and it finishes the drain when the kernel reports the socket
//! writable again. Frame boundaries are preserved across partial writes
//! by tracking the byte offset into the front of the queue.
//!
//! Inbound, the poller reads ready sockets into each connection's
//! [`FrameDecoder`] and hands decoded envelopes to an [`EnvelopeSink`] —
//! either a [`Network`] mailbox (served by an engine thread) or, as
//! `dsm-net`'s cluster wires it, the engine's inline server, which
//! serves each request directly on the poller thread. TCP gives
//! per-connection FIFO and reliability, which is exactly the paper's §3
//! network assumption — see `docs/NET.md`.
//!
//! # Reconnection (session mode)
//!
//! With `reconnect on` in the spec, every peer link runs through a
//! [`ReliableLink`] session: envelope bodies travel inside
//! `SessionMsg::Data` frames with per-link sequence numbers and
//! cumulative acks. A dropped socket is then survivable: the
//! higher-numbered side redials (mirroring the establish direction, so
//! the pair cannot cross-connect), the acceptor hands the replacement
//! connection to the poller, and the session layer replays the entire
//! unacked window ([`ReliableLink::retransmit_to`]) — the receiver's
//! duplicate suppression discards anything that did survive the old
//! socket. Sends issued while the link is down park in the session's
//! unacked window rather than failing. Without `reconnect`, a dead
//! socket fails sends with [`SendError`], as before.
//!
//! Sockets default to `TCP_NODELAY`: the protocol is request/reply and
//! Nagle batching would serialize the owner protocol's round trips.
//! `nodelay`, `sndbuf`, and `rcvbuf` in the spec tune this per cluster.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::marker::PhantomData;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender};
use dsm_faults::{ReliableLink, SessionMsg};
use memcore::NodeId;
use parking_lot::Mutex;
use polling::{Interest, Poller};
use simnet::codec::{frame, FrameDecoder, Wire};
use simnet::{Envelope, Network, RemoteLink, SendError, Tagged};

use crate::framing::{
    decode_body, decode_envelope, encode_envelope, encode_envelope_body, read_hello, write_hello,
    ConnKind, Hello, RawBody, MAX_FRAME,
};
use crate::spec::ClusterSpec;

/// How long each side of a handshake may stall before the connection is
/// abandoned.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

/// Backoff between dial attempts while a peer is still binding (and
/// between redial attempts while it restarts its listener).
const DIAL_RETRY: Duration = Duration::from_millis(25);

/// Poll interval of the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Chunk size for poller reads feeding the frame decoders.
const READ_CHUNK: usize = 64 * 1024;

/// Most frames one vectored write will carry (well under `IOV_MAX`).
const MAX_IOV: usize = 64;

/// A connection plus the decoder holding any bytes read past the
/// handshake — the two must travel together or early frames are lost.
pub struct CtrlConn {
    /// The raw control socket.
    pub stream: TcpStream,
    /// Decoder primed with any bytes that followed the hello.
    pub dec: FrameDecoder,
}

struct Conn {
    stream: TcpStream,
    dec: FrameDecoder,
}

/// Where the poller hands decoded inbound envelopes — the local engine's
/// ingress.
///
/// [`Network`] implements this by injecting into the destination node's
/// mailbox, to be consumed by a server thread; `dsm-net`'s cluster
/// instead implements it over the engine's inline server, so the poller
/// thread *is* the server loop and a request is served the moment its
/// frame decodes (no mailbox, no second thread, no scheduler hop).
pub trait EnvelopeSink<M>: Send + 'static {
    /// Cluster size, for destination range validation.
    fn nodes(&self) -> usize;
    /// Whether `dst` is hosted by this process.
    fn hosts(&self, dst: NodeId) -> bool;
    /// Delivers one envelope on the calling (poller) thread.
    ///
    /// # Errors
    ///
    /// [`SinkClosed`] means the engine has shut down; the transport stops
    /// delivering (and redialing).
    fn deliver(&self, env: Envelope<M>) -> Result<(), SinkClosed>;
}

/// The engine behind an [`EnvelopeSink`] has shut down.
#[derive(Clone, Copy, Debug)]
pub struct SinkClosed;

impl<M: Tagged + Send + 'static> EnvelopeSink<M> for Network<M> {
    fn nodes(&self) -> usize {
        self.len()
    }

    fn hosts(&self, dst: NodeId) -> bool {
        dst.index() < self.len() && self.is_local(dst)
    }

    fn deliver(&self, env: Envelope<M>) -> Result<(), SinkClosed> {
        self.inject(env).map_err(|_| SinkClosed)
    }
}

/// Wire-level counters for one mesh endpoint, all monotonic.
///
/// These count *frames and syscalls*, deliberately a different currency
/// from the logical per-kind message counters `Network` keeps: logical
/// counts are the paper's Figure-4 bill and never change with batching
/// or transport; these measure what actually crossed the kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Data frames handed to the wire (one per envelope, so a
    /// `Msg::Batch` run counts once).
    pub frames: u64,
    /// Of those, frames whose payload was a batch envelope.
    pub batch_frames: u64,
    /// Session ack frames enqueued (reconnect mode).
    pub acks: u64,
    /// Session retransmission frames enqueued (reconnect mode).
    pub retx: u64,
    /// `write`/`writev` syscalls issued for peer traffic.
    pub writev_calls: u64,
    /// Bytes handed to the kernel for peer traffic.
    pub bytes: u64,
    /// Peer connections re-established after a drop.
    pub reconnects: u64,
}

impl std::ops::AddAssign for WireStats {
    fn add_assign(&mut self, rhs: WireStats) {
        self.frames += rhs.frames;
        self.batch_frames += rhs.batch_frames;
        self.acks += rhs.acks;
        self.retx += rhs.retx;
        self.writev_calls += rhs.writev_calls;
        self.bytes += rhs.bytes;
        self.reconnects += rhs.reconnects;
    }
}

#[derive(Default)]
struct WireCounters {
    frames: AtomicU64,
    batch_frames: AtomicU64,
    acks: AtomicU64,
    retx: AtomicU64,
    writev_calls: AtomicU64,
    bytes: AtomicU64,
    reconnects: AtomicU64,
}

impl WireCounters {
    fn snapshot(&self) -> WireStats {
        WireStats {
            frames: self.frames.load(Ordering::Relaxed),
            batch_frames: self.batch_frames.load(Ordering::Relaxed),
            acks: self.acks.load(Ordering::Relaxed),
            retx: self.retx.load(Ordering::Relaxed),
            writev_calls: self.writev_calls.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }
}

/// Per-peer outbound state, shared between sender threads and the
/// poller behind one mutex.
struct PeerTx {
    /// Write handle (a `try_clone` of the poller's read socket);
    /// `None` while the connection is down.
    stream: Option<TcpStream>,
    /// Encoded frames awaiting the socket.
    queue: VecDeque<Bytes>,
    /// Bytes of `queue.front()` already written (partial-write cursor).
    written: usize,
    /// The poller should poll this socket for writability.
    want_write: bool,
    /// A redial thread is already running for this peer.
    redialing: bool,
    /// Session endpoint (reconnect mode); speaks only to this peer.
    link: Option<ReliableLink<RawBody>>,
}

/// Transport knobs resolved from the spec.
struct MeshConfig {
    nodelay: bool,
    sndbuf: u32,
    rcvbuf: u32,
    /// `Some(rto_ms)` iff reconnect mode is on.
    session: Option<u64>,
}

/// What a drain attempt left behind.
enum Drain {
    /// Queue empty; write interest can be dropped.
    Idle,
    /// Socket backpressured; `want_write` is set, wake the poller.
    Blocked,
    /// The connection died mid-write and was torn down locally.
    Dead,
}

/// State shared by senders, the acceptor, redialers, and the poller.
struct Shared {
    me: NodeId,
    cfg: MeshConfig,
    /// Indexed by peer id; `None` at our own slot.
    peers: Vec<Option<Mutex<PeerTx>>>,
    stats: WireCounters,
    stop: AtomicBool,
    /// Cleared when the local engine stops accepting injected traffic,
    /// which also stops redialing.
    delivering: AtomicBool,
    /// Origin of the session clock (milliseconds).
    epoch: Instant,
    poller: Poller,
    /// Peer listen addresses, for redialing.
    addrs: Vec<String>,
    /// Feeds fresh connections (acceptor- or redial-side) to the poller.
    conn_tx: Sender<(NodeId, Conn)>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Drains `tx`'s queue with vectored writes until empty, the socket
    /// backpressures, or the connection dies. Caller holds the lock.
    fn drain_locked(&self, tx: &mut PeerTx) -> Drain {
        let Some(stream) = tx.stream.as_ref() else {
            return Drain::Idle;
        };
        loop {
            if tx.queue.is_empty() {
                tx.want_write = false;
                return Drain::Idle;
            }
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(tx.queue.len().min(MAX_IOV));
            for (i, buf) in tx.queue.iter().take(MAX_IOV).enumerate() {
                let skip = if i == 0 { tx.written } else { 0 };
                slices.push(IoSlice::new(&buf[skip..]));
            }
            match (&*stream).write_vectored(&slices) {
                Ok(0) => break,
                Ok(n) => {
                    self.stats.writev_calls.fetch_add(1, Ordering::Relaxed);
                    self.stats.bytes.fetch_add(n as u64, Ordering::Relaxed);
                    let mut left = n;
                    while left > 0 {
                        let front = tx.queue.front().expect("wrote from a non-empty queue");
                        let avail = front.len() - tx.written;
                        if left >= avail {
                            left -= avail;
                            tx.written = 0;
                            tx.queue.pop_front();
                        } else {
                            tx.written += left;
                            left = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    tx.want_write = true;
                    return Drain::Blocked;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        // Write failure: tear the connection down locally. The shutdown
        // makes the poller's read half report EOF/error, which runs the
        // central cleanup (and redial policy) promptly.
        if let Some(s) = tx.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        tx.queue.clear();
        tx.written = 0;
        tx.want_write = false;
        Drain::Dead
    }
}

/// The sending side of the mesh: encodes envelopes, queues them toward
/// `env.dst`, and drains the queue with vectored writes.
///
/// Holds only the shared peer state, so the `Network` → `MeshLink`
/// reference is acyclic; the mesh's poller owns a `Network` clone and
/// exits when the mesh shuts down.
pub struct MeshLink<M> {
    shared: Arc<Shared>,
    _marker: PhantomData<fn(M) -> M>,
}

impl<M: Wire + Tagged> RemoteLink<M> for MeshLink<M> {
    fn send_remote(&self, env: Envelope<M>) -> Result<(), SendError> {
        let dst = env.dst;
        let shared = &*self.shared;
        let is_batch = env.payload.batch_parts().is_some();
        let peer = shared.peers[dst.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("no mesh connection toward {dst}"));
        let mut tx = peer.lock();
        shared.stats.frames.fetch_add(1, Ordering::Relaxed);
        if is_batch {
            shared.stats.batch_frames.fetch_add(1, Ordering::Relaxed);
        }
        let outcome = if let Some(link) = tx.link.as_mut() {
            // Session mode: the payload parks in the unacked window, so
            // a down link delays rather than fails the send — the frame
            // is replayed from the window on reconnect.
            let msg = link.send(shared.now_ms(), dst, RawBody(encode_envelope_body(&env)));
            if tx.stream.is_some() {
                tx.queue.push_back(frame(&msg));
                shared.drain_locked(&mut tx)
            } else {
                Drain::Idle
            }
        } else {
            if tx.stream.is_none() {
                return Err(SendError { dst });
            }
            tx.queue.push_back(encode_envelope(&env));
            shared.drain_locked(&mut tx)
        };
        let session = tx.link.is_some();
        drop(tx);
        match outcome {
            Drain::Idle => Ok(()),
            Drain::Blocked => {
                // The poller finishes the drain once the socket is
                // writable; it must wake to arm write interest.
                let _ = shared.poller.notify();
                Ok(())
            }
            Drain::Dead => {
                let _ = shared.poller.notify();
                if session {
                    Ok(())
                } else {
                    Err(SendError { dst })
                }
            }
        }
    }
}

/// One process's endpoint of the cluster's TCP fabric.
///
/// Build with [`establish`](TcpMesh::establish) (blocks until the full
/// mesh is up), wire into a partial [`Network`] via
/// [`link`](TcpMesh::link), then call [`start`](TcpMesh::start) to spawn
/// the poller. [`shutdown`](TcpMesh::shutdown) tears all of it
/// down; it is idempotent and also runs on drop.
pub struct TcpMesh<M> {
    shared: Arc<Shared>,
    /// Connections collected by `establish`, waiting for `start`.
    pending: Mutex<Vec<(NodeId, Conn)>>,
    /// Receiver of acceptor-side connections; taken by `start` for the
    /// poller (replacement connections in reconnect mode).
    conn_rx: Mutex<Option<Receiver<(NodeId, Conn)>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    started: AtomicBool,
    ctrl_rx: Receiver<CtrlConn>,
    _marker: PhantomData<fn(M) -> M>,
}

impl<M> std::fmt::Debug for TcpMesh<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TcpMesh({}, {} slots)",
            self.shared.me,
            self.shared.peers.len()
        )
    }
}

fn timeout_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, what.to_owned())
}

/// Blocking-handshake socket setup; the mesh config (nodelay, buffers,
/// non-blocking mode) is applied when the connection joins the poller.
fn configure(stream: &TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_nonblocking(false)
}

/// Performs the acceptor's half of a handshake and classifies the
/// connection.
fn greet_inbound(me: NodeId, mut stream: TcpStream) -> io::Result<(Hello, Conn)> {
    configure(&stream)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let mut dec = FrameDecoder::new(MAX_FRAME);
    let hello = read_hello(&mut stream, &mut dec)?;
    write_hello(&mut stream, hello.kind, me)?;
    stream.set_read_timeout(None)?;
    Ok((hello, Conn { stream, dec }))
}

fn run_acceptor(shared: Arc<Shared>, listener: TcpListener, ctrl_tx: Sender<CtrlConn>) {
    let me = shared.me;
    while !shared.stop.load(Ordering::Acquire) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(_) => break,
        };
        // A botched handshake abandons that connection, not the acceptor.
        let Ok((hello, conn)) = greet_inbound(me, stream) else {
            continue;
        };
        match hello.kind {
            ConnKind::Peer => {
                // establish (then the poller) validates and installs;
                // out-of-range or duplicate peers are dropped there.
                if shared.conn_tx.send((hello.node, conn)).is_err() {
                    return;
                }
                let _ = shared.poller.notify();
            }
            ConnKind::Ctrl => {
                let _ = ctrl_tx.send(CtrlConn {
                    stream: conn.stream,
                    dec: conn.dec,
                });
            }
        }
    }
}

/// Dialer's half of a handshake against an already-connected `stream`.
fn handshake_out(me: NodeId, peer: NodeId, addr: &str, mut stream: TcpStream) -> io::Result<Conn> {
    configure(&stream)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    write_hello(&mut stream, ConnKind::Peer, me)?;
    let mut dec = FrameDecoder::new(MAX_FRAME);
    let hello = read_hello(&mut stream, &mut dec)?;
    if hello.kind != ConnKind::Peer || hello.node != peer {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{addr} answered as {:?} {}, expected {peer}",
                hello.kind, hello.node
            ),
        ));
    }
    stream.set_read_timeout(None)?;
    Ok(Conn { stream, dec })
}

/// Dials `addr`, retrying refused connections until `deadline` — the
/// peer may still be binding its listener. Handshake errors are final.
fn dial(me: NodeId, peer: NodeId, addr: &str, deadline: Instant) -> io::Result<Conn> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return handshake_out(me, peer, addr, stream),
            Err(e) => {
                if Instant::now() + DIAL_RETRY >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("dialing {peer} at {addr}: {e}"),
                    ));
                }
                thread::sleep(DIAL_RETRY);
            }
        }
    }
}

/// Redials a dropped peer until it answers or the mesh stops, then hands
/// the fresh connection to the poller. Runs detached: it re-checks the
/// stop flag every [`DIAL_RETRY`], so it outlives shutdown by at most
/// one backoff.
fn run_redial(shared: Arc<Shared>, peer: NodeId) {
    let addr = shared.addrs[peer.index()].clone();
    loop {
        if shared.stop.load(Ordering::Acquire) || !shared.delivering.load(Ordering::Acquire) {
            break;
        }
        let attempt = TcpStream::connect(&addr)
            .and_then(|stream| handshake_out(shared.me, peer, &addr, stream));
        match attempt {
            Ok(conn) => {
                if shared.conn_tx.send((peer, conn)).is_ok() {
                    let _ = shared.poller.notify();
                }
                return;
            }
            Err(_) => thread::sleep(DIAL_RETRY),
        }
    }
    // Gave up (mesh stopping): let a future drop spawn a fresh redialer.
    if let Some(peer_tx) = &shared.peers[peer.index()] {
        peer_tx.lock().redialing = false;
    }
}

impl<M: Wire + Tagged + Send + 'static> TcpMesh<M> {
    /// Connects this process to every peer in `spec`, blocking until the
    /// full mesh is up or `timeout` expires.
    ///
    /// `listener` must already be bound to `spec.addr(me)` (binding is
    /// the caller's job so tests can bind port 0 and read the real
    /// address back). Transport knobs — `nodelay`, `sndbuf`/`rcvbuf`,
    /// `reconnect`, `rto_ms` — come from [`ClusterSpec::net`].
    ///
    /// # Errors
    ///
    /// Fails if a peer cannot be dialed, a handshake is malformed, or the
    /// higher-numbered peers do not dial in before the deadline.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `spec`.
    pub fn establish(
        me: NodeId,
        spec: &ClusterSpec,
        listener: TcpListener,
        timeout: Duration,
    ) -> io::Result<Self> {
        let n = spec.nodes() as usize;
        assert!(me.index() < n, "node {me} out of range for spec");
        let deadline = Instant::now() + timeout;
        let net = spec.net();
        let cfg = MeshConfig {
            nodelay: net.nodelay,
            sndbuf: net.sndbuf,
            rcvbuf: net.rcvbuf,
            session: net.reconnect.then_some(net.rto_ms),
        };
        let peers = (0..n)
            .map(|j| {
                (j != me.index()).then(|| {
                    Mutex::new(PeerTx {
                        stream: None,
                        queue: VecDeque::new(),
                        written: 0,
                        want_write: false,
                        redialing: false,
                        link: cfg.session.map(ReliableLink::new),
                    })
                })
            })
            .collect();
        let (conn_tx, conn_rx) = unbounded();
        let (ctrl_tx, ctrl_rx) = unbounded();
        let shared = Arc::new(Shared {
            me,
            cfg,
            peers,
            stats: WireCounters::default(),
            stop: AtomicBool::new(false),
            delivering: AtomicBool::new(true),
            epoch: Instant::now(),
            poller: Poller::new()?,
            addrs: (0..spec.nodes())
                .map(|j| spec.addr(NodeId::new(j)).to_owned())
                .collect(),
            conn_tx,
        });
        listener.set_nonblocking(true)?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("accept-{me}"))
                .spawn(move || run_acceptor(shared, listener, ctrl_tx))?
        };

        // Collect one connection per peer: dial down, accept up.
        let mut conns: Vec<Option<Conn>> = (0..n).map(|_| None).collect();
        let result = (|| -> io::Result<()> {
            for (j, slot) in conns.iter_mut().enumerate().take(me.index()) {
                let peer = NodeId::new(j as u32);
                *slot = Some(dial(me, peer, spec.addr(peer), deadline)?);
            }
            let mut missing = n - me.index() - 1;
            while missing > 0 {
                let budget = deadline
                    .checked_duration_since(Instant::now())
                    .ok_or_else(|| timeout_err("peers did not connect in time"))?;
                match conn_rx.recv_timeout(budget) {
                    Ok((peer, conn)) => {
                        let idx = peer.index();
                        // Out-of-range or duplicate peers are dropped on
                        // the floor, exactly like the poller does later.
                        if idx < n && idx != me.index() && conns[idx].is_none() {
                            if idx > me.index() {
                                missing -= 1;
                            }
                            conns[idx] = Some(conn);
                        }
                    }
                    Err(_) => return Err(timeout_err("peers did not connect in time")),
                }
            }
            Ok(())
        })();
        if let Err(e) = result {
            shared.stop.store(true, Ordering::Release);
            let _ = acceptor.join();
            return Err(e);
        }

        let pending: Vec<(NodeId, Conn)> = conns
            .into_iter()
            .enumerate()
            .filter_map(|(j, conn)| conn.map(|c| (NodeId::new(j as u32), c)))
            .collect();

        Ok(TcpMesh {
            shared,
            pending: Mutex::new(pending),
            conn_rx: Mutex::new(Some(conn_rx)),
            threads: Mutex::new(vec![acceptor]),
            started: AtomicBool::new(false),
            ctrl_rx,
            _marker: PhantomData,
        })
    }

    /// The node this endpoint speaks for.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.shared.me
    }

    /// The sending side, for [`Network::partial`].
    #[must_use]
    pub fn link(&self) -> Arc<MeshLink<M>> {
        Arc::new(MeshLink {
            shared: Arc::clone(&self.shared),
            _marker: PhantomData,
        })
    }

    /// Control connections accepted by the listener, in arrival order.
    #[must_use]
    pub fn ctrl_conns(&self) -> &Receiver<CtrlConn> {
        &self.ctrl_rx
    }

    /// Wire-level counters (frames, syscalls, retransmissions) for this
    /// endpoint.
    #[must_use]
    pub fn wire_stats(&self) -> WireStats {
        self.shared.stats.snapshot()
    }

    /// Mesh threads currently owned by this endpoint: the acceptor plus
    /// (after [`start`](TcpMesh::start)) the poller — O(1) in peer
    /// count. Transient redial threads are detached and not counted.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.lock().len()
    }

    /// Rebases every peer session to speak for incarnation `inc` of this
    /// node. No-op outside reconnect mode. Call between
    /// [`establish`](TcpMesh::establish) and [`start`](TcpMesh::start),
    /// before any traffic: a node that recovered its state from disk
    /// announces the bumped incarnation so peers fence frames addressed
    /// to — or leaking out of — its previous life, instead of feeding
    /// the old sequence space.
    pub fn set_incarnation(&self, inc: u32) {
        let Some(rto) = self.shared.cfg.session else {
            return;
        };
        for peer_tx in self.shared.peers.iter().flatten() {
            peer_tx.lock().link = Some(ReliableLink::with_incarnation(rto, inc));
        }
    }

    /// Hard-drops the connection to `peer` (both directions), as if the
    /// socket died. Chaos hook: in reconnect mode the mesh heals via
    /// redial + session retransmission; otherwise the peer stays dead.
    pub fn sever(&self, peer: NodeId) {
        if let Some(peer_tx) = &self.shared.peers[peer.index()] {
            let tx = peer_tx.lock();
            if let Some(s) = &tx.stream {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        let _ = self.shared.poller.notify();
    }

    /// Spawns the poller thread, delivering decoded envelopes into `sink`
    /// (which must host this node and treat the peers as remote). The
    /// sink is owned by the poller thread: when the poller exits, the
    /// sink drops — for an inline-server sink that is what disconnects
    /// application handles still blocked on replies.
    ///
    /// # Panics
    ///
    /// Panics if called twice — the connections are claimed on first use.
    pub fn start<S: EnvelopeSink<M>>(&self, sink: S) {
        assert!(
            !self.started.swap(true, Ordering::AcqRel),
            "mesh readers already started"
        );
        let pending = std::mem::take(&mut *self.pending.lock());
        let conn_rx = self
            .conn_rx
            .lock()
            .take()
            .expect("connection receiver present until start");
        // Install the established connections here, synchronously: sends
        // must work the moment start() returns, not when the poller
        // thread gets scheduled.
        let mut conns = HashMap::new();
        let mut seen = HashSet::new();
        for (peer, conn) in pending {
            install(&self.shared, &mut conns, &mut seen, peer, conn);
        }
        let shared = Arc::clone(&self.shared);
        let handle = thread::Builder::new()
            .name(format!("mesh-poll-{}", self.shared.me))
            .spawn(move || run_poller(&shared, &sink, &conn_rx, conns, seen))
            .expect("spawn mesh poller");
        self.threads.lock().push(handle);
    }

    /// Stops the acceptor and poller and closes every connection.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = self.shared.poller.notify();
        for peer_tx in self.shared.peers.iter().flatten() {
            let mut tx = peer_tx.lock();
            if let Some(s) = tx.stream.take() {
                // Unblocks the peer's poller (and ours) mid-`read`.
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        for (_, conn) in self.pending.lock().drain(..) {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        let threads = std::mem::take(&mut *self.threads.lock());
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl<M> Drop for TcpMesh<M> {
    fn drop(&mut self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = self.shared.poller.notify();
        for peer_tx in self.shared.peers.iter().flatten() {
            let mut tx = peer_tx.lock();
            if let Some(s) = tx.stream.take() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        for (_, conn) in self.pending.get_mut().drain(..) {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        for handle in std::mem::take(self.threads.get_mut()) {
            let _ = handle.join();
        }
    }
}

/// The poller's per-connection read state.
struct PeerRead {
    peer: NodeId,
    stream: TcpStream,
    dec: FrameDecoder,
    /// Whether write interest is currently armed with the poller.
    write_armed: bool,
}

#[cfg(unix)]
fn raw_fd(stream: &TcpStream) -> std::os::unix::io::RawFd {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

/// Why a connection left the poll set.
enum DeadReason {
    /// EOF, reset, or any other socket-level failure.
    Socket,
    /// The peer sent bytes that do not decode; resynchronization is
    /// impossible on a stream, so the connection is dropped.
    Protocol(io::Error),
    /// The local engine stopped accepting injections (teardown).
    Engine,
}

fn run_poller<M: Wire + Tagged, S: EnvelopeSink<M>>(
    shared: &Arc<Shared>,
    sink: &S,
    conn_rx: &Receiver<(NodeId, Conn)>,
    // key (= peer index) → read state, pre-installed by start().
    mut conns: HashMap<usize, PeerRead>,
    // Peers that have ever had a connection installed, to tell a
    // reconnection from first establishment.
    mut seen: HashSet<usize>,
) {
    let mut events = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    while !shared.stop.load(Ordering::Acquire) {
        // Adopt replacement connections from the acceptor or redialers.
        while let Ok((peer, conn)) = conn_rx.try_recv() {
            install(shared, &mut conns, &mut seen, peer, conn);
        }

        // Fire due session retransmission timers; find the next deadline.
        let timeout = if shared.cfg.session.is_some() {
            let now = shared.now_ms();
            let mut next: Option<u64> = None;
            for peer_tx in shared.peers.iter().flatten() {
                let mut tx = peer_tx.lock();
                let Some(link) = tx.link.as_mut() else {
                    continue;
                };
                if link.next_timer().is_some_and(|d| d <= now) {
                    let frames = link.on_timer(now);
                    if tx.stream.is_some() {
                        shared
                            .stats
                            .retx
                            .fetch_add(frames.len() as u64, Ordering::Relaxed);
                        for (_, msg) in frames {
                            tx.queue.push_back(frame(&msg));
                        }
                        let _ = shared.drain_locked(&mut tx);
                    }
                    // With no socket the frames are dropped: on_timer
                    // still refreshed their send times, and the
                    // reconnect path replays the window anyway.
                }
                if let Some(d) = tx.link.as_ref().and_then(ReliableLink::next_timer) {
                    next = Some(next.map_or(d, |v: u64| v.min(d)));
                }
            }
            next.map(|d| Duration::from_millis(d.saturating_sub(now).max(1)))
        } else {
            None
        };

        // Reconcile write interest with what the senders left queued.
        for (key, pr) in conns.iter_mut() {
            let Some(peer_tx) = &shared.peers[*key] else {
                continue;
            };
            let want = {
                let tx = peer_tx.lock();
                tx.want_write && tx.stream.is_some()
            };
            if want != pr.write_armed {
                let interest = if want {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                if shared
                    .poller
                    .modify(raw_fd(&pr.stream), *key, interest)
                    .is_ok()
                {
                    pr.write_armed = want;
                }
            }
        }

        if shared.poller.wait(&mut events, timeout).is_err() {
            break;
        }

        let mut dead: Vec<(usize, DeadReason)> = Vec::new();
        for &ev in events.iter() {
            if ev.writable {
                if let Some(peer_tx) = shared.peers.get(ev.key).and_then(Option::as_ref) {
                    let mut tx = peer_tx.lock();
                    if let Drain::Dead = shared.drain_locked(&mut tx) {
                        // The read side will surface the death below or
                        // on the next wait; nothing more to do here.
                    }
                }
            }
            if ev.readable {
                if let Err(reason) = handle_readable(shared, sink, &mut conns, ev.key, &mut chunk) {
                    dead.push((ev.key, reason));
                }
            }
        }
        for (key, reason) in dead {
            conn_dead(shared, &mut conns, key, reason);
        }
    }
    // Teardown: deregister and close whatever is still registered.
    for (_, pr) in conns.drain() {
        let _ = shared.poller.delete(raw_fd(&pr.stream));
        let _ = pr.stream.shutdown(Shutdown::Both);
    }
}

/// Adopts a fresh connection for `peer` into the poll set, replacing a
/// stale one in reconnect mode (duplicates are dropped otherwise).
fn install(
    shared: &Arc<Shared>,
    conns: &mut HashMap<usize, PeerRead>,
    seen: &mut HashSet<usize>,
    peer: NodeId,
    conn: Conn,
) {
    let key = peer.index();
    let Some(peer_tx) = shared.peers.get(key).and_then(Option::as_ref) else {
        return; // out of range or our own id: dropped on the floor
    };
    if conns.contains_key(&key) {
        if shared.cfg.session.is_none() {
            return; // duplicate peer connection: dropped on the floor
        }
        // Reconnect mode: the newer connection wins; the old one is a
        // casualty of whatever made the peer redial.
        let stale = conns.remove(&key).expect("checked contains_key");
        let _ = shared.poller.delete(raw_fd(&stale.stream));
        let _ = stale.stream.shutdown(Shutdown::Both);
    }
    let stream = conn.stream;
    if stream.set_nodelay(shared.cfg.nodelay).is_err() {
        return;
    }
    #[cfg(unix)]
    {
        if shared.cfg.sndbuf > 0 {
            let _ = polling::sockopt::set_send_buffer(raw_fd(&stream), shared.cfg.sndbuf as usize);
        }
        if shared.cfg.rcvbuf > 0 {
            let _ = polling::sockopt::set_recv_buffer(raw_fd(&stream), shared.cfg.rcvbuf as usize);
        }
    }
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let mut tx = peer_tx.lock();
    tx.redialing = false;
    tx.stream = Some(writer);
    tx.queue.clear();
    tx.written = 0;
    tx.want_write = false;
    let reconnected = !seen.insert(key);
    if reconnected {
        shared.stats.reconnects.fetch_add(1, Ordering::Relaxed);
    }
    // Announce our incarnation before replaying the window: after a
    // restart-from-disk this fences the peer's stale sequence space in
    // one frame instead of waiting out an RTO round of rejected
    // retransmissions. On an unchanged incarnation the peer treats it
    // as a duplicate announcement and ignores it.
    if let Some(hello) = tx.link.as_ref().map(|link| frame(&link.hello())) {
        tx.queue.push_back(hello);
    }
    if let Some(link) = tx.link.as_mut() {
        // Replay the whole unacked window: frames that survived the old
        // socket are discarded by the peer's duplicate suppression.
        let replay = link.retransmit_to(shared.now_ms(), peer);
        shared
            .stats
            .retx
            .fetch_add(replay.len() as u64, Ordering::Relaxed);
        for msg in replay {
            tx.queue.push_back(frame(&msg));
        }
    }
    let want_write = match shared.drain_locked(&mut tx) {
        Drain::Blocked => true,
        Drain::Idle => false,
        Drain::Dead => {
            // Died before it ever joined the poll set; the usual redial
            // policy applies.
            drop(tx);
            maybe_redial(shared, peer);
            return;
        }
    };
    drop(tx);
    let interest = if want_write {
        Interest::READ_WRITE
    } else {
        Interest::READ
    };
    if shared.poller.add(raw_fd(&stream), key, interest).is_err() {
        return;
    }
    conns.insert(
        key,
        PeerRead {
            peer,
            stream,
            dec: conn.dec,
            write_armed: want_write,
        },
    );
}

/// Spawns a detached redial thread toward `peer` if reconnect policy
/// says so (reconnect mode, mesh alive, we are the dialing side, no
/// redialer already running).
fn maybe_redial(shared: &Arc<Shared>, peer: NodeId) {
    if shared.cfg.session.is_none()
        || shared.stop.load(Ordering::Acquire)
        || !shared.delivering.load(Ordering::Acquire)
        || shared.me.index() < peer.index()
    {
        return;
    }
    let Some(peer_tx) = shared.peers.get(peer.index()).and_then(Option::as_ref) else {
        return;
    };
    {
        let mut tx = peer_tx.lock();
        if tx.redialing {
            return;
        }
        tx.redialing = true;
    }
    let shared = Arc::clone(shared);
    let _ = thread::Builder::new()
        .name(format!("redial-{}-{peer}", shared.me))
        .spawn(move || run_redial(shared, peer));
}

/// Reads everything currently available on `key`'s socket, decoding and
/// delivering complete frames.
fn handle_readable<M: Wire + Tagged, S: EnvelopeSink<M>>(
    shared: &Arc<Shared>,
    sink: &S,
    conns: &mut HashMap<usize, PeerRead>,
    key: usize,
    chunk: &mut [u8],
) -> Result<(), DeadReason> {
    let Some(pr) = conns.get_mut(&key) else {
        return Ok(()); // already removed this round
    };
    loop {
        let n = match (&pr.stream).read(chunk) {
            Ok(0) => return Err(DeadReason::Socket),
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(DeadReason::Socket),
        };
        pr.dec.extend(&chunk[..n]);
        loop {
            let body = match pr.dec.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => break,
                Err(e) => {
                    return Err(DeadReason::Protocol(io::Error::new(
                        io::ErrorKind::InvalidData,
                        e.to_string(),
                    )))
                }
            };
            deliver_frame(shared, sink, pr.peer, body)?;
        }
        if n < chunk.len() {
            // Level-triggered: if more arrived meanwhile, the next wait
            // reports the socket readable again.
            return Ok(());
        }
    }
}

/// Decodes one inbound frame body and hands its envelope(s) to the
/// engine, running the session layer first in reconnect mode.
fn deliver_frame<M: Wire + Tagged, S: EnvelopeSink<M>>(
    shared: &Arc<Shared>,
    sink: &S,
    peer: NodeId,
    body: Bytes,
) -> Result<(), DeadReason> {
    if shared.cfg.session.is_none() {
        let env = decode_envelope::<M>(body).map_err(DeadReason::Protocol)?;
        return inject(shared, sink, peer, env);
    }
    let msg: SessionMsg<RawBody> = decode_body(body).map_err(DeadReason::Protocol)?;
    let peer_tx = shared.peers[peer.index()]
        .as_ref()
        .expect("session frames only arrive from installed peers");
    let released = {
        let mut tx = peer_tx.lock();
        let now = shared.now_ms();
        let link = tx.link.as_mut().expect("session mode has a link per peer");
        let (replies, delivered) = link.on_receive(now, peer, msg);
        if !replies.is_empty() && tx.stream.is_some() {
            shared
                .stats
                .acks
                .fetch_add(replies.len() as u64, Ordering::Relaxed);
            for reply in replies {
                tx.queue.push_back(frame(&reply));
            }
            let _ = shared.drain_locked(&mut tx);
        }
        delivered
    };
    for raw in released {
        let env = decode_envelope::<M>(raw.0).map_err(DeadReason::Protocol)?;
        inject(shared, sink, peer, env)?;
    }
    Ok(())
}

fn inject<M, S: EnvelopeSink<M>>(
    shared: &Arc<Shared>,
    sink: &S,
    peer: NodeId,
    env: Envelope<M>,
) -> Result<(), DeadReason> {
    if env.dst.index() >= sink.nodes() || !sink.hosts(env.dst) {
        return Err(DeadReason::Protocol(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{peer} sent an envelope for non-local {}", env.dst),
        )));
    }
    if sink.deliver(env).is_err() {
        // Local engine is shutting down; stop delivering and redialing.
        shared.delivering.store(false, Ordering::Release);
        return Err(DeadReason::Engine);
    }
    Ok(())
}

/// Removes a dead connection from the poll set, resets the peer's
/// outbound state, and applies the redial policy.
fn conn_dead(
    shared: &Arc<Shared>,
    conns: &mut HashMap<usize, PeerRead>,
    key: usize,
    reason: DeadReason,
) {
    let Some(pr) = conns.remove(&key) else {
        return;
    };
    let _ = shared.poller.delete(raw_fd(&pr.stream));
    let _ = pr.stream.shutdown(Shutdown::Both);
    let peer = pr.peer;
    if let Some(peer_tx) = shared.peers.get(key).and_then(Option::as_ref) {
        let mut tx = peer_tx.lock();
        if let Some(s) = tx.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        tx.queue.clear();
        tx.written = 0;
        tx.want_write = false;
    }
    let stopping = shared.stop.load(Ordering::Acquire);
    if let DeadReason::Protocol(e) = &reason {
        // Undecodable bytes are always worth a line; a plain socket close
        // is not — without sessions it is almost always the peer shutting
        // down first (every loopback-harness teardown), and the loss
        // surfaces to the application as failed sends anyway.
        if !stopping {
            eprintln!("mesh: connection from {peer} failed: {e}");
        }
    }
    if !matches!(reason, DeadReason::Engine) {
        maybe_redial(shared, peer);
    }
}

#[cfg(test)]
mod tests {
    use std::io::Write as _;

    use simnet::codec::{frame, CodecError};
    use simnet::Tagged;

    use super::*;
    use crate::framing::{ctrl_node, read_frame, write_frame};
    use crate::spec::NetOptions;

    #[derive(Clone, Debug, PartialEq)]
    struct Ping(u64);

    impl Tagged for Ping {
        fn kind(&self) -> &'static str {
            "PING"
        }
    }

    impl Wire for Ping {
        fn encode(&self, buf: &mut bytes::BytesMut) {
            self.0.encode(buf);
        }
        fn decode(buf: &mut bytes::Bytes) -> Result<Self, CodecError> {
            Ok(Ping(u64::decode(buf)?))
        }
        fn encoded_len(&self) -> usize {
            8
        }
    }

    fn loopback_spec(n: usize) -> (ClusterSpec, Vec<TcpListener>) {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let addrs = listeners
            .iter()
            .map(|l| l.local_addr().unwrap().to_string())
            .collect();
        (ClusterSpec::new(8, addrs), listeners)
    }

    #[test]
    fn two_node_mesh_carries_traffic_both_ways() {
        let (spec, mut listeners) = loopback_spec(2);
        let spec1 = spec.clone();
        let l1 = listeners.pop().unwrap();
        let l0 = listeners.pop().unwrap();
        let timeout = Duration::from_secs(10);

        let side = move |me: u32, listener: TcpListener, spec: ClusterSpec| {
            let me = NodeId::new(me);
            let mesh: TcpMesh<Ping> = TcpMesh::establish(me, &spec, listener, timeout).unwrap();
            let net = Network::partial(2, &[me], mesh.link());
            mesh.start(net.clone());
            let mb = net.take_mailbox(me);
            let other = NodeId::new(1 - me.index() as u32);
            for i in 0..50 {
                net.send(me, other, Ping(u64::from(me.index() as u32) * 1000 + i))
                    .unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..50 {
                got.push(mb.recv().unwrap());
            }
            (mesh, got)
        };

        let peer = thread::spawn(move || side(1, l1, spec1));
        let (mesh0, got0) = side(0, l0, spec);
        let (mesh1, got1) = peer.join().unwrap();

        // FIFO per link, nothing lost, sources correct.
        for (i, env) in got0.iter().enumerate() {
            assert_eq!(env.src, NodeId::new(1));
            assert_eq!(env.payload, Ping(1000 + i as u64));
        }
        for (i, env) in got1.iter().enumerate() {
            assert_eq!(env.src, NodeId::new(0));
            assert_eq!(env.payload, Ping(i as u64));
        }
        // One poller + one acceptor each, and the wire counters saw the
        // frames (batch-free traffic, no retransmissions).
        assert_eq!(mesh0.thread_count(), 2);
        let stats = mesh0.wire_stats();
        assert_eq!(stats.frames, 50);
        assert_eq!(stats.batch_frames, 0);
        assert_eq!(stats.retx, 0);
        assert!(stats.writev_calls > 0 && stats.writev_calls <= 50);
        assert!(stats.bytes >= 50 * (4 + 4 + 4 + 8));
        mesh0.shutdown();
        mesh1.shutdown();
    }

    #[test]
    fn session_mesh_carries_traffic_and_acks() {
        let (spec, mut listeners) = loopback_spec(2);
        let net_opts = NetOptions {
            reconnect: true,
            rto_ms: 200,
            ..NetOptions::default()
        };
        let spec = spec.with_net(net_opts);
        let spec1 = spec.clone();
        let l1 = listeners.pop().unwrap();
        let l0 = listeners.pop().unwrap();
        let timeout = Duration::from_secs(10);

        let side = move |me: u32, listener: TcpListener, spec: ClusterSpec| {
            let me = NodeId::new(me);
            let mesh: TcpMesh<Ping> = TcpMesh::establish(me, &spec, listener, timeout).unwrap();
            let net = Network::partial(2, &[me], mesh.link());
            mesh.start(net.clone());
            let mb = net.take_mailbox(me);
            let other = NodeId::new(1 - me.index() as u32);
            for i in 0..50 {
                net.send(me, other, Ping(u64::from(me.index() as u32) * 1000 + i))
                    .unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..50 {
                got.push(mb.recv().unwrap());
            }
            (mesh, got)
        };

        let peer = thread::spawn(move || side(1, l1, spec1));
        let (mesh0, got0) = side(0, l0, spec);
        let (mesh1, got1) = peer.join().unwrap();
        for (i, env) in got0.iter().enumerate() {
            assert_eq!(env.payload, Ping(1000 + i as u64));
        }
        for (i, env) in got1.iter().enumerate() {
            assert_eq!(env.payload, Ping(i as u64));
        }
        let stats = mesh0.wire_stats();
        assert_eq!(stats.frames, 50);
        assert!(stats.acks > 0, "session mode must ack inbound data");
        mesh0.shutdown();
        mesh1.shutdown();
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Blob(Vec<u8>);

    impl Tagged for Blob {
        fn kind(&self) -> &'static str {
            "BLOB"
        }
    }

    impl Wire for Blob {
        fn encode(&self, buf: &mut bytes::BytesMut) {
            (self.0.len() as u32).encode(buf);
            buf.extend_from_slice(&self.0);
        }
        fn decode(buf: &mut bytes::Bytes) -> Result<Self, CodecError> {
            let len = u32::decode(buf)? as usize;
            if buf.len() < len {
                return Err(CodecError::Truncated);
            }
            Ok(Blob(buf.split_to(len).to_vec()))
        }
        fn encoded_len(&self) -> usize {
            4 + self.0.len()
        }
    }

    #[test]
    fn tiny_socket_buffers_force_partial_writes_without_corruption() {
        // Frames far larger than the kernel buffers: no single writev
        // can take a whole frame, so the drain stops mid-frame on
        // EWOULDBLOCK and the poller resumes it at the recorded offset.
        // Any slip in that bookkeeping shears a frame and the decoder
        // (or the payload comparison) catches it. The buffers stay at
        // one loopback MSS (64 KiB) — smaller trips the kernel's
        // silly-window avoidance and the test spends seconds in TCP
        // persist timers instead of exercising the drain path.
        let (spec, mut listeners) = loopback_spec(2);
        let spec = spec.with_net(NetOptions {
            sndbuf: 64 * 1024,
            rcvbuf: 64 * 1024,
            ..NetOptions::default()
        });
        let spec1 = spec.clone();
        let l1 = listeners.pop().unwrap();
        let l0 = listeners.pop().unwrap();
        let timeout = Duration::from_secs(10);

        let blobs: Vec<Blob> = (0..16u8)
            .map(|i| Blob((0..256 * 1024).map(|j| i ^ (j % 251) as u8).collect()))
            .collect();
        let expect = blobs.clone();

        let receiver = thread::spawn(move || {
            let me = NodeId::new(0);
            let mesh: TcpMesh<Blob> = TcpMesh::establish(me, &spec, l0, timeout).unwrap();
            let net = Network::partial(2, &[me], mesh.link());
            mesh.start(net.clone());
            let mb = net.take_mailbox(me);
            let mut got = Vec::new();
            for _ in 0..16 {
                got.push(mb.recv().unwrap().payload);
            }
            (mesh, got)
        });

        let me = NodeId::new(1);
        let mesh: TcpMesh<Blob> = TcpMesh::establish(me, &spec1, l1, timeout).unwrap();
        let net = Network::partial(2, &[me], mesh.link());
        mesh.start(net.clone());
        for blob in blobs {
            net.send(me, NodeId::new(0), blob).unwrap();
        }
        let (peer_mesh, got) = receiver.join().unwrap();
        assert_eq!(got, expect, "frame boundaries slipped under partial writes");
        let stats = mesh.wire_stats();
        assert_eq!(stats.frames, 16);
        assert!(
            stats.writev_calls > 16,
            "4 MiB through 8 KiB buffers cannot avoid partial writes \
             (saw {} writev calls)",
            stats.writev_calls
        );
        mesh.shutdown();
        peer_mesh.shutdown();
    }

    #[test]
    fn ctrl_connections_keep_bytes_read_past_the_hello() {
        let (spec, mut listeners) = loopback_spec(1);
        let listener = listeners.pop().unwrap();
        let addr = spec.addr(NodeId::new(0)).to_owned();
        let mesh: TcpMesh<Ping> =
            TcpMesh::establish(NodeId::new(0), &spec, listener, Duration::from_secs(5)).unwrap();

        // Hello and first frame arrive in one segment: the handshake's
        // decoder buffers the frame, and the handoff must not lose it.
        let mut burst = Vec::new();
        write_hello(&mut burst, ConnKind::Ctrl, ctrl_node()).unwrap();
        burst.extend_from_slice(&frame(&42u64));
        let mut client = TcpStream::connect(&addr).unwrap();
        client.write_all(&burst).unwrap();

        let mut client_dec = FrameDecoder::new(MAX_FRAME);
        let reply = read_hello(&mut client, &mut client_dec).unwrap();
        assert_eq!(reply.kind, ConnKind::Ctrl);
        assert_eq!(reply.node, NodeId::new(0));

        let mut conn = mesh
            .ctrl_conns()
            .recv_timeout(Duration::from_secs(5))
            .expect("ctrl connection");
        let body = read_frame(&mut conn.stream, &mut conn.dec)
            .unwrap()
            .unwrap();
        assert_eq!(crate::framing::decode_body::<u64>(body).unwrap(), 42);

        // Server side can answer on the same socket.
        write_frame(&mut conn.stream, &43u64).unwrap();
        let body = read_frame(&mut client, &mut client_dec).unwrap().unwrap();
        assert_eq!(crate::framing::decode_body::<u64>(body).unwrap(), 43);
        mesh.shutdown();
    }

    #[test]
    fn establish_times_out_when_peers_never_dial() {
        let (spec, mut listeners) = loopback_spec(2);
        let _l1 = listeners.pop().unwrap();
        let l0 = listeners.pop().unwrap();
        // Node 0 waits for node 1, which never comes.
        let err = TcpMesh::<Ping>::establish(NodeId::new(0), &spec, l0, Duration::from_millis(200))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn severed_session_mesh_heals_and_redelivers() {
        let (spec, mut listeners) = loopback_spec(2);
        let spec = spec.with_net(NetOptions {
            reconnect: true,
            rto_ms: 30,
            ..NetOptions::default()
        });
        let spec1 = spec.clone();
        let l1 = listeners.pop().unwrap();
        let l0 = listeners.pop().unwrap();
        let timeout = Duration::from_secs(10);

        // Node 1 (higher id, so the redialing side) severs the link
        // mid-stream; every ping must still arrive exactly once.
        let receiver = thread::spawn(move || {
            let me = NodeId::new(0);
            let mesh: TcpMesh<Ping> = TcpMesh::establish(me, &spec, l0, timeout).unwrap();
            let net = Network::partial(2, &[me], mesh.link());
            mesh.start(net.clone());
            let mb = net.take_mailbox(me);
            let mut got = Vec::new();
            for _ in 0..200 {
                let env = mb
                    .recv_timeout(Duration::from_secs(20))
                    .ok()
                    .flatten()
                    .expect("ping before timeout");
                got.push(env.payload);
            }
            (mesh, got)
        });

        let me = NodeId::new(1);
        let mesh: TcpMesh<Ping> = TcpMesh::establish(me, &spec1, l1, timeout).unwrap();
        let net = Network::partial(2, &[me], mesh.link());
        mesh.start(net.clone());
        for i in 0..200u64 {
            if i == 70 {
                mesh.sever(NodeId::new(0));
            }
            net.send(me, NodeId::new(0), Ping(i)).unwrap();
            if i % 50 == 0 {
                thread::sleep(Duration::from_millis(5));
            }
        }
        let (peer_mesh, got) = receiver.join().unwrap();
        assert_eq!(got.len(), 200);
        let expect: Vec<Ping> = (0..200).map(Ping).collect();
        assert_eq!(got, expect, "exactly-once, in order, across the drop");
        let stats = mesh.wire_stats();
        assert!(
            stats.reconnects >= 1 || peer_mesh.wire_stats().reconnects >= 1,
            "the drop must have forced a reconnect"
        );
        // The send issued right after sever() hit a dead socket, parked
        // in the session window, and was replayed on reconnect.
        assert!(stats.retx >= 1, "healing must go through retransmission");
        mesh.shutdown();
        peer_mesh.shutdown();
    }
}
