//! The TCP mesh: one persistent connection per node pair, plus an
//! acceptor for control connections.
//!
//! # Topology and handshake
//!
//! Every node binds the listen address its [`ClusterSpec`]
//! entry names. Node `i` dials every node `j < i` and accepts connections
//! from every `j > i`, so each unordered pair shares exactly one
//! connection and there is no simultaneous-open race. Both sides open
//! with a [`Hello`] frame ([`ConnKind::Peer`] plus their node id); the
//! dialer speaks first, the acceptor replies.
//!
//! Controllers (the load generator) connect to the same listener with a
//! [`ConnKind::Ctrl`] hello; those connections are handed to the process
//! through [`TcpMesh::ctrl_conns`] instead of joining the mesh.
//!
//! # Data plane
//!
//! The write half of each connection (a `try_clone`) sits behind a mutex
//! in [`MeshLink`], which implements [`RemoteLink`] so a partial
//! [`Network`] routes off-process envelopes into it. A reader thread per
//! connection reassembles frames ([`FrameDecoder`]) and re-injects
//! decoded envelopes with [`Network::inject`]. TCP gives per-connection
//! FIFO and reliability, which is exactly the paper's §3 network
//! assumption — see `docs/NET.md`.
//!
//! Sockets run with `TCP_NODELAY`: the protocol is request/reply and
//! Nagle batching would serialize the owner protocol's round trips.

use std::io::{self, Write};
use std::marker::PhantomData;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};
use memcore::NodeId;
use parking_lot::Mutex;
use simnet::codec::{FrameDecoder, Wire};
use simnet::{Envelope, Network, RemoteLink, SendError, Tagged};

use crate::framing::{
    decode_envelope, encode_envelope, read_hello, write_hello, ConnKind, Hello, MAX_FRAME,
};
use crate::spec::ClusterSpec;

/// How long each side of a handshake may stall before the connection is
/// abandoned.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

/// Backoff between dial attempts while a peer is still binding.
const DIAL_RETRY: Duration = Duration::from_millis(25);

/// Poll interval of the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A connection plus the decoder holding any bytes read past the
/// handshake — the two must travel together or early frames are lost.
pub struct CtrlConn {
    /// The raw control socket.
    pub stream: TcpStream,
    /// Decoder primed with any bytes that followed the hello.
    pub dec: FrameDecoder,
}

struct Conn {
    stream: TcpStream,
    dec: FrameDecoder,
}

/// The write halves of the mesh, indexed by peer node id (`None` at our
/// own slot).
struct Writers {
    streams: Vec<Option<Mutex<TcpStream>>>,
}

/// The sending side of the mesh: encodes envelopes and writes them to
/// the peer connection of `env.dst`.
///
/// Holds only socket write halves, so the `Network` → `MeshLink`
/// reference is acyclic; the mesh's reader threads own `Network` clones
/// and exit when the sockets shut down.
pub struct MeshLink<M> {
    writers: Arc<Writers>,
    _marker: PhantomData<fn(M) -> M>,
}

impl<M: Wire> RemoteLink<M> for MeshLink<M> {
    fn send_remote(&self, env: Envelope<M>) -> Result<(), SendError> {
        let dst = env.dst;
        let framed = encode_envelope(&env);
        let slot = self.writers.streams[dst.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("no mesh connection toward {dst}"));
        slot.lock().write_all(&framed).map_err(|_| SendError { dst })
    }
}

// Peers accepted but not yet claimed by `establish`, indexed by node id.
struct Accepted {
    slots: Mutex<Vec<Option<Conn>>>,
    ready: Condvar,
}

/// One process's endpoint of the cluster's TCP fabric.
///
/// Build with [`establish`](TcpMesh::establish) (blocks until the full
/// mesh is up), wire into a partial [`Network`] via
/// [`link`](TcpMesh::link), then call [`start`](TcpMesh::start) to spawn
/// the reader threads. [`shutdown`](TcpMesh::shutdown) tears all of it
/// down; it is idempotent and also runs on drop.
pub struct TcpMesh<M> {
    me: NodeId,
    writers: Arc<Writers>,
    pending: Mutex<Vec<(NodeId, Conn)>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
    ctrl_rx: Receiver<CtrlConn>,
    _marker: PhantomData<fn(M) -> M>,
}

impl<M> std::fmt::Debug for TcpMesh<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TcpMesh({}, {} slots)", self.me, self.writers.streams.len())
    }
}

fn timeout_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, what.to_owned())
}

fn configure(stream: &TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_nonblocking(false)
}

/// Performs the acceptor's half of a handshake and classifies the
/// connection.
fn greet_inbound(me: NodeId, mut stream: TcpStream) -> io::Result<(Hello, Conn)> {
    configure(&stream)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let mut dec = FrameDecoder::new(MAX_FRAME);
    let hello = read_hello(&mut stream, &mut dec)?;
    write_hello(&mut stream, hello.kind, me)?;
    stream.set_read_timeout(None)?;
    Ok((hello, Conn { stream, dec }))
}

fn run_acceptor(
    me: NodeId,
    listener: TcpListener,
    accepted: Arc<Accepted>,
    ctrl_tx: Sender<CtrlConn>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Acquire) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(_) => break,
        };
        // A botched handshake abandons that connection, not the acceptor.
        let Ok((hello, conn)) = greet_inbound(me, stream) else {
            continue;
        };
        match hello.kind {
            ConnKind::Peer => {
                let mut slots = accepted.slots.lock();
                let idx = hello.node.index();
                if idx < slots.len() && slots[idx].is_none() {
                    slots[idx] = Some(conn);
                    accepted.ready.notify_all();
                }
                // Out-of-range or duplicate peers are dropped on the floor.
            }
            ConnKind::Ctrl => {
                let _ = ctrl_tx.send(CtrlConn {
                    stream: conn.stream,
                    dec: conn.dec,
                });
            }
        }
    }
}

/// Dials `addr`, retrying refusals until `deadline` — the peer may still
/// be binding its listener.
fn dial(me: NodeId, peer: NodeId, addr: &str, deadline: Instant) -> io::Result<Conn> {
    loop {
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                configure(&stream)?;
                stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
                write_hello(&mut stream, ConnKind::Peer, me)?;
                let mut dec = FrameDecoder::new(MAX_FRAME);
                let hello = read_hello(&mut stream, &mut dec)?;
                if hello.kind != ConnKind::Peer || hello.node != peer {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{addr} answered as {:?} {}, expected {peer}", hello.kind, hello.node),
                    ));
                }
                stream.set_read_timeout(None)?;
                return Ok(Conn { stream, dec });
            }
            Err(e) => {
                if Instant::now() + DIAL_RETRY >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("dialing {peer} at {addr}: {e}"),
                    ));
                }
                thread::sleep(DIAL_RETRY);
            }
        }
    }
}

impl<M: Wire + Tagged + Send + 'static> TcpMesh<M> {
    /// Connects this process to every peer in `spec`, blocking until the
    /// full mesh is up or `timeout` expires.
    ///
    /// `listener` must already be bound to `spec.addr(me)` (binding is
    /// the caller's job so tests can bind port 0 and read the real
    /// address back).
    ///
    /// # Errors
    ///
    /// Fails if a peer cannot be dialed, a handshake is malformed, or the
    /// higher-numbered peers do not dial in before the deadline.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `spec`.
    pub fn establish(
        me: NodeId,
        spec: &ClusterSpec,
        listener: TcpListener,
        timeout: Duration,
    ) -> io::Result<Self> {
        let n = spec.nodes() as usize;
        assert!(me.index() < n, "node {me} out of range for spec");
        let deadline = Instant::now() + timeout;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(Accepted {
            slots: Mutex::new((0..n).map(|_| None).collect()),
            ready: Condvar::new(),
        });
        let (ctrl_tx, ctrl_rx) = unbounded();
        listener.set_nonblocking(true)?;
        let acceptor = {
            let accepted = Arc::clone(&accepted);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name(format!("accept-{me}"))
                .spawn(move || run_acceptor(me, listener, accepted, ctrl_tx, stop))?
        };

        // Collect one connection per peer: dial down, accept up.
        let mut conns: Vec<Option<Conn>> = (0..n).map(|_| None).collect();
        let mut result = (|| -> io::Result<()> {
            for (j, slot) in conns.iter_mut().enumerate().take(me.index()) {
                let peer = NodeId::new(j as u32);
                *slot = Some(dial(me, peer, spec.addr(peer), deadline)?);
            }
            let mut slots = accepted.slots.lock();
            loop {
                for (j, slot) in slots.iter_mut().enumerate() {
                    if let Some(conn) = slot.take() {
                        conns[j] = Some(conn);
                    }
                }
                if conns
                    .iter()
                    .enumerate()
                    .all(|(j, c)| j == me.index() || c.is_some())
                {
                    return Ok(());
                }
                let budget = deadline
                    .checked_duration_since(Instant::now())
                    .ok_or_else(|| timeout_err("peers did not connect in time"))?;
                let (guard, wait) = accepted
                    .ready
                    .wait_timeout(slots, budget)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                slots = guard;
                if wait.timed_out() {
                    return Err(timeout_err("peers did not connect in time"));
                }
            }
        })();

        // Split each connection into a locked write half and a reader half.
        let mut streams = Vec::with_capacity(n);
        let mut pending = Vec::with_capacity(n.saturating_sub(1));
        if result.is_ok() {
            for (j, conn) in conns.into_iter().enumerate() {
                match conn {
                    Some(conn) => match conn.stream.try_clone() {
                        Ok(writer) => {
                            streams.push(Some(Mutex::new(writer)));
                            pending.push((NodeId::new(j as u32), conn));
                        }
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    },
                    None => streams.push(None),
                }
            }
        }
        if let Err(e) = result {
            stop.store(true, Ordering::Release);
            let _ = acceptor.join();
            return Err(e);
        }

        Ok(TcpMesh {
            me,
            writers: Arc::new(Writers { streams }),
            pending: Mutex::new(pending),
            threads: Mutex::new(vec![acceptor]),
            stop,
            ctrl_rx,
            _marker: PhantomData,
        })
    }

    /// The node this endpoint speaks for.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The sending side, for [`Network::partial`].
    #[must_use]
    pub fn link(&self) -> Arc<MeshLink<M>> {
        Arc::new(MeshLink {
            writers: Arc::clone(&self.writers),
            _marker: PhantomData,
        })
    }

    /// Control connections accepted by the listener, in arrival order.
    #[must_use]
    pub fn ctrl_conns(&self) -> &Receiver<CtrlConn> {
        &self.ctrl_rx
    }

    /// Spawns a reader thread per peer connection, delivering decoded
    /// envelopes into `net` (which must host this node and treat the
    /// peers as remote).
    ///
    /// # Panics
    ///
    /// Panics if called twice — the readers are claimed on first use.
    pub fn start(&self, net: &Network<M>) {
        let pending = std::mem::take(&mut *self.pending.lock());
        assert!(
            !pending.is_empty() || self.writers.streams.len() == 1,
            "mesh readers already started"
        );
        let mut threads = self.threads.lock();
        for (peer, conn) in pending {
            let net = net.clone();
            let stop = Arc::clone(&self.stop);
            let handle = thread::Builder::new()
                .name(format!("mesh-{}-from-{peer}", self.me))
                .spawn(move || run_reader(peer, conn, &net, &stop))
                .expect("spawn mesh reader");
            threads.push(handle);
        }
    }

    /// Stops the acceptor and readers and closes every connection.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        for writer in self.writers.streams.iter().flatten() {
            // Unblocks the peer's reader (and ours) mid-`read`.
            let _ = writer.lock().shutdown(Shutdown::Both);
        }
        for (_, conn) in self.pending.lock().drain(..) {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        let threads = std::mem::take(&mut *self.threads.lock());
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl<M> Drop for TcpMesh<M> {
    fn drop(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        for writer in self.writers.streams.iter().flatten() {
            let _ = writer.lock().shutdown(Shutdown::Both);
        }
        for (_, conn) in self.pending.get_mut().drain(..) {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        for handle in std::mem::take(self.threads.get_mut()) {
            let _ = handle.join();
        }
    }
}

fn run_reader<M: Wire + Tagged>(peer: NodeId, mut conn: Conn, net: &Network<M>, stop: &AtomicBool) {
    loop {
        let body = match crate::framing::read_frame(&mut conn.stream, &mut conn.dec) {
            Ok(Some(body)) => body,
            Ok(None) => return, // peer closed cleanly
            Err(e) => {
                // Reset-like errors are normal teardown noise when the
                // peer closes first; anything else mid-run is reported.
                let teardown = matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionReset
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::BrokenPipe
                );
                if !stop.load(Ordering::Acquire) && !teardown {
                    eprintln!("mesh: connection from {peer} failed: {e}");
                }
                return;
            }
        };
        let env: Envelope<M> = match decode_envelope(body) {
            Ok(env) => env,
            Err(e) => {
                eprintln!("mesh: bad envelope from {peer}: {e}");
                return;
            }
        };
        if env.dst.index() >= net.len() || !net.is_local(env.dst) {
            eprintln!("mesh: {peer} sent an envelope for non-local {}", env.dst);
            return;
        }
        if net.inject(env).is_err() {
            return; // local engine is shutting down
        }
    }
}

#[cfg(test)]
mod tests {
    use std::io::Write as _;

    use simnet::codec::{frame, CodecError};
    use simnet::Tagged;

    use super::*;
    use crate::framing::{ctrl_node, read_frame, write_frame};

    #[derive(Clone, Debug, PartialEq)]
    struct Ping(u64);

    impl Tagged for Ping {
        fn kind(&self) -> &'static str {
            "PING"
        }
    }

    impl Wire for Ping {
        fn encode(&self, buf: &mut bytes::BytesMut) {
            self.0.encode(buf);
        }
        fn decode(buf: &mut bytes::Bytes) -> Result<Self, CodecError> {
            Ok(Ping(u64::decode(buf)?))
        }
        fn encoded_len(&self) -> usize {
            8
        }
    }

    fn loopback_spec(n: usize) -> (ClusterSpec, Vec<TcpListener>) {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let addrs = listeners
            .iter()
            .map(|l| l.local_addr().unwrap().to_string())
            .collect();
        (ClusterSpec::new(8, addrs), listeners)
    }

    #[test]
    fn two_node_mesh_carries_traffic_both_ways() {
        let (spec, mut listeners) = loopback_spec(2);
        let spec1 = spec.clone();
        let l1 = listeners.pop().unwrap();
        let l0 = listeners.pop().unwrap();
        let timeout = Duration::from_secs(10);

        let side = move |me: u32, listener: TcpListener, spec: ClusterSpec| {
            let me = NodeId::new(me);
            let mesh: TcpMesh<Ping> = TcpMesh::establish(me, &spec, listener, timeout).unwrap();
            let net = Network::partial(2, &[me], mesh.link());
            mesh.start(&net);
            let mb = net.take_mailbox(me);
            let other = NodeId::new(1 - me.index() as u32);
            for i in 0..50 {
                net.send(me, other, Ping(u64::from(me.index() as u32) * 1000 + i)).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..50 {
                got.push(mb.recv().unwrap());
            }
            (mesh, got)
        };

        let peer = thread::spawn(move || side(1, l1, spec1));
        let (mesh0, got0) = side(0, l0, spec);
        let (mesh1, got1) = peer.join().unwrap();

        // FIFO per link, nothing lost, sources correct.
        for (i, env) in got0.iter().enumerate() {
            assert_eq!(env.src, NodeId::new(1));
            assert_eq!(env.payload, Ping(1000 + i as u64));
        }
        for (i, env) in got1.iter().enumerate() {
            assert_eq!(env.src, NodeId::new(0));
            assert_eq!(env.payload, Ping(i as u64));
        }
        mesh0.shutdown();
        mesh1.shutdown();
    }

    #[test]
    fn ctrl_connections_keep_bytes_read_past_the_hello() {
        let (spec, mut listeners) = loopback_spec(1);
        let listener = listeners.pop().unwrap();
        let addr = spec.addr(NodeId::new(0)).to_owned();
        let mesh: TcpMesh<Ping> =
            TcpMesh::establish(NodeId::new(0), &spec, listener, Duration::from_secs(5)).unwrap();

        // Hello and first frame arrive in one segment: the handshake's
        // decoder buffers the frame, and the handoff must not lose it.
        let mut burst = Vec::new();
        write_hello(&mut burst, ConnKind::Ctrl, ctrl_node()).unwrap();
        burst.extend_from_slice(&frame(&42u64));
        let mut client = TcpStream::connect(&addr).unwrap();
        client.write_all(&burst).unwrap();

        let mut client_dec = FrameDecoder::new(MAX_FRAME);
        let reply = read_hello(&mut client, &mut client_dec).unwrap();
        assert_eq!(reply.kind, ConnKind::Ctrl);
        assert_eq!(reply.node, NodeId::new(0));

        let mut conn = mesh
            .ctrl_conns()
            .recv_timeout(Duration::from_secs(5))
            .expect("ctrl connection");
        let body = read_frame(&mut conn.stream, &mut conn.dec).unwrap().unwrap();
        assert_eq!(crate::framing::decode_body::<u64>(body).unwrap(), 42);

        // Server side can answer on the same socket.
        write_frame(&mut conn.stream, &43u64).unwrap();
        let body = read_frame(&mut client, &mut client_dec).unwrap().unwrap();
        assert_eq!(crate::framing::decode_body::<u64>(body).unwrap(), 43);
        mesh.shutdown();
    }

    #[test]
    fn establish_times_out_when_peers_never_dial() {
        let (spec, mut listeners) = loopback_spec(2);
        let _l1 = listeners.pop().unwrap();
        let l0 = listeners.pop().unwrap();
        // Node 0 waits for node 1, which never comes.
        let err = TcpMesh::<Ping>::establish(
            NodeId::new(0),
            &spec,
            l0,
            Duration::from_millis(200),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}
