//! Cluster spec files: who the nodes are and where they listen.
//!
//! A spec is a line-based text file — trivially hand-editable, no parser
//! dependencies:
//!
//! ```text
//! # four-node loopback cluster
//! nodes 4
//! locations 64
//! addr 0 127.0.0.1:7700
//! addr 1 127.0.0.1:7701
//! addr 2 127.0.0.1:7702
//! addr 3 127.0.0.1:7703
//! ```
//!
//! Every process of a cluster loads the same spec; `dsm-server --node i`
//! binds `addr i` and dials its lower-numbered peers.

use std::error::Error;
use std::fmt;

use memcore::NodeId;

/// Transport and engine knobs a spec can set cluster-wide. Every knob
/// has a default, so pre-existing specs (and the short form in the
/// module docs) parse unchanged.
///
/// ```text
/// nodelay on        # TCP_NODELAY (default on)
/// sndbuf 262144     # SO_SNDBUF request in bytes (0 = OS default)
/// rcvbuf 262144     # SO_RCVBUF request in bytes (0 = OS default)
/// pipeline 32       # write-pipeline window (0 = blocking writes)
/// batching on       # coalesce pipelined runs into Msg::Batch envelopes
/// reconnect on      # session-layer retransmission + redial on socket loss
/// rto_ms 50         # session retransmission timeout (reconnect mode)
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetOptions {
    /// Disable Nagle's algorithm on peer sockets (default `true`).
    pub nodelay: bool,
    /// Requested SO_SNDBUF in bytes; `0` keeps the OS default.
    pub sndbuf: u32,
    /// Requested SO_RCVBUF in bytes; `0` keeps the OS default.
    pub rcvbuf: u32,
    /// Engine write-pipeline window; `0` means blocking writes.
    pub pipeline: u32,
    /// Seal pipelined runs into `Msg::Batch` envelopes on the wire.
    pub batching: bool,
    /// Run peer links through `ReliableLink` sessions and redial
    /// dropped sockets instead of treating them as fatal.
    pub reconnect: bool,
    /// Session retransmission timeout in milliseconds (reconnect mode).
    pub rto_ms: u64,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            nodelay: true,
            sndbuf: 0,
            rcvbuf: 0,
            pipeline: 0,
            batching: false,
            reconnect: false,
            rto_ms: 50,
        }
    }
}

/// A parsed cluster spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    locations: u32,
    addrs: Vec<String>,
    net: NetOptions,
}

/// A spec file failed to parse or was inconsistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line of the offending entry (0 for whole-file problems).
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "spec: {}", self.reason)
        } else {
            write!(f, "spec line {}: {}", self.line, self.reason)
        }
    }
}

impl Error for SpecError {}

fn err(line: usize, reason: impl Into<String>) -> SpecError {
    SpecError {
        line,
        reason: reason.into(),
    }
}

impl ClusterSpec {
    /// Builds a spec from node addresses (index = node id).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or `locations` is zero.
    #[must_use]
    pub fn new(locations: u32, addrs: Vec<String>) -> Self {
        assert!(!addrs.is_empty(), "spec needs at least one node");
        assert!(locations > 0, "spec needs at least one location");
        ClusterSpec {
            locations,
            addrs,
            net: NetOptions::default(),
        }
    }

    /// Replaces the network options (builder-style).
    #[must_use]
    pub fn with_net(mut self, net: NetOptions) -> Self {
        self.net = net;
        self
    }

    /// The cluster-wide transport and engine knobs.
    #[must_use]
    pub fn net(&self) -> &NetOptions {
        &self.net
    }

    /// Parses the text format shown in the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on unknown directives, malformed or duplicate
    /// entries, or a node count that does not match the address list.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        fn flag(
            lineno: usize,
            name: &str,
            word: Option<&str>,
            slot: &mut Option<bool>,
        ) -> Result<(), SpecError> {
            let word = word.ok_or_else(|| err(lineno, format!("{name} needs on|off")))?;
            let value = match word {
                "on" => true,
                "off" => false,
                other => return Err(err(lineno, format!("{name} wants on|off, got {other:?}"))),
            };
            if slot.replace(value).is_some() {
                return Err(err(lineno, format!("duplicate {name} directive")));
            }
            Ok(())
        }
        fn number<T: std::str::FromStr>(
            lineno: usize,
            name: &str,
            word: Option<&str>,
            slot: &mut Option<T>,
        ) -> Result<(), SpecError>
        where
            T::Err: fmt::Display,
        {
            let word = word.ok_or_else(|| err(lineno, format!("{name} needs a value")))?;
            let value = word
                .parse()
                .map_err(|e| err(lineno, format!("bad {name}: {e}")))?;
            if slot.replace(value).is_some() {
                return Err(err(lineno, format!("duplicate {name} directive")));
            }
            Ok(())
        }

        let mut nodes: Option<usize> = None;
        let mut locations: Option<u32> = None;
        let mut addrs: Vec<Option<String>> = Vec::new();
        let mut nodelay: Option<bool> = None;
        let mut sndbuf: Option<u32> = None;
        let mut rcvbuf: Option<u32> = None;
        let mut pipeline: Option<u32> = None;
        let mut batching: Option<bool> = None;
        let mut reconnect: Option<bool> = None;
        let mut rto_ms: Option<u64> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("nodes") => {
                    let count: usize = parts
                        .next()
                        .ok_or_else(|| err(lineno, "nodes needs a count"))?
                        .parse()
                        .map_err(|e| err(lineno, format!("bad node count: {e}")))?;
                    if count == 0 {
                        return Err(err(lineno, "node count must be positive"));
                    }
                    if nodes.replace(count).is_some() {
                        return Err(err(lineno, "duplicate nodes directive"));
                    }
                    addrs.resize(count, None);
                }
                Some("locations") => {
                    let count: u32 = parts
                        .next()
                        .ok_or_else(|| err(lineno, "locations needs a count"))?
                        .parse()
                        .map_err(|e| err(lineno, format!("bad location count: {e}")))?;
                    if count == 0 {
                        return Err(err(lineno, "location count must be positive"));
                    }
                    if locations.replace(count).is_some() {
                        return Err(err(lineno, "duplicate locations directive"));
                    }
                }
                Some("addr") => {
                    let id: usize = parts
                        .next()
                        .ok_or_else(|| err(lineno, "addr needs a node id"))?
                        .parse()
                        .map_err(|e| err(lineno, format!("bad node id: {e}")))?;
                    let addr = parts
                        .next()
                        .ok_or_else(|| err(lineno, "addr needs host:port"))?;
                    let n = nodes.ok_or_else(|| err(lineno, "addr before nodes directive"))?;
                    if id >= n {
                        return Err(err(lineno, format!("node {id} out of range (nodes {n})")));
                    }
                    if addrs[id].replace(addr.to_owned()).is_some() {
                        return Err(err(lineno, format!("duplicate addr for node {id}")));
                    }
                }
                Some("nodelay") => flag(lineno, "nodelay", parts.next(), &mut nodelay)?,
                Some("sndbuf") => number(lineno, "sndbuf", parts.next(), &mut sndbuf)?,
                Some("rcvbuf") => number(lineno, "rcvbuf", parts.next(), &mut rcvbuf)?,
                Some("pipeline") => number(lineno, "pipeline", parts.next(), &mut pipeline)?,
                Some("batching") => flag(lineno, "batching", parts.next(), &mut batching)?,
                Some("reconnect") => flag(lineno, "reconnect", parts.next(), &mut reconnect)?,
                Some("rto_ms") => {
                    number(lineno, "rto_ms", parts.next(), &mut rto_ms)?;
                    if rto_ms == Some(0) {
                        return Err(err(lineno, "rto_ms must be positive"));
                    }
                }
                Some(other) => {
                    return Err(err(lineno, format!("unknown directive {other:?}")));
                }
                None => unreachable!("blank lines are skipped"),
            }
            if let Some(extra) = parts.next() {
                return Err(err(lineno, format!("trailing tokens from {extra:?}")));
            }
        }
        let n = nodes.ok_or_else(|| err(0, "missing nodes directive"))?;
        let locations = locations.ok_or_else(|| err(0, "missing locations directive"))?;
        let addrs: Vec<String> = addrs
            .into_iter()
            .enumerate()
            .map(|(id, a)| a.ok_or_else(|| err(0, format!("missing addr for node {id}"))))
            .collect::<Result<_, _>>()?;
        debug_assert_eq!(addrs.len(), n);
        let defaults = NetOptions::default();
        let net = NetOptions {
            nodelay: nodelay.unwrap_or(defaults.nodelay),
            sndbuf: sndbuf.unwrap_or(defaults.sndbuf),
            rcvbuf: rcvbuf.unwrap_or(defaults.rcvbuf),
            pipeline: pipeline.unwrap_or(defaults.pipeline),
            batching: batching.unwrap_or(defaults.batching),
            reconnect: reconnect.unwrap_or(defaults.reconnect),
            rto_ms: rto_ms.unwrap_or(defaults.rto_ms),
        };
        Ok(ClusterSpec::new(locations, addrs).with_net(net))
    }

    /// Renders back to the text format (parse ∘ `to_text` is identity).
    /// Network knobs are emitted only where they differ from the
    /// defaults, so a default spec renders exactly as before.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!("nodes {}\nlocations {}\n", self.nodes(), self.locations);
        let on_off = |b: bool| if b { "on" } else { "off" };
        let defaults = NetOptions::default();
        if self.net.nodelay != defaults.nodelay {
            out.push_str(&format!("nodelay {}\n", on_off(self.net.nodelay)));
        }
        if self.net.sndbuf != defaults.sndbuf {
            out.push_str(&format!("sndbuf {}\n", self.net.sndbuf));
        }
        if self.net.rcvbuf != defaults.rcvbuf {
            out.push_str(&format!("rcvbuf {}\n", self.net.rcvbuf));
        }
        if self.net.pipeline != defaults.pipeline {
            out.push_str(&format!("pipeline {}\n", self.net.pipeline));
        }
        if self.net.batching != defaults.batching {
            out.push_str(&format!("batching {}\n", on_off(self.net.batching)));
        }
        if self.net.reconnect != defaults.reconnect {
            out.push_str(&format!("reconnect {}\n", on_off(self.net.reconnect)));
        }
        if self.net.rto_ms != defaults.rto_ms {
            out.push_str(&format!("rto_ms {}\n", self.net.rto_ms));
        }
        for (id, addr) in self.addrs.iter().enumerate() {
            out.push_str(&format!("addr {id} {addr}\n"));
        }
        out
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.addrs.len() as u32
    }

    /// Size of the shared location namespace.
    #[must_use]
    pub fn locations(&self) -> u32 {
        self.locations
    }

    /// The listen address of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn addr(&self, node: NodeId) -> &str {
        &self.addrs[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_format() {
        let spec = ClusterSpec::parse(
            "# comment\n\nnodes 2\nlocations 8\naddr 0 127.0.0.1:7700\naddr 1 127.0.0.1:7701\n",
        )
        .unwrap();
        assert_eq!(spec.nodes(), 2);
        assert_eq!(spec.locations(), 8);
        assert_eq!(spec.addr(NodeId::new(1)), "127.0.0.1:7701");
    }

    #[test]
    fn round_trips_through_text() {
        let spec = ClusterSpec::new(64, vec!["a:1".into(), "b:2".into(), "c:3".into()]);
        assert_eq!(ClusterSpec::parse(&spec.to_text()).unwrap(), spec);
        // A default spec renders without any net directives.
        assert!(!spec.to_text().contains("nodelay"));
    }

    #[test]
    fn net_options_parse_and_round_trip() {
        let text = "nodes 1\nlocations 4\nnodelay off\nsndbuf 262144\nrcvbuf 131072\n\
                    pipeline 32\nbatching on\nreconnect on\nrto_ms 25\naddr 0 x:1\n";
        let spec = ClusterSpec::parse(text).unwrap();
        assert_eq!(
            *spec.net(),
            NetOptions {
                nodelay: false,
                sndbuf: 262_144,
                rcvbuf: 131_072,
                pipeline: 32,
                batching: true,
                reconnect: true,
                rto_ms: 25,
            }
        );
        assert_eq!(ClusterSpec::parse(&spec.to_text()).unwrap(), spec);
        // Unset knobs keep their defaults.
        let plain = ClusterSpec::parse("nodes 1\nlocations 4\naddr 0 x:1\n").unwrap();
        assert_eq!(*plain.net(), NetOptions::default());
    }

    #[test]
    fn rejects_malformed_net_options() {
        for (extra, needle) in [
            ("nodelay maybe\n", "wants on|off"),
            ("batching\n", "needs on|off"),
            ("pipeline many\n", "bad pipeline"),
            ("rto_ms 0\n", "rto_ms must be positive"),
            ("sndbuf 1 2\n", "trailing"),
            ("reconnect on\nreconnect on\n", "duplicate reconnect"),
            ("pipeline 4\npipeline 4\n", "duplicate pipeline"),
        ] {
            let text = format!("nodes 1\nlocations 4\n{extra}addr 0 x:1\n");
            let e = ClusterSpec::parse(&text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{extra:?} gave {e}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for (text, needle) in [
            ("locations 4\naddr 0 x:1\n", "addr before nodes"),
            (
                "nodes 2\nlocations 4\naddr 0 x:1\n",
                "missing addr for node 1",
            ),
            ("nodes 2\nlocations 4\naddr 5 x:1\n", "out of range"),
            ("nodes 0\n", "must be positive"),
            ("nodes 1\nnodes 1\n", "duplicate nodes"),
            ("warp 9\n", "unknown directive"),
            ("nodes 1\nlocations 4\naddr 0 x:1 extra\n", "trailing"),
            ("nodes 1\naddr 0 x:1\n", "missing locations"),
        ] {
            let e = ClusterSpec::parse(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{text:?} gave {e}, wanted {needle:?}"
            );
        }
    }
}
