//! Cluster spec files: who the nodes are and where they listen.
//!
//! A spec is a line-based text file — trivially hand-editable, no parser
//! dependencies:
//!
//! ```text
//! # four-node loopback cluster
//! nodes 4
//! locations 64
//! addr 0 127.0.0.1:7700
//! addr 1 127.0.0.1:7701
//! addr 2 127.0.0.1:7702
//! addr 3 127.0.0.1:7703
//! ```
//!
//! Every process of a cluster loads the same spec; `dsm-server --node i`
//! binds `addr i` and dials its lower-numbered peers.

use std::error::Error;
use std::fmt;

use memcore::NodeId;

/// A parsed cluster spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    locations: u32,
    addrs: Vec<String>,
}

/// A spec file failed to parse or was inconsistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line of the offending entry (0 for whole-file problems).
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "spec: {}", self.reason)
        } else {
            write!(f, "spec line {}: {}", self.line, self.reason)
        }
    }
}

impl Error for SpecError {}

fn err(line: usize, reason: impl Into<String>) -> SpecError {
    SpecError {
        line,
        reason: reason.into(),
    }
}

impl ClusterSpec {
    /// Builds a spec from node addresses (index = node id).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or `locations` is zero.
    #[must_use]
    pub fn new(locations: u32, addrs: Vec<String>) -> Self {
        assert!(!addrs.is_empty(), "spec needs at least one node");
        assert!(locations > 0, "spec needs at least one location");
        ClusterSpec { locations, addrs }
    }

    /// Parses the text format shown in the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on unknown directives, malformed or duplicate
    /// entries, or a node count that does not match the address list.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut nodes: Option<usize> = None;
        let mut locations: Option<u32> = None;
        let mut addrs: Vec<Option<String>> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("nodes") => {
                    let count: usize = parts
                        .next()
                        .ok_or_else(|| err(lineno, "nodes needs a count"))?
                        .parse()
                        .map_err(|e| err(lineno, format!("bad node count: {e}")))?;
                    if count == 0 {
                        return Err(err(lineno, "node count must be positive"));
                    }
                    if nodes.replace(count).is_some() {
                        return Err(err(lineno, "duplicate nodes directive"));
                    }
                    addrs.resize(count, None);
                }
                Some("locations") => {
                    let count: u32 = parts
                        .next()
                        .ok_or_else(|| err(lineno, "locations needs a count"))?
                        .parse()
                        .map_err(|e| err(lineno, format!("bad location count: {e}")))?;
                    if count == 0 {
                        return Err(err(lineno, "location count must be positive"));
                    }
                    if locations.replace(count).is_some() {
                        return Err(err(lineno, "duplicate locations directive"));
                    }
                }
                Some("addr") => {
                    let id: usize = parts
                        .next()
                        .ok_or_else(|| err(lineno, "addr needs a node id"))?
                        .parse()
                        .map_err(|e| err(lineno, format!("bad node id: {e}")))?;
                    let addr = parts
                        .next()
                        .ok_or_else(|| err(lineno, "addr needs host:port"))?;
                    let n = nodes.ok_or_else(|| err(lineno, "addr before nodes directive"))?;
                    if id >= n {
                        return Err(err(lineno, format!("node {id} out of range (nodes {n})")));
                    }
                    if addrs[id].replace(addr.to_owned()).is_some() {
                        return Err(err(lineno, format!("duplicate addr for node {id}")));
                    }
                }
                Some(other) => {
                    return Err(err(lineno, format!("unknown directive {other:?}")));
                }
                None => unreachable!("blank lines are skipped"),
            }
            if let Some(extra) = parts.next() {
                return Err(err(lineno, format!("trailing tokens from {extra:?}")));
            }
        }
        let n = nodes.ok_or_else(|| err(0, "missing nodes directive"))?;
        let locations = locations.ok_or_else(|| err(0, "missing locations directive"))?;
        let addrs: Vec<String> = addrs
            .into_iter()
            .enumerate()
            .map(|(id, a)| a.ok_or_else(|| err(0, format!("missing addr for node {id}"))))
            .collect::<Result<_, _>>()?;
        debug_assert_eq!(addrs.len(), n);
        Ok(ClusterSpec::new(locations, addrs))
    }

    /// Renders back to the text format (parse ∘ `to_text` is identity).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!("nodes {}\nlocations {}\n", self.nodes(), self.locations);
        for (id, addr) in self.addrs.iter().enumerate() {
            out.push_str(&format!("addr {id} {addr}\n"));
        }
        out
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.addrs.len() as u32
    }

    /// Size of the shared location namespace.
    #[must_use]
    pub fn locations(&self) -> u32 {
        self.locations
    }

    /// The listen address of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn addr(&self, node: NodeId) -> &str {
        &self.addrs[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_format() {
        let spec = ClusterSpec::parse(
            "# comment\n\nnodes 2\nlocations 8\naddr 0 127.0.0.1:7700\naddr 1 127.0.0.1:7701\n",
        )
        .unwrap();
        assert_eq!(spec.nodes(), 2);
        assert_eq!(spec.locations(), 8);
        assert_eq!(spec.addr(NodeId::new(1)), "127.0.0.1:7701");
    }

    #[test]
    fn round_trips_through_text() {
        let spec = ClusterSpec::new(64, vec!["a:1".into(), "b:2".into(), "c:3".into()]);
        assert_eq!(ClusterSpec::parse(&spec.to_text()).unwrap(), spec);
    }

    #[test]
    fn rejects_malformed_specs() {
        for (text, needle) in [
            ("locations 4\naddr 0 x:1\n", "addr before nodes"),
            ("nodes 2\nlocations 4\naddr 0 x:1\n", "missing addr for node 1"),
            ("nodes 2\nlocations 4\naddr 5 x:1\n", "out of range"),
            ("nodes 0\n", "must be positive"),
            ("nodes 1\nnodes 1\n", "duplicate nodes"),
            ("warp 9\n", "unknown directive"),
            ("nodes 1\nlocations 4\naddr 0 x:1 extra\n", "trailing"),
            ("nodes 1\naddr 0 x:1\n", "missing locations"),
        ] {
            let e = ClusterSpec::parse(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{text:?} gave {e}, wanted {needle:?}"
            );
        }
    }
}
