//! `dsm-net`: the causal DSM over real TCP.
//!
//! The repo's engines normally run all nodes in one process over
//! crossbeam channels. This crate swaps that floor out for sockets while
//! changing nothing above it:
//!
//! - [`framing`] — length-prefixed frames over byte streams, reusing the
//!   workspace `Wire` codec, plus the connection-opening handshake.
//! - [`mesh`] — one TCP connection per node pair ([`mesh::TcpMesh`]),
//!   feeding a partial [`simnet::Network`] through its `RemoteLink`
//!   hook; TCP's per-connection FIFO and reliability are exactly the
//!   paper's §3 network assumptions (`docs/NET.md`).
//! - [`spec`] — the cluster spec file every process loads.
//! - [`cluster`] — [`cluster::NetCluster`], one process's node of a
//!   multi-process causal memory.
//! - [`ctrl`] — the control protocol `dsm-load` drives servers with.
//! - [`harness`] — the deterministic mixed workload and the loopback
//!   multi-threaded-over-sockets runner.
//!
//! The `dsm-server` binary hosts one node per process; `dsm-load` brings
//! up a cluster, drives the workload, and checks the merged history
//! against `causal-spec`'s Definition-2 oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod ctrl;
pub mod framing;
pub mod harness;
pub mod mesh;
pub mod spec;

pub use cluster::{bind_reusable, NetCluster, Payload};
pub use ctrl::{CtrlMsg, WireOp};
pub use harness::{
    mixed_script, run_loopback, run_loopback_with, run_loopback_workload, run_node, run_node_with,
    LoopbackReport, Script,
};
pub use mesh::{CtrlConn, EnvelopeSink, MeshLink, SinkClosed, TcpMesh, WireStats};
pub use spec::{ClusterSpec, NetOptions, SpecError};
