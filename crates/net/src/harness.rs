//! The mixed-remote workload over real sockets.
//!
//! [`mixed_script`] reproduces the shape of the bench suite's
//! `mixed_remote` cell — same salt, same value pool, same
//! (node, location, is-read) draw — so the TCP numbers sit next to the
//! in-process ones in the bench report as like-for-like. Each node of a
//! cluster executes its slice of one cluster-wide script;
//! [`run_loopback`] drives all the nodes of a multi-*threaded*,
//! socket-connected cluster in one process (the form the tests and bench
//! use), while `dsm-server`/`dsm-load` run the same script across real
//! processes.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use causal_dsm::CausalHandle;
use causal_spec::Execution;
use memcore::{Location, NodeId, Recorder, SharedMemory};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cluster::{NetCluster, Payload};
use crate::mesh::WireStats;
use crate::spec::{ClusterSpec, NetOptions};

/// Size of every value the workload writes.
pub const PAYLOAD_BYTES: usize = 64;

/// Seed salt shared with the bench suite's `mixed_remote` cell.
pub const MIXED_SEED_SALT: u64 = 0x517C_C1B7;

/// Default read fraction of the mixed workload, in percent.
pub const DEFAULT_READ_PCT: u8 = 70;

/// How long cluster bring-up (mesh establishment) may take.
pub const ESTABLISH_TIMEOUT: Duration = Duration::from_secs(30);

/// A deterministic cluster-wide workload: a value pool plus
/// (node, location, is-read) entries. A pure function of its parameters,
/// so every process of a cluster derives the identical script locally.
pub struct Script {
    /// The values writes draw from (entry `i` writes `pool[i % 64]`).
    pub pool: Vec<Payload>,
    /// The op sequence; each node executes the entries naming it.
    pub entries: Vec<(u32, Location, bool)>,
}

/// Draws the mixed workload script.
///
/// # Panics
///
/// Panics if `read_pct` exceeds 100 or `nodes`/`locations` is zero.
#[must_use]
pub fn mixed_script(nodes: u32, locations: u32, seed: u64, len: usize, read_pct: u8) -> Script {
    assert!(read_pct <= 100, "read_pct is a percentage");
    assert!(nodes > 0 && locations > 0, "empty cluster");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ MIXED_SEED_SALT);
    let pool: Vec<Payload> = (0..64)
        .map(|_| {
            let mut v = vec![0u8; PAYLOAD_BYTES];
            for b in &mut v {
                *b = rng.gen_range(0..=255u32) as u8;
            }
            v
        })
        .collect();
    let entries = (0..len)
        .map(|_| {
            (
                rng.gen_range(0..nodes),
                Location::new(rng.gen_range(0..locations)),
                rng.gen_bool(f64::from(read_pct) / 100.0),
            )
        })
        .collect();
    Script { pool, entries }
}

/// Executes `me`'s slice of `script` through `handle` (blocking reads and
/// writes), returning the number of operations performed.
///
/// # Panics
///
/// Panics if an operation fails — on a healthy cluster that is an engine
/// or transport bug.
pub fn run_node(handle: &CausalHandle<Payload>, me: NodeId, script: &Script) -> u64 {
    run_node_with(handle, me, script, false)
}

/// Like [`run_node`], but `pipelined` selects the engine's pipelined
/// write path (`write_pipelined` + one final `flush`), which is what
/// lets a pipeline window's worth of WRITEs share transport envelopes
/// and `writev` calls.
///
/// # Panics
///
/// Panics if an operation fails — on a healthy cluster that is an engine
/// or transport bug.
pub fn run_node_with(
    handle: &CausalHandle<Payload>,
    me: NodeId,
    script: &Script,
    pipelined: bool,
) -> u64 {
    let mut ops = 0u64;
    for (i, &(node, loc, is_read)) in script.entries.iter().enumerate() {
        if node != me.index() as u32 {
            continue;
        }
        if is_read {
            handle.read(loc).expect("scripted read");
        } else if pipelined {
            handle
                .write_pipelined(loc, script.pool[i & 63].clone())
                .expect("scripted pipelined write");
        } else {
            handle
                .write(loc, script.pool[i & 63].clone())
                .expect("scripted write");
        }
        ops += 1;
    }
    if pipelined {
        handle.flush().expect("pipeline flush");
    }
    ops
}

/// What a loopback run measured; the merged history is the oracle's
/// input.
pub struct LoopbackReport {
    /// Operations executed across all nodes.
    pub ops: u64,
    /// Wall-clock of the op phase (slowest node; they start together).
    pub elapsed_ns: u64,
    /// Owner-protocol messages sent cluster-wide.
    pub protocol_msgs: u64,
    /// Bookkeeping messages (heartbeats, session overhead) cluster-wide.
    pub overhead_msgs: u64,
    /// Physical envelopes cluster-wide.
    pub envelope_msgs: u64,
    /// Message counts per kind, cluster-wide.
    pub msgs_by_kind: BTreeMap<String, u64>,
    /// Wire-level counters summed across all mesh endpoints (syscalls,
    /// frames, retransmissions, reconnects).
    pub wire: WireStats,
    /// The merged per-process history, for `causal_spec::check_causal`.
    pub execution: Execution<Payload>,
}

/// Runs the mixed workload on an `nodes`-node cluster whose members are
/// threads of this process connected through real loopback TCP sockets —
/// every protocol message crosses the kernel's socket layer.
///
/// # Panics
///
/// Panics if bring-up or any operation fails.
#[must_use]
pub fn run_loopback(nodes: u32, locations: u32, seed: u64, script_len: usize) -> LoopbackReport {
    run_loopback_with(nodes, locations, seed, script_len, &NetOptions::default())
}

/// [`run_loopback`] with explicit transport options: `net.pipeline`
/// selects the pipelined write path, `net.batching` seals pipelined
/// sends into batch envelopes, `net.reconnect` runs session-backed
/// links.
///
/// # Panics
///
/// Panics if bring-up or any operation fails.
#[must_use]
pub fn run_loopback_with(
    nodes: u32,
    locations: u32,
    seed: u64,
    script_len: usize,
    net: &NetOptions,
) -> LoopbackReport {
    run_loopback_workload(nodes, locations, seed, script_len, DEFAULT_READ_PCT, net)
}

/// The fully parameterized loopback runner: [`run_loopback_with`] plus an
/// explicit read percentage, for workloads that need a different
/// read/write mix than the default (the bench suite's write-heavy TCP
/// pipeline cells use `read_pct = 0`).
///
/// # Panics
///
/// Panics if bring-up or any operation fails.
#[must_use]
pub fn run_loopback_workload(
    nodes: u32,
    locations: u32,
    seed: u64,
    script_len: usize,
    read_pct: u8,
    net: &NetOptions,
) -> LoopbackReport {
    let listeners: Vec<TcpListener> = (0..nodes)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect();
    let spec = ClusterSpec::new(locations, addrs).with_net(net.clone());
    let pipelined = net.pipeline > 0;
    let recorder: Recorder<Payload> = Recorder::new(nodes as usize);
    let script = Arc::new(mixed_script(nodes, locations, seed, script_len, read_pct));
    // Two barriers bracket the op phase: all nodes start together, and
    // none begins teardown while a peer still has operations (and thus
    // owner round-trips) outstanding.
    let go = Arc::new(Barrier::new(nodes as usize));
    let done = Arc::new(Barrier::new(nodes as usize));

    let threads: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let me = NodeId::new(i as u32);
            let spec = spec.clone();
            let recorder = recorder.clone();
            let script = Arc::clone(&script);
            let go = Arc::clone(&go);
            let done = Arc::clone(&done);
            thread::Builder::new()
                .name(format!("node-{me}"))
                .spawn(move || {
                    let cluster =
                        NetCluster::start(&spec, me, listener, Some(recorder), ESTABLISH_TIMEOUT)
                            .expect("establish cluster");
                    go.wait();
                    let start = Instant::now();
                    let ops = run_node_with(&cluster.handle(), me, &script, pipelined);
                    done.wait();
                    let elapsed_ns = start.elapsed().as_nanos() as u64;
                    let msgs = cluster.cluster().messages().snapshot();
                    let envs = cluster.cluster().envelopes().snapshot();
                    let wire = cluster.wire_stats();
                    cluster.shutdown();
                    (ops, elapsed_ns, msgs, envs, wire)
                })
                .expect("spawn node thread")
        })
        .collect();

    let mut ops = 0u64;
    let mut elapsed_ns = 0u64;
    let mut protocol_msgs = 0u64;
    let mut overhead_msgs = 0u64;
    let mut envelope_msgs = 0u64;
    let mut msgs_by_kind = BTreeMap::new();
    let mut wire = WireStats::default();
    for handle in threads {
        let (node_ops, node_ns, msgs, envs, node_wire) = handle.join().expect("node thread");
        ops += node_ops;
        elapsed_ns = elapsed_ns.max(node_ns);
        // Each process slice counted only its own sends, so summing the
        // per-process snapshots double-counts nothing.
        protocol_msgs += msgs.protocol_total();
        overhead_msgs += msgs.overhead_total();
        envelope_msgs += envs.total();
        for (kind, count) in msgs.by_kind() {
            *msgs_by_kind.entry(kind).or_insert(0) += count;
        }
        wire += node_wire;
    }

    LoopbackReport {
        ops,
        elapsed_ns,
        protocol_msgs,
        overhead_msgs,
        envelope_msgs,
        msgs_by_kind,
        wire,
        execution: Execution::from_recorder(&recorder),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_and_respect_read_pct() {
        let a = mixed_script(4, 64, 7, 4096, 70);
        let b = mixed_script(4, 64, 7, 4096, 70);
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.pool, b.pool);
        assert_eq!(a.pool.len(), 64);
        assert!(a.pool.iter().all(|v| v.len() == PAYLOAD_BYTES));
        let reads = a.entries.iter().filter(|e| e.2).count();
        // 70% ± a generous tolerance.
        assert!((2500..=3250).contains(&reads), "reads = {reads}");
        assert!(a.entries.iter().all(|e| e.0 < 4));

        let c = mixed_script(4, 64, 8, 4096, 70);
        assert_ne!(a.entries, c.entries);
    }
}
