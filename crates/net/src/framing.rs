//! Frame and handshake I/O over byte streams.
//!
//! The wire format is the workspace's existing length-prefixed codec
//! ([`simnet::codec::frame`]): a big-endian `u32` body length followed by
//! the body, with every protocol type encoded by its [`Wire`] impl. This
//! module adds the stream side — writing whole frames to a `Write`,
//! reassembling them from a `Read` through the bounded
//! [`FrameDecoder`] — plus the connection-opening handshake.
//!
//! # Frame layout
//!
//! ```text
//! +----------------+----------------------+
//! | len: u32 (BE)  | body: len bytes      |
//! +----------------+----------------------+
//! ```
//!
//! Peer connections carry envelope frames:
//!
//! ```text
//! body = src: u32 | dst: u32 | payload: Wire encoding of M
//! ```
//!
//! Every connection opens with a hello frame in each direction:
//!
//! ```text
//! body = magic: u32 ("DSM1") | version: u8 | kind: u8 | node: u32
//! ```

use std::io::{self, Read, Write};

use bytes::{Buf, Bytes};
use memcore::NodeId;
use simnet::codec::{frame, CodecError, FrameDecoder, Wire};
use simnet::Envelope;

/// First four bytes of every hello: `"DSM1"`.
pub const MAGIC: u32 = 0x4453_4D31;

/// Wire-protocol version; bumped on any incompatible frame change.
pub const VERSION: u8 = 1;

/// Maximum accepted frame body (16 MiB). Far above any protocol message —
/// a frame this size indicates corruption or a hostile peer, and the
/// bound keeps a bad length prefix from driving allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Chunk size for stream reads feeding the frame decoder.
const READ_CHUNK: usize = 64 * 1024;

/// What a connection is for, declared in its hello.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnKind {
    /// A node-to-node protocol link of the mesh.
    Peer,
    /// A control connection (load generator, orchestration).
    Ctrl,
}

/// The identity frame opening every connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Why the connection was opened.
    pub kind: ConnKind,
    /// The sender's node id (`u32::MAX` for controllers, which are not
    /// cluster nodes).
    pub node: NodeId,
}

/// The sentinel node id controllers identify with.
#[must_use]
pub fn ctrl_node() -> NodeId {
    NodeId::new(u32::MAX)
}

fn invalid<E: std::fmt::Display>(what: &str, err: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{what}: {err}"))
}

/// Writes `value` as one frame.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame<T: Wire>(w: &mut impl Write, value: &T) -> io::Result<()> {
    w.write_all(&frame(value))
}

/// Reads the next frame body from a blocking stream, `Ok(None)` on clean
/// EOF at a frame boundary.
///
/// # Errors
///
/// Transport errors propagate; an EOF inside a frame or an oversize
/// length prefix is [`io::ErrorKind::InvalidData`] /
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read, dec: &mut FrameDecoder) -> io::Result<Option<Bytes>> {
    loop {
        if let Some(body) = dec.next_frame().map_err(|e| invalid("bad frame", e))? {
            return Ok(Some(body));
        }
        let mut chunk = [0u8; READ_CHUNK];
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return if dec.pending() == 0 {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            };
        }
        dec.extend(&chunk[..n]);
    }
}

/// Decodes a complete frame body as `T`, rejecting trailing bytes.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on malformed bodies.
pub fn decode_body<T: Wire>(mut body: Bytes) -> io::Result<T> {
    let value = T::decode(&mut body).map_err(|e| invalid("bad frame body", e))?;
    if body.remaining() != 0 {
        return Err(invalid(
            "bad frame body",
            format!("{} trailing bytes", body.remaining()),
        ));
    }
    Ok(value)
}

/// Frames an envelope for a peer link: `src | dst | payload`.
#[must_use]
pub fn encode_envelope<M: Wire>(env: &Envelope<M>) -> Bytes {
    frame(&EnvelopeBody(env))
}

/// Encodes an envelope *body* without the length prefix: the payload a
/// session frame carries, so reconnect-mode links can wrap
/// `src | dst | payload` inside a `SessionMsg::Data` frame.
#[must_use]
pub fn encode_envelope_body<M: Wire>(env: &Envelope<M>) -> Bytes {
    let body = EnvelopeBody(env);
    let mut buf = bytes::BytesMut::with_capacity(body.encoded_len());
    body.encode(&mut buf);
    buf.freeze()
}

/// An opaque, already-encoded frame body.
///
/// Its [`Wire`] impl copies the bytes through verbatim and `decode`
/// consumes the whole remaining buffer, which is why session frames
/// place the payload last: `SessionMsg::<RawBody>::decode` hands the
/// rest of the frame to `RawBody` untouched. The mesh uses it to run
/// [`ReliableLink`](dsm_faults::ReliableLink) sessions over encoded
/// envelopes without the session layer knowing the protocol type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawBody(pub Bytes);

impl Wire for RawBody {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        buf.extend_from_slice(&self.0);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(RawBody(buf.split_to(buf.len())))
    }
    fn encoded_len(&self) -> usize {
        self.0.len()
    }
}

/// Decodes a peer-link frame body back into an envelope.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on malformed bodies.
pub fn decode_envelope<M: Wire>(mut body: Bytes) -> io::Result<Envelope<M>> {
    let src = NodeId::decode(&mut body).map_err(|e| invalid("bad envelope", e))?;
    let dst = NodeId::decode(&mut body).map_err(|e| invalid("bad envelope", e))?;
    let payload = M::decode(&mut body).map_err(|e| invalid("bad envelope", e))?;
    if body.remaining() != 0 {
        return Err(invalid(
            "bad envelope",
            format!("{} trailing bytes", body.remaining()),
        ));
    }
    Ok(Envelope::new(src, dst, payload))
}

/// Borrowing encoder so [`encode_envelope`] reuses [`frame`]'s exact
/// preallocation without cloning the payload.
struct EnvelopeBody<'a, M>(&'a Envelope<M>);

impl<M: Wire> Wire for EnvelopeBody<'_, M> {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.0.src.encode(buf);
        self.0.dst.encode(buf);
        self.0.payload.encode(buf);
    }
    fn decode(_buf: &mut Bytes) -> Result<Self, CodecError> {
        unreachable!("EnvelopeBody is encode-only; decode via decode_envelope")
    }
    fn encoded_len(&self) -> usize {
        4 + 4 + self.0.payload.encoded_len()
    }
}

impl Wire for Hello {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        MAGIC.encode(buf);
        VERSION.encode(buf);
        match self.kind {
            ConnKind::Peer => 0u8.encode(buf),
            ConnKind::Ctrl => 1u8.encode(buf),
        }
        (self.node.index() as u32).encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let magic = u32::decode(buf)?;
        if magic != MAGIC {
            return Err(CodecError::BadDiscriminant((magic >> 24) as u8));
        }
        let version = u8::decode(buf)?;
        if version != VERSION {
            return Err(CodecError::BadDiscriminant(version));
        }
        let kind = match u8::decode(buf)? {
            0 => ConnKind::Peer,
            1 => ConnKind::Ctrl,
            d => return Err(CodecError::BadDiscriminant(d)),
        };
        Ok(Hello {
            kind,
            node: NodeId::new(u32::decode(buf)?),
        })
    }

    fn encoded_len(&self) -> usize {
        4 + 1 + 1 + 4
    }
}

/// Sends this side's hello.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_hello(w: &mut impl Write, kind: ConnKind, node: NodeId) -> io::Result<()> {
    write_frame(w, &Hello { kind, node })
}

/// Reads and validates the peer's hello.
///
/// # Errors
///
/// Transport errors propagate; a missing, malformed, or wrong-magic hello
/// is [`io::ErrorKind::InvalidData`].
pub fn read_hello(r: &mut impl Read, dec: &mut FrameDecoder) -> io::Result<Hello> {
    let body = read_frame(r, dec)?
        .ok_or_else(|| invalid("handshake", "connection closed before hello"))?;
    decode_body(body)
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;

    use super::*;

    #[test]
    fn hello_round_trips() {
        for hello in [
            Hello {
                kind: ConnKind::Peer,
                node: NodeId::new(3),
            },
            Hello {
                kind: ConnKind::Ctrl,
                node: ctrl_node(),
            },
        ] {
            let mut buf = Vec::new();
            write_hello(&mut buf, hello.kind, hello.node).unwrap();
            let mut dec = FrameDecoder::new(MAX_FRAME);
            let got = read_hello(&mut Cursor::new(buf), &mut dec).unwrap();
            assert_eq!(got, hello);
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &(0xBAAD_F00Du32, (VERSION, (0u8, 7u32)))).unwrap();
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let err = read_hello(&mut Cursor::new(buf), &mut dec).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn envelopes_round_trip_with_exact_length() {
        let env = Envelope::new(NodeId::new(1), NodeId::new(2), vec![9u64, 8, 7]);
        let framed = encode_envelope(&env);
        // length prefix + src + dst + Vec<u64> body
        assert_eq!(framed.len(), 4 + 4 + 4 + (4 + 3 * 8));
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.extend(&framed);
        let body = dec.next_frame().unwrap().unwrap();
        let got: Envelope<Vec<u64>> = decode_envelope(body).unwrap();
        assert_eq!(got, env);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &(7u32, 9u32)).unwrap();
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.extend(&buf);
        let body = dec.next_frame().unwrap().unwrap();
        assert!(decode_body::<u32>(body.clone()).is_err());
        let env: io::Result<Envelope<u32>> = decode_envelope(body);
        assert!(env.is_err());
    }

    #[test]
    fn frames_survive_arbitrary_chunking() {
        use rand::{Rng, SeedableRng};

        // A realistic connection-opening byte stream — hello, then a run
        // of envelopes of assorted sizes — delivered in pseudo-random
        // slivers (1..=17 bytes), the shape non-blocking sockets produce
        // when writers are split across writev calls. The decoder must
        // reassemble every frame byte-identically regardless of where
        // the cuts fall.
        let envs: Vec<Envelope<Vec<u64>>> = (0..50u64)
            .map(|i| {
                Envelope::new(
                    NodeId::new(1),
                    NodeId::new(0),
                    (0..i % 19).map(|j| i * 100 + j).collect(),
                )
            })
            .collect();
        let mut stream = Vec::new();
        write_hello(&mut stream, ConnKind::Peer, NodeId::new(1)).unwrap();
        for env in &envs {
            stream.extend_from_slice(&encode_envelope(env));
        }

        for seed in 0..8u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut dec = FrameDecoder::new(MAX_FRAME);
            let mut fed = 0usize;
            let mut frames = Vec::new();
            while fed < stream.len() {
                let take = rng.gen_range(1..=17usize).min(stream.len() - fed);
                dec.extend(&stream[fed..fed + take]);
                fed += take;
                while let Some(body) = dec.next_frame().unwrap() {
                    frames.push(body);
                }
            }
            assert_eq!(dec.pending(), 0, "seed {seed}: bytes left mid-frame");
            assert_eq!(frames.len(), 1 + envs.len());
            let hello: Hello = decode_body(frames[0].clone()).unwrap();
            assert_eq!(hello.kind, ConnKind::Peer);
            assert_eq!(hello.node, NodeId::new(1));
            for (env, body) in envs.iter().zip(&frames[1..]) {
                let got: Envelope<Vec<u64>> = decode_envelope(body.clone()).unwrap();
                assert_eq!(&got, env, "seed {seed}");
            }
        }
    }

    #[test]
    fn eof_mid_frame_errors_and_clean_eof_does_not() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &42u64).unwrap();
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut cur = Cursor::new(&buf[..buf.len() - 2]);
        assert!(read_frame(&mut cur, &mut dec).is_err());

        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut cur = Cursor::new(&buf[..]);
        assert!(read_frame(&mut cur, &mut dec).unwrap().is_some());
        assert!(read_frame(&mut cur, &mut dec).unwrap().is_none());
    }
}
