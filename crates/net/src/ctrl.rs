//! The control protocol between `dsm-load` and `dsm-server`.
//!
//! A controller opens a [`ConnKind::Ctrl`](crate::framing::ConnKind)
//! connection to every server, sends one [`CtrlMsg::Run`], and collects a
//! [`CtrlMsg::Done`] carrying the node's recorded history — which the
//! controller merges across nodes and feeds to `causal-spec` as the
//! oracle. A final [`CtrlMsg::Shutdown`]/[`CtrlMsg::Bye`] exchange makes
//! clean exits observable: a server that answers `Bye` has torn its
//! cluster down.

use bytes::{Bytes, BytesMut};
use memcore::{Location, NodeId, OpRecord, WriteId};
use simnet::codec::{CodecError, Wire};

/// One recorded operation in wire form.
///
/// [`OpRecord`] lives in `memcore`, which does not know about the codec,
/// so the control protocol carries this mirror type (payloads are the
/// raw `Vec<u8>` values the load harness reads and writes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireOp {
    /// `true` for a read record, `false` for a write.
    pub is_read: bool,
    /// The location acted on.
    pub loc: Location,
    /// The value written or returned.
    pub value: Vec<u8>,
    /// The write's own tag, or the tag a read reads from.
    pub write_id: WriteId,
}

impl WireOp {
    /// Converts from the recorder's type.
    #[must_use]
    pub fn from_record(op: &OpRecord<Vec<u8>>) -> Self {
        WireOp {
            is_read: op.is_read(),
            loc: op.loc,
            value: op.value.clone(),
            write_id: op.write_id,
        }
    }

    /// Converts back for the spec checker.
    #[must_use]
    pub fn into_record(self) -> OpRecord<Vec<u8>> {
        if self.is_read {
            OpRecord::read(self.loc, self.value, self.write_id)
        } else {
            OpRecord::write(self.loc, self.value, self.write_id)
        }
    }
}

impl Wire for WireOp {
    fn encode(&self, buf: &mut BytesMut) {
        self.is_read.encode(buf);
        self.loc.encode(buf);
        self.value.encode(buf);
        self.write_id.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(WireOp {
            is_read: bool::decode(buf)?,
            loc: Location::decode(buf)?,
            value: Vec::<u8>::decode(buf)?,
            write_id: WriteId::decode(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.is_read.encoded_len()
            + self.loc.encoded_len()
            + self.value.encoded_len()
            + self.write_id.encoded_len()
    }
}

/// Control-plane messages (either direction is a single frame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Controller → server: run your share of the mixed workload.
    Run {
        /// Seed of the cluster-wide script (same on every node).
        seed: u64,
        /// Operations per node.
        ops: u64,
        /// Percentage of operations that are reads (0–100).
        read_pct: u8,
    },
    /// Server → controller: workload finished; here is what I saw.
    Done {
        /// The reporting node.
        node: NodeId,
        /// Operations executed.
        ops: u64,
        /// Wall-clock spent executing them.
        elapsed_ns: u64,
        /// Protocol messages this node sent (owner-protocol kinds).
        protocol_msgs: u64,
        /// Overhead messages this node sent (heartbeats, acks, …).
        overhead_msgs: u64,
        /// The node's program-order operation log.
        history: Vec<WireOp>,
    },
    /// Controller → server: tear down and exit.
    Shutdown,
    /// Server → controller: teardown complete, exiting now.
    Bye,
}

impl Wire for CtrlMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            CtrlMsg::Run {
                seed,
                ops,
                read_pct,
            } => {
                0u8.encode(buf);
                seed.encode(buf);
                ops.encode(buf);
                read_pct.encode(buf);
            }
            CtrlMsg::Done {
                node,
                ops,
                elapsed_ns,
                protocol_msgs,
                overhead_msgs,
                history,
            } => {
                1u8.encode(buf);
                node.encode(buf);
                ops.encode(buf);
                elapsed_ns.encode(buf);
                protocol_msgs.encode(buf);
                overhead_msgs.encode(buf);
                history.encode(buf);
            }
            CtrlMsg::Shutdown => 2u8.encode(buf),
            CtrlMsg::Bye => 3u8.encode(buf),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(CtrlMsg::Run {
                seed: u64::decode(buf)?,
                ops: u64::decode(buf)?,
                read_pct: u8::decode(buf)?,
            }),
            1 => Ok(CtrlMsg::Done {
                node: NodeId::decode(buf)?,
                ops: u64::decode(buf)?,
                elapsed_ns: u64::decode(buf)?,
                protocol_msgs: u64::decode(buf)?,
                overhead_msgs: u64::decode(buf)?,
                history: Vec::<WireOp>::decode(buf)?,
            }),
            2 => Ok(CtrlMsg::Shutdown),
            3 => Ok(CtrlMsg::Bye),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            CtrlMsg::Run { .. } => 1 + 8 + 8 + 1,
            CtrlMsg::Done { history, .. } => 1 + 4 + 8 + 8 + 8 + 8 + history.encoded_len(),
            CtrlMsg::Shutdown | CtrlMsg::Bye => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use bytes::Buf;
    use simnet::codec::{deframe, frame};

    use super::*;

    fn round_trip(msg: &CtrlMsg) -> CtrlMsg {
        let mut bytes = frame(msg);
        assert_eq!(bytes.len(), 4 + msg.encoded_len());
        let got: CtrlMsg = deframe(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0);
        got
    }

    #[test]
    fn ctrl_msgs_round_trip() {
        let history = vec![
            WireOp {
                is_read: false,
                loc: Location::new(3),
                value: vec![1, 2, 3],
                write_id: WriteId::new(NodeId::new(0), 7),
            },
            WireOp {
                is_read: true,
                loc: Location::new(3),
                value: vec![1, 2, 3],
                write_id: WriteId::new(NodeId::new(0), 7),
            },
        ];
        for msg in [
            CtrlMsg::Run {
                seed: 42,
                ops: 2048,
                read_pct: 70,
            },
            CtrlMsg::Done {
                node: NodeId::new(2),
                ops: 2048,
                elapsed_ns: 123_456,
                protocol_msgs: 99,
                overhead_msgs: 3,
                history: history.clone(),
            },
            CtrlMsg::Shutdown,
            CtrlMsg::Bye,
        ] {
            assert_eq!(round_trip(&msg), msg);
        }
    }

    #[test]
    fn wire_ops_convert_to_and_from_records() {
        let write = OpRecord::write(
            Location::new(5),
            vec![9u8; 4],
            WriteId::new(NodeId::new(1), 11),
        );
        let read = OpRecord::read(Location::new(5), vec![9u8; 4], write.write_id);
        for op in [write, read] {
            assert_eq!(WireOp::from_record(&op).into_record(), op);
        }
    }

    #[test]
    fn bad_discriminants_are_rejected() {
        let mut body = Bytes::from(vec![9u8]);
        assert!(matches!(
            CtrlMsg::decode(&mut body),
            Err(CodecError::BadDiscriminant(9))
        ));
    }
}
