//! `dsm-load` — loopback load generator and oracle gate.
//!
//! ```text
//! # drive an already-running cluster
//! dsm-load --spec cluster.spec --seed 42 --ops 512
//!
//! # spawn a 4-node loopback cluster of dsm-server processes and drive it
//! dsm-load --spawn 4 --locations 64 --seed 42 --ops 512
//!
//! # durability drill: run, SIGKILL node 1, respawn it against its data
//! # dir, run again, and oracle-check the merged cross-crash history
//! dsm-load --spawn 4 --locations 64 --restart 1 --ops 256
//! ```
//!
//! Sends every server one `Run`, collects the `Done` replies, merges the
//! per-node histories into one execution, and checks it against
//! `causal-spec`'s Definition-2 oracle. Exits 0 only if the oracle
//! accepts, every server answered `Bye`, and (when spawned) every child
//! exited cleanly — so CI can gate on the exit code alone.
//!
//! `--restart NODE` (spawn mode only) makes it a recovery drill: after
//! the first round's histories are safely collected, the victim is
//! killed with SIGKILL — no shutdown handshake, so its state survives
//! only through the write-ahead log — and respawned against the same
//! `--data-dir` (a temp dir by default). A second round then runs with
//! the recovered node as a full peer, and the oracle judges the
//! *concatenated* two-round history: every write the victim certified
//! before the kill must still be readable, under unchanged causality,
//! after recovery. Restart mode forces `reconnect on` so the mesh heals
//! its sockets, and servers sync every certified write (`--data-dir`
//! implies the `every_op` policy).

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode};
use std::time::{Duration, Instant};

use causal_spec::{check_causal, Execution};
use dsm_net::ctrl::{CtrlMsg, WireOp};
use dsm_net::framing::{
    ctrl_node, decode_body, read_frame, read_hello, write_frame, write_hello, ConnKind, MAX_FRAME,
};
use dsm_net::{ClusterSpec, NetOptions};
use memcore::NodeId;
use simnet::codec::FrameDecoder;

/// How long servers get to come up and answer the control handshake.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a workload round may take end to end.
const RUN_TIMEOUT: Duration = Duration::from_secs(300);

struct Args {
    spec: Option<String>,
    spawn: Option<u32>,
    locations: u32,
    server_bin: Option<String>,
    seed: u64,
    ops: u64,
    read_pct: u8,
    pipeline: u32,
    batching: bool,
    reconnect: bool,
    restart: Option<u32>,
    data_dir: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dsm-load (--spec FILE | --spawn N --locations L [--server-bin PATH] \
         [--pipeline W] [--batching] [--reconnect] [--restart NODE] [--data-dir DIR]) \
         [--seed S] [--ops K] [--read-pct P]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Option<Args> {
    let mut parsed = Args {
        spec: None,
        spawn: None,
        locations: 64,
        server_bin: None,
        seed: 42,
        ops: 512,
        read_pct: 70,
        pipeline: 0,
        batching: false,
        reconnect: false,
        restart: None,
        data_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        // Valueless switches first; everything else takes one value.
        match arg.as_str() {
            "--batching" => {
                parsed.batching = true;
                continue;
            }
            "--reconnect" => {
                parsed.reconnect = true;
                continue;
            }
            _ => {}
        }
        let value = args.next()?;
        match arg.as_str() {
            "--spec" => parsed.spec = Some(value),
            "--spawn" => parsed.spawn = Some(value.parse().ok()?),
            "--locations" => parsed.locations = value.parse().ok()?,
            "--server-bin" => parsed.server_bin = Some(value),
            "--seed" => parsed.seed = value.parse().ok()?,
            "--ops" => parsed.ops = value.parse().ok()?,
            "--read-pct" => parsed.read_pct = value.parse().ok()?,
            "--pipeline" => parsed.pipeline = value.parse().ok()?,
            "--restart" => parsed.restart = Some(value.parse().ok()?),
            "--data-dir" => parsed.data_dir = Some(value),
            _ => return None,
        }
    }
    // Transport knobs — and the kill/respawn drill — describe the
    // cluster being built, so they only make sense in spawn mode; with
    // --spec the file already says, and there is no child to kill.
    let knobs_ok = parsed.spawn.is_some()
        || (parsed.pipeline == 0
            && !parsed.batching
            && !parsed.reconnect
            && parsed.restart.is_none()
            && parsed.data_dir.is_none());
    let victim_ok = match (parsed.restart, parsed.spawn) {
        (Some(victim), Some(n)) => victim < n,
        _ => true,
    };
    (parsed.spec.is_some() != parsed.spawn.is_some()
        && parsed.read_pct <= 100
        && knobs_ok
        && victim_ok)
        .then_some(parsed)
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("dsm-load: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Picks distinct free loopback ports by briefly binding port 0.
///
/// Racy in principle (the port could be claimed between drop and the
/// server's bind), but the window is tiny and the CI job retries by
/// rerunning; real deployments pass `--spec` with fixed ports.
fn free_addrs(n: u32) -> std::io::Result<Vec<String>> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<Result<_, _>>()?;
    listeners
        .iter()
        .map(|l| l.local_addr().map(|a| a.to_string()))
        .collect()
}

/// How to (re)spawn one `dsm-server` — kept around in restart mode so
/// the victim can be brought back with exactly its original arguments.
struct Spawner {
    bin: PathBuf,
    spec_path: PathBuf,
    data_dir: Option<PathBuf>,
}

impl Spawner {
    fn new(bin: Option<&str>, spec_path: PathBuf, data_dir: Option<PathBuf>) -> Result<Self, String> {
        let bin = match bin {
            Some(bin) => PathBuf::from(bin),
            None => {
                // Sibling of this binary in the same target directory.
                let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
                me.with_file_name("dsm-server")
            }
        };
        Ok(Spawner {
            bin,
            spec_path,
            data_dir,
        })
    }

    fn spawn(&self, node: u32) -> Result<Child, String> {
        let mut cmd = Command::new(&self.bin);
        cmd.arg("--spec")
            .arg(&self.spec_path)
            .arg("--node")
            .arg(node.to_string());
        if let Some(dir) = &self.data_dir {
            cmd.arg("--data-dir").arg(dir.join(format!("node{node}")));
        }
        cmd.spawn()
            .map_err(|e| format!("spawning {}: {e}", self.bin.display()))
    }
}

struct CtrlClient {
    node: NodeId,
    stream: TcpStream,
    dec: FrameDecoder,
}

impl CtrlClient {
    /// Dials `addr`, retrying refusals while the server is still binding.
    fn connect(node: NodeId, addr: &str, deadline: Instant) -> Result<Self, String> {
        loop {
            match TcpStream::connect(addr) {
                Ok(mut stream) => {
                    stream
                        .set_nodelay(true)
                        .and_then(|()| stream.set_read_timeout(Some(RUN_TIMEOUT)))
                        .map_err(|e| format!("configuring {addr}: {e}"))?;
                    write_hello(&mut stream, ConnKind::Ctrl, ctrl_node())
                        .map_err(|e| format!("hello to {addr}: {e}"))?;
                    let mut dec = FrameDecoder::new(MAX_FRAME);
                    let hello = read_hello(&mut stream, &mut dec)
                        .map_err(|e| format!("hello from {addr}: {e}"))?;
                    if hello.kind != ConnKind::Ctrl || hello.node != node {
                        return Err(format!(
                            "{addr} answered as {}, expected {node}",
                            hello.node
                        ));
                    }
                    return Ok(CtrlClient { node, stream, dec });
                }
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(format!("connecting to {node} at {addr}: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    fn send(&mut self, msg: &CtrlMsg) -> Result<(), String> {
        write_frame(&mut self.stream, msg)
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("sending to {}: {e}", self.node))
    }

    fn recv(&mut self) -> Result<CtrlMsg, String> {
        let body = read_frame(&mut self.stream, &mut self.dec)
            .map_err(|e| format!("receiving from {}: {e}", self.node))?
            .ok_or_else(|| format!("{} hung up", self.node))?;
        decode_body(body).map_err(|e| format!("frame from {}: {e}", self.node))
    }
}

fn run(args: &Args) -> Result<bool, String> {
    let (spec, spawner, mut children, temp_data) = match (&args.spec, args.spawn) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            (
                ClusterSpec::parse(&text).map_err(|e| e.to_string())?,
                None,
                Vec::new(),
                None,
            )
        }
        (None, Some(n)) => {
            if n == 0 {
                return Err("--spawn needs at least one node".to_owned());
            }
            // The recovery drill needs durable servers (so the victim
            // has something to come back from) and healing sockets.
            let data_dir = match (&args.data_dir, args.restart) {
                (Some(dir), _) => Some(PathBuf::from(dir)),
                (None, Some(_)) => Some(
                    std::env::temp_dir().join(format!("dsm-load-data-{}", std::process::id())),
                ),
                (None, None) => None,
            };
            let temp_data = (args.data_dir.is_none()).then(|| data_dir.clone()).flatten();
            let spec = ClusterSpec::new(
                args.locations,
                free_addrs(n).map_err(|e| format!("picking ports: {e}"))?,
            )
            .with_net(NetOptions {
                pipeline: args.pipeline,
                batching: args.batching,
                reconnect: args.reconnect || args.restart.is_some(),
                ..NetOptions::default()
            });
            let spec_path =
                std::env::temp_dir().join(format!("dsm-load-{}.spec", std::process::id()));
            std::fs::write(&spec_path, spec.to_text())
                .map_err(|e| format!("writing {}: {e}", spec_path.display()))?;
            let spawner = Spawner::new(args.server_bin.as_deref(), spec_path, data_dir)?;
            let mut children = Vec::new();
            for node in 0..n {
                match spawner.spawn(node) {
                    Ok(child) => children.push(child),
                    Err(e) => {
                        for mut child in children {
                            let _ = child.kill();
                        }
                        return Err(e);
                    }
                }
            }
            (spec, Some(spawner), children, temp_data)
        }
        _ => unreachable!("parse_args enforces the mode choice"),
    };

    let result = drive(&spec, args, spawner.as_ref(), &mut children);

    // Reap spawned servers whatever happened above; their exit codes are
    // part of the verdict. (In restart mode the killed child was already
    // reaped and replaced by its respawn, so SIGKILL does not show here.)
    let mut clean_exits = true;
    for child in &mut children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("dsm-load: a server exited with {status}");
                clean_exits = false;
            }
            Err(e) => {
                eprintln!("dsm-load: waiting on a server: {e}");
                clean_exits = false;
            }
        }
    }
    if let Some(spawner) = &spawner {
        let _ = std::fs::remove_file(&spawner.spec_path);
    }
    if let Some(dir) = temp_data {
        let _ = std::fs::remove_dir_all(dir);
    }
    Ok(result? && clean_exits)
}

/// What one `Run` round yielded, summed over all servers.
#[derive(Default)]
struct RoundTotals {
    ops: u64,
    protocol_msgs: u64,
    overhead_msgs: u64,
    elapsed_ns: u64,
}

/// Sends one `Run` to every server and appends each node's history to
/// `processes`.
fn run_round(
    clients: &mut [CtrlClient],
    seed: u64,
    ops: u64,
    read_pct: u8,
    processes: &mut [Vec<memcore::OpRecord<Vec<u8>>>],
) -> Result<RoundTotals, String> {
    let run = CtrlMsg::Run {
        seed,
        ops,
        read_pct,
    };
    for client in clients.iter_mut() {
        client.send(&run)?;
    }

    // Collect Dones concurrently: a server cannot answer until *every*
    // node finishes its slice, so sequential recv would still take the
    // same wall-clock but hide which node is stuck.
    let mut totals = RoundTotals::default();
    let mut seen = vec![false; processes.len()];
    let results: Vec<Result<CtrlMsg, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .map(|client| scope.spawn(move || client.recv()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("recv thread"))
            .collect()
    });
    for result in results {
        match result? {
            CtrlMsg::Done {
                node,
                ops,
                elapsed_ns: node_ns,
                protocol_msgs: proto,
                overhead_msgs: overhead,
                history,
            } => {
                if node.index() >= seen.len() || seen[node.index()] {
                    return Err(format!("unexpected Done from {node}"));
                }
                seen[node.index()] = true;
                processes[node.index()].extend(history.into_iter().map(WireOp::into_record));
                totals.ops += ops;
                totals.protocol_msgs += proto;
                totals.overhead_msgs += overhead;
                totals.elapsed_ns = totals.elapsed_ns.max(node_ns);
            }
            other => return Err(format!("expected Done, got {other:?}")),
        }
    }
    Ok(totals)
}

fn drive(
    spec: &ClusterSpec,
    args: &Args,
    spawner: Option<&Spawner>,
    children: &mut [Child],
) -> Result<bool, String> {
    let deadline = Instant::now() + CONNECT_TIMEOUT;
    let mut clients = Vec::new();
    for i in 0..spec.nodes() {
        let node = NodeId::new(i);
        clients.push(CtrlClient::connect(node, spec.addr(node), deadline)?);
    }
    eprintln!("dsm-load: {} servers up", clients.len());

    let mut processes = vec![Vec::new(); spec.nodes() as usize];
    let mut total = RoundTotals::default();
    let seeds: &[u64] = if args.restart.is_some() {
        &[args.seed, args.seed.wrapping_add(1)]
    } else {
        &[args.seed]
    };
    for (round, &seed) in seeds.iter().enumerate() {
        if round > 0 {
            // Round-1 histories (including the victim's) are collected,
            // so nothing the kill destroys is unaccounted for — what the
            // merged oracle run checks is that the *memory state* those
            // histories produced survives the crash via the WAL alone.
            let victim = args.restart.expect("second round implies restart mode");
            let spawner = spawner.ok_or("restart mode needs spawned servers")?;
            let child = &mut children[victim as usize];
            eprintln!("dsm-load: SIGKILLing node {victim}, respawning from its data dir");
            child.kill().map_err(|e| format!("killing node {victim}: {e}"))?;
            child.wait().map_err(|e| format!("reaping node {victim}: {e}"))?;
            children[victim as usize] = spawner.spawn(victim)?;
            let node = NodeId::new(victim);
            let deadline = Instant::now() + CONNECT_TIMEOUT;
            clients[victim as usize] = CtrlClient::connect(node, spec.addr(node), deadline)?;
            eprintln!("dsm-load: node {victim} recovered and rejoined");
        }
        let totals = run_round(&mut clients, seed, args.ops, args.read_pct, &mut processes)?;
        total.ops += totals.ops;
        total.protocol_msgs += totals.protocol_msgs;
        total.overhead_msgs += totals.overhead_msgs;
        total.elapsed_ns += totals.elapsed_ns;
    }

    for client in &mut clients {
        client.send(&CtrlMsg::Shutdown)?;
        match client.recv()? {
            CtrlMsg::Bye => {}
            other => return Err(format!("expected Bye from {}, got {other:?}", client.node)),
        }
    }

    let recorded: usize = processes.iter().map(Vec::len).sum();
    let execution = Execution::from_processes(processes);
    let report = check_causal(&execution).map_err(|e| format!("malformed execution: {e}"))?;
    let secs = total.elapsed_ns.max(1) as f64 / 1e9;
    eprintln!(
        "dsm-load: {} ops ({recorded} recorded) in {secs:.3}s \
         ({:.0} ops/s), {} protocol + {} overhead msgs",
        total.ops,
        total.ops as f64 / secs,
        total.protocol_msgs,
        total.overhead_msgs,
    );
    if report.is_correct() {
        eprintln!("dsm-load: oracle verdict: {report}");
        Ok(true)
    } else {
        eprintln!("dsm-load: ORACLE REJECTED the execution:\n{report}");
        Ok(false)
    }
}
