//! `dsm-server` — one causal-memory node per process.
//!
//! ```text
//! dsm-server --spec cluster.spec --node 2 [--data-dir DIR]
//! ```
//!
//! Binds the listen address its spec entry names, joins the TCP mesh
//! (blocking until every peer is up), then serves the control protocol:
//! a `Run` executes this node's slice of the deterministic mixed
//! workload and answers `Done` with the recorded history; `Shutdown`
//! tears the node down and is acknowledged with `Bye` so the controller
//! can distinguish a clean exit from a crash.
//!
//! With `--data-dir` the node keeps a write-ahead log under that
//! directory: certified writes are synced before their replies leave,
//! and a respawn against the same directory recovers the state and
//! rejoins as a full peer under a bumped incarnation (pair it with
//! `reconnect on` in the spec so the mesh heals the sockets).

use std::io::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use dsm_net::ctrl::{CtrlMsg, WireOp};
use dsm_net::framing::{read_frame, write_frame};
use dsm_net::harness::{mixed_script, run_node_with, ESTABLISH_TIMEOUT};
use dsm_net::{bind_reusable, ClusterSpec, NetCluster};
use memcore::{NodeId, Recorder};

/// How long to wait for the controller to dial in after bring-up.
const CTRL_TIMEOUT: Duration = Duration::from_secs(120);

fn usage() -> ExitCode {
    eprintln!("usage: dsm-server --spec FILE --node N [--data-dir DIR]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut spec_path = None;
    let mut node = None;
    let mut data_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => spec_path = args.next(),
            "--node" => node = args.next(),
            "--data-dir" => data_dir = args.next(),
            _ => return usage(),
        }
    }
    let (Some(spec_path), Some(node)) = (spec_path, node) else {
        return usage();
    };
    let Ok(node) = node.parse::<u32>() else {
        return usage();
    };
    match run(&spec_path, NodeId::new(node), data_dir.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dsm-server[{node}]: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(spec_path: &str, me: NodeId, data_dir: Option<&str>) -> Result<(), String> {
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?;
    let spec = ClusterSpec::parse(&text).map_err(|e| e.to_string())?;
    if me.index() >= spec.nodes() as usize {
        return Err(format!("node {me} out of range for {spec_path}"));
    }
    // SO_REUSEADDR bind: a respawn against the same spec entry must
    // reclaim the port while the dead life's sockets are in TIME_WAIT.
    let listener =
        bind_reusable(spec.addr(me)).map_err(|e| format!("binding {}: {e}", spec.addr(me)))?;
    let recorder: Recorder<Vec<u8>> = Recorder::new(spec.nodes() as usize);
    let cluster = match data_dir {
        None => NetCluster::start(
            &spec,
            me,
            listener,
            Some(recorder.clone()),
            ESTABLISH_TIMEOUT,
        ),
        Some(dir) => NetCluster::start_durable(
            &spec,
            me,
            listener,
            Some(recorder.clone()),
            ESTABLISH_TIMEOUT,
            std::path::Path::new(dir),
        ),
    }
    .map_err(|e| format!("bringing up the mesh: {e}"))?;
    eprintln!(
        "dsm-server[{me}]: mesh up (incarnation {}), awaiting controller",
        cluster.incarnation()
    );

    let mut conn = cluster
        .ctrl_conns()
        .recv_timeout(CTRL_TIMEOUT)
        .map_err(|_| "no controller connected".to_owned())?;

    // Each Done reports only the history recorded since the previous
    // one: a controller running multiple rounds (the restart drill)
    // concatenates them, and re-sending round 1 would duplicate tags.
    let mut reported = 0usize;
    // EOF (a controller that hung up without Shutdown) ends the loop;
    // teardown still runs below.
    while let Some(body) = read_frame(&mut conn.stream, &mut conn.dec)
        .map_err(|e| format!("control connection: {e}"))?
    {
        let msg: CtrlMsg =
            dsm_net::framing::decode_body(body).map_err(|e| format!("control frame: {e}"))?;
        match msg {
            CtrlMsg::Run {
                seed,
                ops,
                read_pct,
            } => {
                let script = mixed_script(
                    spec.nodes(),
                    spec.locations(),
                    seed,
                    (ops as usize) * spec.nodes() as usize,
                    read_pct,
                );
                let base = cluster.cluster().messages().snapshot();
                let start = Instant::now();
                // The spec's pipeline knob selects the write path: the
                // whole cluster must agree on it, and the spec is the
                // one artifact every process shares.
                let executed =
                    run_node_with(&cluster.handle(), me, &script, spec.net().pipeline > 0);
                let elapsed_ns = start.elapsed().as_nanos() as u64;
                let delta = cluster.cluster().messages().snapshot().since(&base);
                let history: Vec<WireOp> = recorder.processes()[me.index()]
                    .iter()
                    .skip(reported)
                    .map(WireOp::from_record)
                    .collect();
                reported += history.len();
                let done = CtrlMsg::Done {
                    node: me,
                    ops: executed,
                    elapsed_ns,
                    protocol_msgs: delta.protocol_total(),
                    overhead_msgs: delta.overhead_total(),
                    history,
                };
                write_frame(&mut conn.stream, &done)
                    .and_then(|()| conn.stream.flush())
                    .map_err(|e| format!("sending Done: {e}"))?;
            }
            CtrlMsg::Shutdown => {
                // Bye goes out before teardown: once the controller reads
                // it, this process no longer owes protocol traffic.
                write_frame(&mut conn.stream, &CtrlMsg::Bye)
                    .and_then(|()| conn.stream.flush())
                    .map_err(|e| format!("sending Bye: {e}"))?;
                break;
            }
            CtrlMsg::Done { .. } | CtrlMsg::Bye => {
                return Err("controller sent a server-side message".to_owned());
            }
        }
    }
    cluster.shutdown();
    eprintln!("dsm-server[{me}]: clean exit");
    Ok(())
}
