//! Fault-injection hook points shared by both transports.
//!
//! The paper assumes *reliable, ordered message passing*; the `dsm-faults`
//! crate re-derives that assumption over a lossy link. The [`FaultHook`]
//! trait defined here is the seam where faults enter: the deterministic
//! simulator (`dsm-sim`) consults the hook for every scheduled send and
//! delivery, and the thread transport ([`Network`](crate::Network)) consults
//! it on [`send`](crate::Network::send). Keeping the trait in `simnet` (the
//! bottom of the dependency stack) lets `dsm-sim` consume hooks that
//! `dsm-faults` implements without a dependency cycle.
//!
//! A hook decides a [`SendFate`] per message: zero copies (drop), one copy
//! (normal delivery, possibly with an extra delay spike), or several copies
//! (duplication). Separately, [`FaultHook::down_until`] reports crashed or
//! partitioned-away nodes so transports can discard traffic addressed to
//! them and defer their activity until restart.

use memcore::NodeId;

/// What the network does with one message: how many copies arrive, and how
/// much *extra* delay (on top of the transport's nominal latency) each copy
/// suffers.
///
/// * `copies.is_empty()` — the message is dropped.
/// * `copies == [0]` — normal delivery.
/// * `copies == [extra]` — one copy, delayed by `extra` time units.
/// * `copies.len() > 1` — duplication; each element delays its own copy.
///
/// The thread transport has no timers, so it honours the copy *count* but
/// ignores the extra delays; the simulator honours both.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SendFate {
    /// Extra delay per delivered copy, in transport time units.
    pub copies: Vec<u64>,
}

impl SendFate {
    /// Normal delivery: one copy, no extra delay.
    #[must_use]
    pub fn deliver() -> Self {
        SendFate { copies: vec![0] }
    }

    /// The message is lost.
    #[must_use]
    pub fn dropped() -> Self {
        SendFate { copies: Vec::new() }
    }

    /// One copy, delayed by `extra` time units beyond nominal latency.
    #[must_use]
    pub fn delayed(extra: u64) -> Self {
        SendFate {
            copies: vec![extra],
        }
    }

    /// `true` if no copy will be delivered.
    #[must_use]
    pub fn is_drop(&self) -> bool {
        self.copies.is_empty()
    }
}

/// A fault model consulted by transports on every send and delivery.
///
/// Implementations must be deterministic given their own state (the chaos
/// suite replays executions from a seed), and thread-safe: the thread
/// transport calls hooks from many sender threads.
///
/// Both methods have benign defaults so partial fault models stay small.
pub trait FaultHook: Send + Sync {
    /// Decides the fate of a message sent at time `now`.
    ///
    /// `kind` is the payload's [`Tagged::kind`](crate::Tagged::kind), so a
    /// plan can target specific protocol traffic.
    fn on_send(&self, src: NodeId, dst: NodeId, kind: &'static str, now: u64) -> SendFate {
        let _ = (src, dst, kind, now);
        SendFate::deliver()
    }

    /// If `node` is down (crashed, or cut off by a scheduled partition
    /// event modelled as a crash) at time `at`, returns the time it comes
    /// back up; `None` when the node is healthy.
    ///
    /// While a node is down, messages addressed to it are dropped and its
    /// own activity is deferred to the returned restart time.
    fn down_until(&self, node: NodeId, at: u64) -> Option<u64> {
        let _ = (node, at);
        None
    }
}

/// The identity fault model: every message is delivered exactly once with
/// nominal latency, and no node ever goes down.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_constructors() {
        assert!(SendFate::dropped().is_drop());
        assert_eq!(SendFate::deliver().copies, vec![0]);
        assert_eq!(SendFate::delayed(7).copies, vec![7]);
        assert!(!SendFate::delayed(7).is_drop());
    }

    #[test]
    fn no_faults_is_transparent() {
        let h = NoFaults;
        let fate = h.on_send(NodeId::new(0), NodeId::new(1), "READ", 5);
        assert_eq!(fate, SendFate::deliver());
        assert_eq!(h.down_until(NodeId::new(0), 5), None);
    }

    #[test]
    fn hooks_are_object_safe() {
        let h: Box<dyn FaultHook> = Box::new(NoFaults);
        assert!(!h.on_send(NodeId::new(0), NodeId::new(0), "X", 0).is_drop());
    }
}
