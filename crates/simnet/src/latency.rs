//! Link latency models for the deterministic simulator.
//!
//! The paper's argument for causal memory is that DSM implementations must
//! live with *high-latency* links; the simulator quantifies that by running
//! the same protocols under these models. All models are deterministic
//! given the caller's RNG, and the simulator enforces per-link FIFO on top
//! of whatever delays a model produces.

use std::collections::HashMap;

use memcore::NodeId;
use rand::Rng;

/// Produces a one-way delay (in simulated time units) for a message.
pub trait LatencyModel: Send {
    /// Samples the delay for a message from `src` to `dst`.
    fn sample(&mut self, rng: &mut dyn rand::RngCore, src: NodeId, dst: NodeId) -> u64;
}

/// Every message takes exactly `delay` units.
///
/// # Examples
///
/// ```
/// use memcore::NodeId;
/// use simnet::latency::{Constant, LatencyModel};
///
/// let mut model = Constant::new(10);
/// let mut rng = rand::thread_rng();
/// assert_eq!(model.sample(&mut rng, NodeId::new(0), NodeId::new(1)), 10);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Constant {
    delay: u64,
}

impl Constant {
    /// A constant one-way delay.
    #[must_use]
    pub fn new(delay: u64) -> Self {
        Constant { delay }
    }
}

impl LatencyModel for Constant {
    fn sample(&mut self, _rng: &mut dyn rand::RngCore, _src: NodeId, _dst: NodeId) -> u64 {
        self.delay
    }
}

/// Delays drawn uniformly from `[min, max]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Uniform {
    min: u64,
    max: u64,
}

impl Uniform {
    /// A uniform delay in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn new(min: u64, max: u64) -> Self {
        assert!(min <= max, "uniform latency needs min <= max");
        Uniform { min, max }
    }
}

impl LatencyModel for Uniform {
    fn sample(&mut self, rng: &mut dyn rand::RngCore, _src: NodeId, _dst: NodeId) -> u64 {
        rng.gen_range(self.min..=self.max)
    }
}

/// Per-link base delays with optional uniform jitter: models an
/// asymmetric topology (e.g. two racks with a slow interconnect).
#[derive(Clone, Debug, Default)]
pub struct PerLink {
    base: HashMap<(NodeId, NodeId), u64>,
    default: u64,
    jitter: u64,
}

impl PerLink {
    /// All links default to `default` with `jitter` units of uniform
    /// jitter added on top.
    #[must_use]
    pub fn new(default: u64, jitter: u64) -> Self {
        PerLink {
            base: HashMap::new(),
            default,
            jitter,
        }
    }

    /// Overrides the base delay of one directed link.
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, delay: u64) -> &mut Self {
        self.base.insert((src, dst), delay);
        self
    }
}

impl LatencyModel for PerLink {
    fn sample(&mut self, rng: &mut dyn rand::RngCore, src: NodeId, dst: NodeId) -> u64 {
        let base = self.base.get(&(src, dst)).copied().unwrap_or(self.default);
        if self.jitter == 0 {
            base
        } else {
            base + rng.gen_range(0..=self.jitter)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn constant_is_constant() {
        let mut m = Constant::new(7);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng, p(0), p(1)), 7);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut m = Uniform::new(5, 9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = m.sample(&mut rng, p(0), p(1));
            assert!((5..=9).contains(&d));
        }
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn uniform_rejects_inverted_range() {
        let _ = Uniform::new(9, 5);
    }

    #[test]
    fn per_link_overrides_apply_directionally() {
        let mut m = PerLink::new(3, 0);
        m.set_link(p(0), p(1), 50);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(m.sample(&mut rng, p(0), p(1)), 50);
        assert_eq!(m.sample(&mut rng, p(1), p(0)), 3);
    }

    #[test]
    fn per_link_jitter_bounded() {
        let mut m = PerLink::new(10, 4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let d = m.sample(&mut rng, p(0), p(1));
            assert!((10..=14).contains(&d));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let sample_all = |seed: u64| {
            let mut m = Uniform::new(0, 100);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20)
                .map(|_| m.sample(&mut rng, p(0), p(1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample_all(7), sample_all(7));
        assert_ne!(sample_all(7), sample_all(8));
    }
}
