//! The thread transport: crossbeam-channel mailboxes with FIFO links and
//! instrumented sends.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, Sender};
use memcore::{kinds, NetStats, NodeId};
use parking_lot::Mutex;

use crate::envelope::{Envelope, Tagged};
use crate::fault::FaultHook;

/// A send failed because the destination's mailbox was closed.
///
/// This only happens during shutdown; the paper's network is reliable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError {
    /// The unreachable destination.
    pub dst: NodeId,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mailbox of {} is closed", self.dst)
    }
}

impl std::error::Error for SendError {}

/// Forwards envelopes addressed to nodes a partial [`Network`] does not
/// host locally.
///
/// A remote transport (e.g. a TCP mesh) implements this to carry traffic
/// off-process; envelopes arriving from the wire come back in through
/// [`Network::inject`]. The link sees envelopes *after* statistics are
/// recorded and the fault hook has ruled, so the message-counting story is
/// identical for local and remote destinations.
pub trait RemoteLink<M>: Send + Sync {
    /// Carries `env` toward the process hosting `env.dst`.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] if the remote peer is unreachable (shutdown).
    fn send_remote(&self, env: Envelope<M>) -> Result<(), SendError>;
}

struct Inner<M> {
    // `None` marks a node hosted by another process (partial networks);
    // traffic for it goes through `remote`.
    senders: Vec<Option<Sender<Envelope<M>>>>,
    mailboxes: Vec<Mutex<Option<Receiver<Envelope<M>>>>>,
    remote: Option<Arc<dyn RemoteLink<M>>>,
    msgs: NetStats,
    bytes: NetStats,
    envelopes: NetStats,
    metadata: NetStats,
    fault: Mutex<Option<Arc<dyn FaultHook>>>,
    // Logical clock for fault hooks: the thread transport has no simulated
    // time, so each send gets a fresh tick.
    ticks: AtomicU64,
}

/// A reliable, per-link-FIFO network connecting `n` nodes.
///
/// Each node has one mailbox; sends from a given source arrive at a given
/// destination in send order (crossbeam channels preserve per-producer
/// order), delivery is reliable until the mailbox is dropped, and every
/// send is counted into the message (and optionally byte) statistics.
///
/// `Network` is cheap to clone; engines keep one clone per node handle.
///
/// # Examples
///
/// ```
/// use memcore::NodeId;
/// use simnet::{Envelope, Network, Tagged};
///
/// #[derive(Clone, Debug)]
/// struct Ping;
/// impl Tagged for Ping {
///     fn kind(&self) -> &'static str { "PING" }
/// }
///
/// let net: Network<Ping> = Network::new(2);
/// let mailbox = net.take_mailbox(NodeId::new(1));
/// net.send(NodeId::new(0), NodeId::new(1), Ping).unwrap();
/// let env = mailbox.recv().unwrap();
/// assert_eq!(env.src, NodeId::new(0));
/// assert_eq!(net.messages().snapshot().total(), 1);
/// ```
pub struct Network<M> {
    inner: Arc<Inner<M>>,
}

impl<M> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Tagged> Network<M> {
    /// Creates a network of `n` nodes with fresh statistics counters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::build(n, None, None)
    }

    /// Creates a *partial* network: mailboxes exist only for the nodes in
    /// `local`; envelopes addressed to any other node are handed to `link`.
    ///
    /// Traffic arriving from remote processes is delivered with
    /// [`inject`](Network::inject). Statistics counters still span all `n`
    /// nodes so per-node snapshots keep their indices, but only local
    /// senders record into them.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, `local` is empty, or any id in `local` is out
    /// of range.
    #[must_use]
    pub fn partial(n: usize, local: &[NodeId], link: Arc<dyn RemoteLink<M>>) -> Self {
        assert!(!local.is_empty(), "partial network needs a local node");
        assert!(
            local.iter().all(|id| id.index() < n),
            "local node out of range"
        );
        Self::build(n, Some(local), Some(link))
    }

    fn build(n: usize, local: Option<&[NodeId]>, link: Option<Arc<dyn RemoteLink<M>>>) -> Self {
        assert!(n > 0, "network needs at least one node");
        let mut senders = Vec::with_capacity(n);
        let mut mailboxes = Vec::with_capacity(n);
        for i in 0..n {
            if local.is_none_or(|ids| ids.contains(&NodeId::new(i as u32))) {
                let (tx, rx) = unbounded();
                senders.push(Some(tx));
                mailboxes.push(Mutex::new(Some(rx)));
            } else {
                senders.push(None);
                mailboxes.push(Mutex::new(None));
            }
        }
        Network {
            inner: Arc::new(Inner {
                senders,
                mailboxes,
                remote: link,
                msgs: NetStats::new(n),
                bytes: NetStats::new(n),
                envelopes: NetStats::new(n),
                metadata: NetStats::new(n),
                fault: Mutex::new(None),
                ticks: AtomicU64::new(0),
            }),
        }
    }

    /// `true` iff `node`'s mailbox lives in this process.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn is_local(&self, node: NodeId) -> bool {
        self.inner.senders[node.index()].is_some()
    }

    /// Delivers an envelope that arrived from a remote process into its
    /// local mailbox.
    ///
    /// No statistics are recorded: the sending process already counted the
    /// send, and double-counting would skew the paper's message bills.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] if the destination's mailbox was dropped
    /// (shutdown).
    ///
    /// # Panics
    ///
    /// Panics if the destination is out of range or not local.
    pub fn inject(&self, env: Envelope<M>) -> Result<(), SendError> {
        let dst = env.dst;
        self.inner.senders[dst.index()]
            .as_ref()
            .expect("inject target is not a local node")
            .send(env)
            .map_err(|_| SendError { dst })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.senders.len()
    }

    /// Always `false`; a network has at least one node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Removes and returns `node`'s mailbox. Each mailbox can be taken once;
    /// the engine's message loop owns it.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, not local to this process, or its
    /// mailbox was already taken.
    #[must_use]
    pub fn take_mailbox(&self, node: NodeId) -> Mailbox<M> {
        let rx = self.inner.mailboxes[node.index()]
            .lock()
            .take()
            .expect("mailbox already taken or node not local");
        Mailbox { rx }
    }

    /// Installs (or, with `None`, removes) a fault hook consulted on every
    /// subsequent [`send`](Network::send).
    ///
    /// With a hook installed the transport is no longer reliable: messages
    /// may be dropped or duplicated, so only protocols layered over a
    /// session protocol (see `dsm-faults`) should run on a faulty network.
    /// Extra per-copy delays in a [`SendFate`](crate::SendFate) are ignored
    /// — channel delivery has no timers; use the simulator for delay
    /// spikes.
    pub fn set_fault_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        *self.inner.fault.lock() = hook;
    }

    fn transmit(&self, src: NodeId, dst: NodeId, payload: M) -> Result<(), SendError> {
        match &self.inner.senders[dst.index()] {
            Some(tx) => tx
                .send(Envelope::new(src, dst, payload))
                .map_err(|_| SendError { dst }),
            None => self
                .inner
                .remote
                .as_ref()
                .expect("no remote link for non-local destination")
                .send_remote(Envelope::new(src, dst, payload)),
        }
    }

    /// The per-(node, kind) message counters.
    #[must_use]
    pub fn messages(&self) -> &NetStats {
        &self.inner.msgs
    }

    /// The per-(node, kind) byte counters (only populated for payloads with
    /// a wire size).
    #[must_use]
    pub fn bytes(&self) -> &NetStats {
        &self.inner.bytes
    }

    /// The per-(node, kind) *physical envelope* counters.
    ///
    /// One entry per [`send`](Network::send): a batch payload counts once
    /// under [`kinds::BATCH`] here while its constituents land in
    /// [`messages`](Network::messages) under their own kinds. Without
    /// batching this mirrors `messages` exactly, so
    /// `messages - envelopes` is the coalescing win.
    #[must_use]
    pub fn envelopes(&self) -> &NetStats {
        &self.inner.envelopes
    }

    /// The per-(node, kind) causal-metadata byte counters: encoded vector
    /// timestamps only (see [`Tagged::metadata_size`]). Batches record
    /// their total under the envelope's kind; without timestamps in
    /// flight the counter stays empty.
    #[must_use]
    pub fn metadata(&self) -> &NetStats {
        &self.inner.metadata
    }
}

impl<M: Tagged + Clone> Network<M> {
    /// Sends `payload` from `src` to `dst`, recording statistics.
    ///
    /// Messages to self are delivered through the same path (the owner
    /// protocol never sends to self, but applications may).
    ///
    /// With a fault hook installed (see
    /// [`set_fault_hook`](Network::set_fault_hook)), the hook decides the
    /// message's fate:
    /// drops are counted under [`kinds::DROP`] and silently succeed (a real
    /// network gives the sender no signal), extra copies are counted under
    /// [`kinds::DUP`]. The attempted send is always counted under the
    /// payload's own kind, so protocol counts stay comparable across fault
    /// levels.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] if `dst`'s mailbox has been dropped (shutdown).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn send(&self, src: NodeId, dst: NodeId, payload: M) -> Result<(), SendError> {
        // Logical counts are batching-invariant: a batch records each
        // constituent under its own kind and only the envelope counter sees
        // the single physical send.
        match payload.batch_parts() {
            Some(parts) => {
                for (kind, size) in parts {
                    self.inner.msgs.record(src, kind);
                    if let Some(size) = size {
                        self.inner.bytes.record_n(src, kind, size as u64);
                    }
                }
                self.inner.envelopes.record(src, kinds::BATCH);
            }
            None => {
                self.inner.msgs.record(src, payload.kind());
                if let Some(size) = payload.wire_size() {
                    self.inner.bytes.record_n(src, payload.kind(), size as u64);
                }
                self.inner.envelopes.record(src, payload.kind());
            }
        }
        let meta = payload.metadata_size();
        if meta > 0 {
            self.inner.metadata.record_n(src, payload.kind(), meta as u64);
        }
        let hook = self.inner.fault.lock().clone();
        let Some(hook) = hook else {
            return self.transmit(src, dst, payload);
        };
        let now = self.inner.ticks.fetch_add(1, Ordering::Relaxed);
        if hook.down_until(dst, now).is_some() {
            self.inner.msgs.record(src, kinds::DROP);
            return Ok(());
        }
        let fate = hook.on_send(src, dst, payload.kind(), now);
        if fate.is_drop() {
            self.inner.msgs.record(src, kinds::DROP);
            return Ok(());
        }
        for _ in 1..fate.copies.len() {
            self.inner.msgs.record(src, kinds::DUP);
            self.transmit(src, dst, payload.clone())?;
        }
        self.transmit(src, dst, payload)
    }
}

/// The receiving end of one node's mailbox.
pub struct Mailbox<M> {
    rx: Receiver<Envelope<M>>,
}

impl<M> Mailbox<M> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns `None` when every sender is gone (network dropped).
    pub fn recv(&self) -> Option<Envelope<M>> {
        self.rx.recv().ok()
    }

    /// Receives with a timeout; `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` when every sender is gone.
    #[allow(clippy::result_unit_err)]
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Envelope<M>>, ()> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(()),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }
}

impl<M> fmt::Debug for Mailbox<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mailbox(pending: {})", self.rx.len())
    }
}

impl<M> fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network({} nodes)", self.inner.senders.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Read(u32),
        Reply(u32),
    }

    impl Tagged for Msg {
        fn kind(&self) -> &'static str {
            match self {
                Msg::Read(_) => "READ",
                Msg::Reply(_) => "R_REPLY",
            }
        }
        fn wire_size(&self) -> Option<usize> {
            Some(5)
        }
    }

    fn p(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn delivery_preserves_per_link_fifo() {
        let net: Network<Msg> = Network::new(2);
        let mb = net.take_mailbox(p(1));
        for i in 0..100 {
            net.send(p(0), p(1), Msg::Read(i)).unwrap();
        }
        for i in 0..100 {
            assert_eq!(mb.recv().unwrap().payload, Msg::Read(i));
        }
    }

    #[test]
    fn sends_are_counted_by_kind_and_bytes() {
        let net: Network<Msg> = Network::new(2);
        let _mb = net.take_mailbox(p(1));
        net.send(p(0), p(1), Msg::Read(1)).unwrap();
        net.send(p(0), p(1), Msg::Reply(1)).unwrap();
        let snap = net.messages().snapshot();
        assert_eq!(snap.get(p(0), "READ"), 1);
        assert_eq!(snap.get(p(0), "R_REPLY"), 1);
        assert_eq!(net.bytes().snapshot().node_total(p(0)), 10);
    }

    #[test]
    fn batch_payloads_split_logical_and_physical_counters() {
        #[derive(Clone, Debug)]
        struct Wrapper(Vec<Msg>);
        impl Tagged for Wrapper {
            fn kind(&self) -> &'static str {
                kinds::BATCH
            }
            fn batch_parts(&self) -> Option<Vec<(&'static str, Option<usize>)>> {
                Some(self.0.iter().map(|m| (m.kind(), m.wire_size())).collect())
            }
        }

        let net: Network<Wrapper> = Network::new(2);
        let mb = net.take_mailbox(p(1));
        net.send(
            p(0),
            p(1),
            Wrapper(vec![Msg::Read(1), Msg::Read(2), Msg::Reply(1)]),
        )
        .unwrap();
        // One physical envelope arrives…
        assert_eq!(mb.recv().unwrap().payload.0.len(), 3);
        // …but the logical counters saw the three constituents.
        let msgs = net.messages().snapshot();
        assert_eq!(msgs.get(p(0), "READ"), 2);
        assert_eq!(msgs.get(p(0), "R_REPLY"), 1);
        assert_eq!(msgs.get(p(0), kinds::BATCH), 0);
        assert_eq!(net.bytes().snapshot().node_total(p(0)), 15);
        let envs = net.envelopes().snapshot();
        assert_eq!(envs.get(p(0), kinds::BATCH), 1);
        assert_eq!(envs.node_total(p(0)), 1);
    }

    #[test]
    fn unbatched_sends_mirror_into_envelope_counters() {
        let net: Network<Msg> = Network::new(2);
        let _mb = net.take_mailbox(p(1));
        net.send(p(0), p(1), Msg::Read(1)).unwrap();
        net.send(p(0), p(1), Msg::Reply(1)).unwrap();
        assert_eq!(
            net.envelopes().snapshot().by_kind(),
            net.messages().snapshot().by_kind()
        );
    }

    #[test]
    fn send_to_dropped_mailbox_errors() {
        let net: Network<Msg> = Network::new(2);
        {
            let _mb = net.take_mailbox(p(1));
        }
        let err = net.send(p(0), p(1), Msg::Read(0)).unwrap_err();
        assert_eq!(err.dst, p(1));
        assert_eq!(err.to_string(), "mailbox of P1 is closed");
    }

    #[test]
    #[should_panic(expected = "mailbox already taken")]
    fn mailbox_can_only_be_taken_once() {
        let net: Network<Msg> = Network::new(1);
        let _a = net.take_mailbox(p(0));
        let _b = net.take_mailbox(p(0));
    }

    #[test]
    fn try_recv_and_timeout_behave() {
        let net: Network<Msg> = Network::new(2);
        let mb = net.take_mailbox(p(0));
        assert_eq!(mb.try_recv(), None);
        assert_eq!(mb.recv_timeout(Duration::from_millis(1)), Ok(None));
        net.send(p(1), p(0), Msg::Read(9)).unwrap();
        assert_eq!(mb.try_recv().unwrap().payload, Msg::Read(9));
    }

    #[test]
    fn fault_hook_drops_and_duplicates() {
        use crate::fault::{FaultHook, SendFate};

        struct DropReadsDupReplies;
        impl FaultHook for DropReadsDupReplies {
            fn on_send(
                &self,
                _src: NodeId,
                _dst: NodeId,
                kind: &'static str,
                _now: u64,
            ) -> SendFate {
                if kind == "READ" {
                    SendFate::dropped()
                } else {
                    SendFate { copies: vec![0, 0] }
                }
            }
        }

        let net: Network<Msg> = Network::new(2);
        let mb = net.take_mailbox(p(1));
        net.set_fault_hook(Some(Arc::new(DropReadsDupReplies)));
        net.send(p(0), p(1), Msg::Read(1)).unwrap();
        net.send(p(0), p(1), Msg::Reply(2)).unwrap();
        // The read was dropped; the reply arrives twice.
        assert_eq!(mb.recv().unwrap().payload, Msg::Reply(2));
        assert_eq!(mb.recv().unwrap().payload, Msg::Reply(2));
        assert_eq!(mb.try_recv(), None);
        let snap = net.messages().snapshot();
        assert_eq!(snap.get(p(0), "READ"), 1); // attempted sends still counted
        assert_eq!(snap.get(p(0), kinds::DROP), 1);
        assert_eq!(snap.get(p(0), kinds::DUP), 1);
        // Removing the hook restores reliable delivery.
        net.set_fault_hook(None);
        net.send(p(0), p(1), Msg::Read(3)).unwrap();
        assert_eq!(mb.recv().unwrap().payload, Msg::Read(3));
    }

    #[test]
    fn fault_hook_down_node_loses_traffic() {
        use crate::fault::{FaultHook, SendFate};

        struct NodeOneDown;
        impl FaultHook for NodeOneDown {
            fn on_send(
                &self,
                _src: NodeId,
                _dst: NodeId,
                _kind: &'static str,
                _now: u64,
            ) -> SendFate {
                SendFate::deliver()
            }
            fn down_until(&self, node: NodeId, _at: u64) -> Option<u64> {
                (node == NodeId::new(1)).then_some(u64::MAX)
            }
        }

        let net: Network<Msg> = Network::new(2);
        let mb = net.take_mailbox(p(1));
        net.set_fault_hook(Some(Arc::new(NodeOneDown)));
        net.send(p(0), p(1), Msg::Read(1)).unwrap();
        assert_eq!(mb.try_recv(), None);
        assert_eq!(net.messages().snapshot().get(p(0), kinds::DROP), 1);
    }

    #[test]
    fn partial_network_hands_remote_traffic_to_the_link() {
        struct Capture(Mutex<Vec<Envelope<Msg>>>);
        impl RemoteLink<Msg> for Capture {
            fn send_remote(&self, env: Envelope<Msg>) -> Result<(), SendError> {
                self.0.lock().push(env);
                Ok(())
            }
        }

        let link = Arc::new(Capture(Mutex::new(Vec::new())));
        // This process hosts node 0 of a 3-node cluster.
        let net: Network<Msg> = Network::partial(3, &[p(0)], link.clone());
        assert!(net.is_local(p(0)));
        assert!(!net.is_local(p(1)));
        let mb = net.take_mailbox(p(0));

        // Remote destination: counted here, carried by the link.
        net.send(p(0), p(2), Msg::Read(1)).unwrap();
        let captured = link.0.lock();
        assert_eq!(captured.len(), 1);
        assert_eq!(captured[0].dst, p(2));
        drop(captured);
        assert_eq!(net.messages().snapshot().get(p(0), "READ"), 1);

        // Wire arrival: injected into the local mailbox, NOT re-counted —
        // the sending process already billed the send.
        net.inject(Envelope::new(p(2), p(0), Msg::Reply(7)))
            .unwrap();
        assert_eq!(mb.recv().unwrap().payload, Msg::Reply(7));
        assert_eq!(net.messages().snapshot().get(p(2), "R_REPLY"), 0);
        assert_eq!(net.envelopes().snapshot().node_total(p(2)), 0);
    }

    #[test]
    #[should_panic(expected = "inject target is not a local node")]
    fn inject_to_remote_node_panics() {
        struct Null;
        impl RemoteLink<Msg> for Null {
            fn send_remote(&self, _env: Envelope<Msg>) -> Result<(), SendError> {
                Ok(())
            }
        }
        let net: Network<Msg> = Network::partial(2, &[p(0)], Arc::new(Null));
        let _ = net.inject(Envelope::new(p(0), p(1), Msg::Read(0)));
    }

    #[test]
    fn concurrent_senders_each_preserve_order() {
        let net: Network<Msg> = Network::new(3);
        let mb = net.take_mailbox(p(2));
        let net_a = net.clone();
        let net_b = net.clone();
        let a = std::thread::spawn(move || {
            for i in 0..500 {
                net_a.send(p(0), p(2), Msg::Read(i)).unwrap();
            }
        });
        let b = std::thread::spawn(move || {
            for i in 0..500 {
                net_b.send(p(1), p(2), Msg::Reply(i)).unwrap();
            }
        });
        a.join().unwrap();
        b.join().unwrap();
        let (mut next_a, mut next_b) = (0, 0);
        for _ in 0..1000 {
            match mb.recv().unwrap() {
                Envelope {
                    payload: Msg::Read(i),
                    ..
                } => {
                    assert_eq!(i, next_a);
                    next_a += 1;
                }
                Envelope {
                    payload: Msg::Reply(i),
                    ..
                } => {
                    assert_eq!(i, next_b);
                    next_b += 1;
                }
            }
        }
        assert_eq!((next_a, next_b), (500, 500));
    }
}
