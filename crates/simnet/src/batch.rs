//! Sender-side transport batching: accumulate messages bound for one
//! destination and flush them as a single physical envelope.
//!
//! The batcher is policy only — it decides *when* a buffered run is ready
//! (size, count, or explicit flush) and hands the run back; the protocol
//! layer owns the actual envelope type (e.g. `Msg::Batch` in `causal-dsm`)
//! because only it can name a batch on the wire. Logical per-kind counters
//! never see the envelope: [`crate::Tagged::batch_parts`] lets transports
//! unbundle it for accounting.

use crate::envelope::Tagged;

/// When a [`Batcher`] considers a buffered run full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush once this many messages are buffered.
    pub max_msgs: usize,
    /// Flush once the buffered encoded sizes reach this many bytes
    /// (payloads without a wire size count zero toward it).
    pub max_bytes: usize,
}

impl Default for BatchPolicy {
    /// Eight messages or 4 KiB, whichever fills first.
    fn default() -> Self {
        BatchPolicy {
            max_msgs: 8,
            max_bytes: 4096,
        }
    }
}

impl BatchPolicy {
    /// A count-only policy (no byte bound).
    #[must_use]
    pub fn by_count(max_msgs: usize) -> Self {
        BatchPolicy {
            max_msgs,
            max_bytes: usize::MAX,
        }
    }
}

/// Accumulates messages for one destination until the policy says flush.
///
/// # Examples
///
/// ```
/// use simnet::{BatchPolicy, Batcher, Tagged};
///
/// #[derive(Debug, PartialEq)]
/// struct Ping;
/// impl Tagged for Ping {
///     fn kind(&self) -> &'static str { "PING" }
/// }
///
/// let mut batcher = Batcher::new(BatchPolicy::by_count(2));
/// assert!(batcher.push(Ping).is_none());
/// let run = batcher.push(Ping).expect("second push fills the batch");
/// assert_eq!(run.len(), 2);
/// assert!(batcher.is_empty());
/// ```
#[derive(Debug)]
pub struct Batcher<M> {
    policy: BatchPolicy,
    buf: Vec<M>,
    buffered_bytes: usize,
}

impl<M: Tagged> Batcher<M> {
    /// An empty batcher under `policy`.
    #[must_use]
    pub fn new(policy: BatchPolicy) -> Self {
        Batcher {
            policy,
            buf: Vec::new(),
            buffered_bytes: 0,
        }
    }

    /// Buffers `msg`; returns the full run when the policy's count or byte
    /// threshold is reached.
    pub fn push(&mut self, msg: M) -> Option<Vec<M>> {
        self.buffered_bytes += msg.wire_size().unwrap_or(0);
        self.buf.push(msg);
        (self.buf.len() >= self.policy.max_msgs.max(1)
            || self.buffered_bytes >= self.policy.max_bytes)
            .then(|| self.take())
    }

    /// Explicit flush: returns everything buffered (possibly empty).
    pub fn take(&mut self) -> Vec<M> {
        self.buffered_bytes = 0;
        std::mem::take(&mut self.buf)
    }

    /// Number of buffered messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Sized(usize);
    impl Tagged for Sized {
        fn kind(&self) -> &'static str {
            "S"
        }
        fn wire_size(&self) -> Option<usize> {
            Some(self.0)
        }
    }

    #[test]
    fn count_threshold_flushes() {
        let mut b = Batcher::new(BatchPolicy::by_count(3));
        assert!(b.push(Sized(1)).is_none());
        assert!(b.push(Sized(1)).is_none());
        assert_eq!(b.len(), 2);
        let run = b.push(Sized(1)).unwrap();
        assert_eq!(run.len(), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn byte_threshold_flushes() {
        let mut b = Batcher::new(BatchPolicy {
            max_msgs: 100,
            max_bytes: 10,
        });
        assert!(b.push(Sized(4)).is_none());
        let run = b.push(Sized(6)).unwrap();
        assert_eq!(run.len(), 2);
    }

    #[test]
    fn explicit_flush_returns_partial_runs() {
        let mut b = Batcher::new(BatchPolicy::default());
        assert!(b.push(Sized(1)).is_none());
        assert_eq!(b.take().len(), 1);
        assert!(b.take().is_empty());
    }

    #[test]
    fn zero_count_policy_degenerates_to_immediate_flush() {
        let mut b = Batcher::new(BatchPolicy::by_count(0));
        assert_eq!(b.push(Sized(1)).unwrap().len(), 1);
    }
}
