//! A small length-prefixed wire format.
//!
//! Protocol messages in this workspace are Rust enums moved over in-process
//! channels, but their *encoded size* matters for the overhead ablations
//! (vector timestamps grow with `n`; pages grow with the page size). This
//! module gives every message a realistic byte representation: fixed-width
//! big-endian integers, length-prefixed sequences, and a one-byte
//! discriminant for enums.
//!
//! # Examples
//!
//! ```
//! use bytes::BytesMut;
//! use simnet::codec::Wire;
//!
//! let mut buf = BytesMut::new();
//! 42u64.encode(&mut buf);
//! vec![1u64, 2, 3].encode(&mut buf);
//! let mut bytes = buf.freeze();
//! assert_eq!(u64::decode(&mut bytes)?, 42);
//! assert_eq!(Vec::<u64>::decode(&mut bytes)?, vec![1, 2, 3]);
//! # Ok::<(), simnet::codec::CodecError>(())
//! ```

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Decoding failed: the buffer was truncated, held an invalid
/// discriminant, or declared a frame larger than the configured bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Fewer bytes remained than the type requires.
    Truncated,
    /// An enum discriminant byte was not a known variant.
    BadDiscriminant(u8),
    /// A frame header declared a body longer than the decoder's bound.
    ///
    /// A corrupt or adversarial length prefix must not translate into an
    /// attempt to buffer gigabytes; decoders with a bound reject the frame
    /// before allocating for it.
    Oversize {
        /// The declared body length.
        len: usize,
        /// The decoder's maximum accepted body length.
        max: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::BadDiscriminant(d) => write!(f, "unknown discriminant {d}"),
            CodecError::Oversize { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
        }
    }
}

impl Error for CodecError {}

/// Types with a wire representation.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes a value from the front of `buf`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the buffer is truncated or malformed.
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError>;

    /// The encoded size in bytes.
    ///
    /// The default *measures* by encoding into a scratch buffer — correct
    /// but costing a full encode (and its allocations) just to learn a
    /// length. Every hot type in this workspace (integers, ids, clocks,
    /// `Msg`, containers) overrides it with an exact arithmetic answer;
    /// override it for any payload whose size lands on a measurement path.
    fn encoded_len(&self) -> usize {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.len()
    }
}

macro_rules! impl_wire_int {
    ($t:ty, $put:ident, $get:ident, $len:expr) => {
        impl Wire for $t {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
                if buf.remaining() < $len {
                    return Err(CodecError::Truncated);
                }
                Ok(buf.$get())
            }
            fn encoded_len(&self) -> usize {
                $len
            }
        }
    };
}

impl_wire_int!(u8, put_u8, get_u8, 1);
impl_wire_int!(u32, put_u32, get_u32, 4);
impl_wire_int!(u64, put_u64, get_u64, 8);
impl_wire_int!(i64, put_i64, get_i64, 8);
impl_wire_int!(f64, put_f64, get_f64, 8);

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let len = u32::decode(buf)? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Wire::encoded_len).sum::<usize>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::encoded_len)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<T: Wire> Wire for std::sync::Arc<T> {
    // Wire-transparent: an `Arc<T>` encodes exactly as its `T`, so protocol
    // types can share values in memory without changing a byte on the wire.
    fn encode(&self, buf: &mut BytesMut) {
        (**self).encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(std::sync::Arc::new(T::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

impl Wire for memcore::NodeId {
    fn encode(&self, buf: &mut BytesMut) {
        (self.index() as u32).encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(memcore::NodeId::new(u32::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Wire for memcore::Location {
    fn encode(&self, buf: &mut BytesMut) {
        (self.index() as u32).encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(memcore::Location::new(u32::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Wire for memcore::PageId {
    fn encode(&self, buf: &mut BytesMut) {
        (self.index() as u32).encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(memcore::PageId::new(u32::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Wire for memcore::OwnerEpoch {
    fn encode(&self, buf: &mut BytesMut) {
        self.get().encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(memcore::OwnerEpoch::new(u32::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Wire for memcore::WriteId {
    fn encode(&self, buf: &mut BytesMut) {
        match self.writer() {
            Some(node) => {
                (node.index() as u32).encode(buf);
                self.seq().encode(buf);
            }
            None => {
                u32::MAX.encode(buf);
                self.seq().encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let writer = u32::decode(buf)?;
        let seq = u64::decode(buf)?;
        if writer == u32::MAX {
            Ok(memcore::WriteId::initial(memcore::Location::new(
                seq as u32,
            )))
        } else {
            Ok(memcore::WriteId::new(memcore::NodeId::new(writer), seq))
        }
    }
    fn encoded_len(&self) -> usize {
        12
    }
}

impl Wire for vclock::VectorClock {
    fn encode(&self, buf: &mut BytesMut) {
        // Same wire shape as Vec<u64> (u32 length prefix + components),
        // written straight from the borrowed slice — no clone.
        (self.len() as u32).encode(buf);
        for &c in self.iter() {
            c.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(vclock::VectorClock::from(Vec::<u64>::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        4 + 8 * self.len()
    }
}

impl Wire for memcore::Word {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            memcore::Word::Zero => buf.put_u8(0),
            memcore::Word::Int(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            memcore::Word::Bool(v) => {
                buf.put_u8(2);
                v.encode(buf);
            }
            memcore::Word::Float(v) => {
                buf.put_u8(3);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(memcore::Word::Zero),
            1 => Ok(memcore::Word::Int(i64::decode(buf)?)),
            2 => Ok(memcore::Word::Bool(bool::decode(buf)?)),
            3 => Ok(memcore::Word::Float(f64::decode(buf)?)),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            memcore::Word::Zero => 1,
            memcore::Word::Int(_) | memcore::Word::Float(_) => 1 + 8,
            memcore::Word::Bool(_) => 1 + 1,
        }
    }
}

/// Encodes a value into a fresh frame with a `u32` length prefix.
pub fn frame<T: Wire>(value: &T) -> Bytes {
    let mut body = BytesMut::new();
    value.encode(&mut body);
    let mut framed = BytesMut::with_capacity(4 + body.len());
    (body.len() as u32).encode(&mut framed);
    framed.extend_from_slice(&body);
    framed.freeze()
}

/// Decodes a length-prefixed frame produced by [`frame`].
///
/// # Errors
///
/// Returns [`CodecError`] if the frame is truncated or the body is
/// malformed.
pub fn deframe<T: Wire>(bytes: &mut Bytes) -> Result<T, CodecError> {
    let len = u32::decode(bytes)? as usize;
    if bytes.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let mut body = bytes.split_to(len);
    T::decode(&mut body)
}

/// Incremental reassembly of [`frame`]-format streams, as produced by a
/// byte-stream transport (TCP) that delivers frames in arbitrary chunks.
///
/// Feed raw bytes with [`extend`](FrameDecoder::extend) and drain complete
/// frame bodies with [`next_frame`](FrameDecoder::next_frame). The declared
/// body length of every frame is checked against a bound *before* any
/// buffer is reserved for it, so a corrupt or hostile length prefix cannot
/// drive allocation; decoding never panics on any input byte sequence.
///
/// # Examples
///
/// ```
/// use simnet::codec::{frame, FrameDecoder, Wire};
///
/// let framed = frame(&vec![1u64, 2, 3]);
/// let mut dec = FrameDecoder::new(1024);
/// // Bytes arrive split across arbitrary chunk boundaries…
/// dec.extend(&framed[..3]);
/// assert!(dec.next_frame()?.is_none()); // header incomplete
/// dec.extend(&framed[3..]);
/// // …and the frame body comes out whole.
/// let mut body = dec.next_frame()?.unwrap();
/// assert_eq!(Vec::<u64>::decode(&mut body)?, vec![1, 2, 3]);
/// # Ok::<(), simnet::codec::CodecError>(())
/// ```
#[derive(Debug)]
pub struct FrameDecoder {
    buf: BytesMut,
    max_frame: usize,
}

impl FrameDecoder {
    /// Creates a decoder rejecting frames with bodies longer than
    /// `max_frame` bytes.
    #[must_use]
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder {
            buf: BytesMut::new(),
            max_frame,
        }
    }

    /// Appends raw stream bytes to the reassembly buffer.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet drained as complete frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Takes the next complete frame body, or `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Oversize`] when a frame header declares a body
    /// longer than the bound. The stream is unrecoverable after an error
    /// (framing sync is lost); callers should drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, CodecError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > self.max_frame {
            return Err(CodecError::Oversize {
                len,
                max: self.max_frame,
            });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = BytesMut::new();
        value.encode(&mut buf);
        assert_eq!(buf.len(), value.encoded_len());
        let mut bytes = buf.freeze();
        assert_eq!(T::decode(&mut bytes).unwrap(), value);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(123456u32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(3.25f64);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn collections_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip((5u32, true));
    }

    #[test]
    fn truncated_buffers_error() {
        let mut bytes = Bytes::from_static(&[0, 0]);
        assert_eq!(u32::decode(&mut bytes), Err(CodecError::Truncated));
        let mut empty = Bytes::new();
        assert_eq!(bool::decode(&mut empty), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_discriminants_error() {
        let mut bytes = Bytes::from_static(&[7]);
        assert_eq!(
            bool::decode(&mut bytes),
            Err(CodecError::BadDiscriminant(7))
        );
        let mut bytes = Bytes::from_static(&[9, 0, 0, 0, 0]);
        assert_eq!(
            Option::<u32>::decode(&mut bytes),
            Err(CodecError::BadDiscriminant(9))
        );
    }

    #[test]
    fn frames_round_trip_and_detect_truncation() {
        let framed = frame(&vec![1u64, 2]);
        let mut bytes = framed.clone();
        assert_eq!(deframe::<Vec<u64>>(&mut bytes).unwrap(), vec![1, 2]);

        let mut cut = framed.slice(0..framed.len() - 1);
        assert_eq!(deframe::<Vec<u64>>(&mut cut), Err(CodecError::Truncated));
    }

    #[test]
    fn vector_clock_sized_payload_grows_with_n() {
        // A vector timestamp over n processes costs 4 + 8n bytes on the
        // wire — the quantity the overhead ablation reports.
        let vt_4 = vec![0u64; 4];
        let vt_16 = vec![0u64; 16];
        assert_eq!(vt_4.encoded_len(), 4 + 8 * 4);
        assert_eq!(vt_16.encoded_len(), 4 + 8 * 16);
    }

    #[test]
    fn domain_types_round_trip() {
        round_trip(memcore::NodeId::new(7));
        round_trip(memcore::Location::new(123));
        round_trip(memcore::PageId::new(9));
        round_trip(memcore::OwnerEpoch::new(3));
        round_trip(memcore::WriteId::new(memcore::NodeId::new(1), 44));
        round_trip(memcore::WriteId::initial(memcore::Location::new(3)));
        round_trip(vclock::VectorClock::from([0u64, 5, 2]));
        round_trip(memcore::Word::Zero);
        round_trip(memcore::Word::Int(-7));
        round_trip(memcore::Word::Bool(true));
        round_trip(memcore::Word::Float(2.5));
    }

    #[test]
    fn errors_display() {
        assert_eq!(CodecError::Truncated.to_string(), "buffer truncated");
        assert_eq!(
            CodecError::BadDiscriminant(3).to_string(),
            "unknown discriminant 3"
        );
        assert_eq!(
            CodecError::Oversize { len: 900, max: 64 }.to_string(),
            "frame of 900 bytes exceeds the 64-byte bound"
        );
    }

    /// Deterministic xorshift for the fuzz tests below — no external rng
    /// needed, and failures reproduce from the printed seed.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n.max(1) as u64) as usize
        }
    }

    #[test]
    fn frame_decoder_reassembles_across_arbitrary_chunking() {
        // Property: for random frame sequences split at random chunk
        // boundaries, the decoder yields exactly the original bodies.
        for seed in 1..=32u64 {
            let mut rng = XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let payloads: Vec<Vec<u64>> = (0..rng.below(8) + 1)
                .map(|_| (0..rng.below(64)).map(|_| rng.next()).collect())
                .collect();
            let mut stream = Vec::new();
            for p in &payloads {
                stream.extend_from_slice(&frame(p));
            }
            let mut dec = FrameDecoder::new(1 << 16);
            let mut out = Vec::new();
            let mut offset = 0;
            while offset < stream.len() {
                let take = (rng.below(13) + 1).min(stream.len() - offset);
                dec.extend(&stream[offset..offset + take]);
                offset += take;
                while let Some(mut body) = dec.next_frame().unwrap() {
                    out.push(Vec::<u64>::decode(&mut body).unwrap());
                }
            }
            assert_eq!(out, payloads, "seed {seed}");
            assert_eq!(dec.pending(), 0, "seed {seed}");
        }
    }

    #[test]
    fn frame_decoder_bounds_declared_lengths() {
        let mut dec = FrameDecoder::new(64);
        // Header declares a 1 GiB body: rejected before any body bytes
        // arrive (and before any allocation for it).
        dec.extend(&(1u32 << 30).to_be_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(CodecError::Oversize {
                len: 1 << 30,
                max: 64
            })
        );
    }

    #[test]
    fn frame_decoder_waits_on_truncated_frames() {
        let framed = frame(&vec![7u64; 4]);
        let mut dec = FrameDecoder::new(1 << 16);
        dec.extend(&framed[..framed.len() - 1]);
        // A truncated frame is indistinguishable from a slow sender: the
        // decoder reports "need more" rather than failing.
        assert_eq!(dec.next_frame(), Ok(None));
        assert_eq!(dec.pending(), framed.len() - 1);
        dec.extend(&framed[framed.len() - 1..]);
        assert!(dec.next_frame().unwrap().is_some());
    }

    #[test]
    fn decoding_random_garbage_never_panics() {
        // Fuzz the typed decoders with random byte soup: every outcome must
        // be a clean `Ok`/`Err`, never a panic or runaway allocation.
        for seed in 1..=64u64 {
            let mut rng = XorShift(seed.wrapping_mul(0xD134_2543_DE82_EF95));
            let bytes: Vec<u8> = (0..rng.below(48)).map(|_| rng.next() as u8).collect();
            let garbage = Bytes::from(bytes);
            let _ = Vec::<u64>::decode(&mut garbage.clone());
            let _ = Option::<memcore::Word>::decode(&mut garbage.clone());
            let _ = memcore::Word::decode(&mut garbage.clone());
            let _ = vclock::VectorClock::decode(&mut garbage.clone());
            let _ = memcore::WriteId::decode(&mut garbage.clone());
            let _ = deframe::<Vec<u64>>(&mut garbage.clone());
            let mut dec = FrameDecoder::new(1 << 10);
            dec.extend(&garbage);
            // Drain until the decoder wants more bytes or rejects the
            // stream; either way it must return, not panic.
            while let Ok(Some(_)) = dec.next_frame() {}
        }
    }
}
