//! Message envelopes and the tagging trait used for instrumentation.

use std::fmt;

use memcore::NodeId;

/// Classifies protocol messages for the statistics counters.
///
/// The paper's evaluation is a message-counting argument, so every payload
/// type names its kind (`"READ"`, `"R_REPLY"`, `"WRITE"`, `"W_REPLY"`,
/// `"INVAL"`, …) and the transports count sends per (node, kind).
pub trait Tagged {
    /// A short static name for this message's kind.
    fn kind(&self) -> &'static str;

    /// Encoded size in bytes, if the payload supports wire encoding.
    ///
    /// Transports add this to the per-node byte counters when present;
    /// returning `None` (the default) skips byte accounting.
    fn wire_size(&self) -> Option<usize> {
        None
    }

    /// Causal-metadata bytes this message carries on the wire: the encoded
    /// size of its vector timestamps (recursively through batches and
    /// envelopes), excluding values, ids and headers. `0` (the default) for
    /// payloads without timestamps.
    ///
    /// Transports accumulate this into a dedicated counter so the scale
    /// benches can report `metadata_bytes_per_op` — the quantity the
    /// partial-replication layer exists to bound.
    fn metadata_size(&self) -> usize {
        0
    }

    /// For a batch envelope, the `(kind, wire_size)` of every logical
    /// message it carries; `None` (the default) for ordinary payloads.
    ///
    /// Transports use this to keep the *logical* per-kind counters
    /// batching-invariant: a batch records each constituent under its own
    /// kind and counts as a single send only in the physical-envelope
    /// counters (under [`memcore::kinds::BATCH`]). Wrapper payloads (e.g. a
    /// session layer) should forward the inner payload's answer.
    fn batch_parts(&self) -> Option<Vec<(&'static str, Option<usize>)>> {
        None
    }
}

/// A message in flight: payload plus source and destination.
///
/// # Examples
///
/// ```
/// use memcore::NodeId;
/// use simnet::Envelope;
///
/// let env = Envelope::new(NodeId::new(0), NodeId::new(1), "ping");
/// assert_eq!(env.src, NodeId::new(0));
/// assert_eq!(env.payload, "ping");
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The protocol message.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Wraps `payload` for transmission from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId, payload: M) -> Self {
        Envelope { src, dst, payload }
    }
}

impl<M: fmt::Debug> fmt::Debug for Envelope<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}: {:?}", self.src, self.dst, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_debug_shows_route() {
        let env = Envelope::new(NodeId::new(0), NodeId::new(2), 7u32);
        assert_eq!(format!("{env:?}"), "P0→P2: 7");
    }

    #[test]
    fn default_wire_size_is_none() {
        struct T;
        impl Tagged for T {
            fn kind(&self) -> &'static str {
                "T"
            }
        }
        assert_eq!(T.wire_size(), None);
        assert_eq!(T.kind(), "T");
    }
}
