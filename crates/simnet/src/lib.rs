//! Reliable, ordered message passing between processors — the network
//! substrate the ICDCS'91 owner protocol assumes.
//!
//! The paper's implementation section begins: *"we show how to implement a
//! causal DSM using only local memory accesses and reliable, ordered message
//! passing between any two processors."* This crate provides exactly that
//! substrate, twice over:
//!
//! * [`Network`] — a thread transport built on crossbeam channels: one
//!   mailbox per node, per-link FIFO and reliable delivery, with every send
//!   counted into [`memcore::NetStats`] (messages and, where the payload
//!   implements [`codec::Wire`], bytes). This backs the threaded engines
//!   used by examples and throughput benches.
//! * the [`latency`] module — latency models consumed by the deterministic
//!   simulator (`dsm-sim`), which replays the same protocol state machines
//!   under controlled delays while preserving per-link FIFO order.
//!
//! The [`codec`] module provides a small length-prefixed wire format (on
//! `bytes`) so protocol messages have a realistic encoded size; byte counts
//! feed the overhead ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod codec;
mod envelope;
pub mod fault;
pub mod latency;
mod router;

pub use batch::{BatchPolicy, Batcher};
pub use envelope::{Envelope, Tagged};
pub use fault::{FaultHook, NoFaults, SendFate};
pub use router::{Mailbox, Network, RemoteLink, SendError};
