//! Property tests for the wire codec: round trips, framing, and graceful
//! failure on corrupted input.

use bytes::{Bytes, BytesMut};
use memcore::{Location, NodeId, PageId, Word, WriteId};
use proptest::prelude::*;
use simnet::codec::{deframe, frame, CodecError, Wire};
use vclock::VectorClock;

fn word() -> impl Strategy<Value = Word> {
    prop_oneof![
        Just(Word::Zero),
        any::<i64>().prop_map(Word::Int),
        any::<bool>().prop_map(Word::Bool),
        // Finite floats only: NaN breaks PartialEq round-trip comparison.
        (-1e12f64..1e12).prop_map(Word::Float),
    ]
}

fn write_id() -> impl Strategy<Value = WriteId> {
    prop_oneof![
        (0u32..1000, any::<u64>()).prop_map(|(w, s)| WriteId::new(NodeId::new(w), s)),
        (0u32..1000).prop_map(|l| WriteId::initial(Location::new(l))),
    ]
}

fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: &T) {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    assert_eq!(buf.len(), value.encoded_len(), "encoded_len disagrees");
    let mut bytes = buf.freeze();
    let decoded = T::decode(&mut bytes).expect("decode");
    assert_eq!(&decoded, value);
    assert!(bytes.is_empty(), "trailing bytes after decode");
}

proptest! {
    #[test]
    fn words_round_trip(w in word()) {
        round_trip(&w);
    }

    #[test]
    fn write_ids_round_trip(wid in write_id()) {
        round_trip(&wid);
    }

    #[test]
    fn vector_clocks_round_trip(components in proptest::collection::vec(any::<u64>(), 0..32)) {
        round_trip(&VectorClock::from(components));
    }

    #[test]
    fn nested_structures_round_trip(
        pairs in proptest::collection::vec((any::<u32>(), any::<bool>()), 0..20),
        opt in proptest::option::of(any::<u64>()),
    ) {
        round_trip(&pairs);
        round_trip(&opt);
    }

    #[test]
    fn ids_round_trip(node in 0u32..10_000, l in any::<u32>(), page in any::<u32>()) {
        round_trip(&NodeId::new(node));
        round_trip(&Location::new(l));
        round_trip(&PageId::new(page));
    }

    #[test]
    fn frames_round_trip(components in proptest::collection::vec(any::<u64>(), 0..16)) {
        let vt = VectorClock::from(components);
        let framed = frame(&vt);
        let mut bytes = framed.clone();
        prop_assert_eq!(deframe::<VectorClock>(&mut bytes).unwrap(), vt);
        prop_assert!(bytes.is_empty());
    }

    /// Truncating a frame anywhere never panics — it errors.
    #[test]
    fn truncated_frames_error_not_panic(
        components in proptest::collection::vec(any::<u64>(), 1..8),
        cut_fraction in 0.0f64..1.0,
    ) {
        let vt = VectorClock::from(components);
        let framed = frame(&vt);
        let cut = ((framed.len() as f64) * cut_fraction) as usize;
        if cut < framed.len() {
            let mut truncated = framed.slice(0..cut);
            let result = deframe::<VectorClock>(&mut truncated);
            prop_assert!(result.is_err());
        }
    }

    /// Arbitrary garbage decodes to an error or a value, never a panic.
    #[test]
    fn garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = Bytes::from(garbage);
        let _ = Word::decode(&mut bytes);
        let _: Result<VectorClock, CodecError> = {
            let mut b = bytes.clone();
            VectorClock::decode(&mut b)
        };
        let _ = deframe::<Vec<u64>>(&mut bytes);
    }
}
