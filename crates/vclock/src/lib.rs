//! Vector timestamps for causal distributed shared memory.
//!
//! The ICDCS'91 owner protocol captures the evolving partial order of events
//! with one vector timestamp per processor (citing Mattern). This crate
//! provides exactly the three operations the protocol needs — `increment`,
//! `update` (component-wise max) and comparison — plus the derived notions
//! the paper uses throughout: *dominance* (`VT < VT'`) and *concurrency*
//! (neither dominates).
//!
//! # Examples
//!
//! ```
//! use vclock::VectorClock;
//!
//! let mut a = VectorClock::new(3);
//! let mut b = VectorClock::new(3);
//! a.increment(0); // a = [1, 0, 0]
//! b.increment(1); // b = [0, 1, 0]
//! assert!(a.concurrent(&b));
//!
//! b.update(&a);   // b = [1, 1, 0]
//! assert!(a < b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A vector timestamp over a fixed number of processes.
///
/// Comparison follows the paper: `VT < VT'` iff every component of `VT` is
/// `<=` the corresponding component of `VT'` and at least one is strictly
/// less. Two clocks where neither relation holds (and which are not equal)
/// are *concurrent*; [`PartialOrd::partial_cmp`] returns `None` for them.
///
/// # Examples
///
/// ```
/// use vclock::VectorClock;
///
/// let mut vt = VectorClock::new(2);
/// vt.increment(0);
/// assert_eq!(vt.get(0), 1);
/// assert_eq!(vt.get(1), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock {
    components: Vec<u64>,
}

impl VectorClock {
    /// Creates the zero clock for a system of `n` processes.
    ///
    /// The zero clock is the writestamp of the paper's distinguished initial
    /// writes, causally preceding every real operation.
    ///
    /// # Examples
    ///
    /// ```
    /// let vt = vclock::VectorClock::new(4);
    /// assert!(vt.is_zero());
    /// ```
    #[must_use]
    pub fn new(n: usize) -> Self {
        VectorClock {
            components: vec![0; n],
        }
    }

    /// Creates a clock from explicit components.
    ///
    /// # Examples
    ///
    /// ```
    /// let vt = vclock::VectorClock::from_components([1, 0, 2]);
    /// assert_eq!(vt.get(2), 2);
    /// ```
    #[must_use]
    pub fn from_components<I: IntoIterator<Item = u64>>(components: I) -> Self {
        VectorClock {
            components: components.into_iter().collect(),
        }
    }

    /// Number of processes this clock covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if the clock covers zero processes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Returns `true` if every component is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.components.iter().all(|&c| c == 0)
    }

    /// The `i`th component.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        self.components[i]
    }

    /// Adds one to the `i`th component — the paper's
    /// `increment(VT_i)` performed by processor `P_i` on every write attempt.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn increment(&mut self, i: usize) {
        self.components[i] += 1;
    }

    /// Returns a copy with the `i`th component incremented.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn incremented(&self, i: usize) -> Self {
        let mut vt = self.clone();
        vt.increment(i);
        vt
    }

    /// Component-wise maximum in place — the paper's `update(VT, VT')`.
    ///
    /// # Panics
    ///
    /// Panics if the two clocks cover different numbers of processes.
    pub fn update(&mut self, other: &VectorClock) {
        assert_eq!(
            self.components.len(),
            other.components.len(),
            "vector clocks cover different process counts"
        );
        for (a, b) in self.components.iter_mut().zip(&other.components) {
            *a = (*a).max(*b);
        }
    }

    /// Returns the component-wise maximum of two clocks.
    ///
    /// # Panics
    ///
    /// Panics if the two clocks cover different numbers of processes.
    #[must_use]
    pub fn updated(&self, other: &VectorClock) -> Self {
        let mut vt = self.clone();
        vt.update(other);
        vt
    }

    /// `true` iff neither clock dominates the other and they differ:
    /// the writes they stamp are concurrent.
    ///
    /// # Examples
    ///
    /// ```
    /// use vclock::VectorClock;
    /// let a = VectorClock::from_components([1, 0]);
    /// let b = VectorClock::from_components([0, 1]);
    /// assert!(a.concurrent(&b));
    /// assert!(!a.concurrent(&a));
    /// ```
    #[must_use]
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        self.partial_cmp(other).is_none()
    }

    /// `true` iff `self < other` in the paper's dominance order.
    ///
    /// Equivalent to `self.partial_cmp(other) == Some(Ordering::Less)` but
    /// reads like the pseudocode's `M_i[y].VT < VT'`.
    #[must_use]
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        matches!(self.partial_cmp(other), Some(Ordering::Less))
    }

    /// Iterates over the components in process order.
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.components.iter()
    }

    /// Borrows the raw components.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.components
    }

    /// Sum of all components; a cheap scalar proxy for "how much causal
    /// history this stamp reflects" (used by diagnostics only).
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.components.iter().sum()
    }
}

impl PartialOrd for VectorClock {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.components.len() != other.components.len() {
            return None;
        }
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.components.iter().zip(&other.components) {
            match a.cmp(b) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
            if less && greater {
                return None;
            }
        }
        match (less, greater) {
            (false, false) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (true, true) => None,
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VT{:?}", self.components)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<u64>> for VectorClock {
    fn from(components: Vec<u64>) -> Self {
        VectorClock { components }
    }
}

impl From<VectorClock> for Vec<u64> {
    fn from(vt: VectorClock) -> Self {
        vt.components
    }
}

impl<const N: usize> From<[u64; N]> for VectorClock {
    fn from(components: [u64; N]) -> Self {
        VectorClock {
            components: components.to_vec(),
        }
    }
}

impl FromIterator<u64> for VectorClock {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        VectorClock::from_components(iter)
    }
}

impl<'a> IntoIterator for &'a VectorClock {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.components.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock_is_zero() {
        let vt = VectorClock::new(3);
        assert!(vt.is_zero());
        assert_eq!(vt.len(), 3);
        assert!(!vt.is_empty());
        assert!(VectorClock::new(0).is_empty());
    }

    #[test]
    fn increment_bumps_single_component() {
        let mut vt = VectorClock::new(3);
        vt.increment(1);
        assert_eq!(vt.as_slice(), &[0, 1, 0]);
        vt.increment(1);
        assert_eq!(vt.as_slice(), &[0, 2, 0]);
    }

    #[test]
    fn incremented_leaves_original_untouched() {
        let vt = VectorClock::new(2);
        let vt2 = vt.incremented(0);
        assert!(vt.is_zero());
        assert_eq!(vt2.as_slice(), &[1, 0]);
    }

    #[test]
    fn update_takes_componentwise_max() {
        let mut a = VectorClock::from_components([3, 0, 5]);
        let b = VectorClock::from_components([1, 4, 5]);
        a.update(&b);
        assert_eq!(a.as_slice(), &[3, 4, 5]);
    }

    #[test]
    fn comparison_matches_paper_definition() {
        let a = VectorClock::from_components([1, 2]);
        let b = VectorClock::from_components([1, 3]);
        assert!(a < b);
        assert!(b > a);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        assert_eq!(a.partial_cmp(&a), Some(Ordering::Equal));
    }

    #[test]
    fn concurrent_clocks_are_unordered() {
        let a = VectorClock::from_components([2, 0]);
        let b = VectorClock::from_components([0, 2]);
        assert!(a.concurrent(&b));
        assert!(b.concurrent(&a));
        assert_eq!(a.partial_cmp(&b), None);
        assert!(!a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    #[test]
    fn equal_clocks_are_not_concurrent() {
        let a = VectorClock::from_components([1, 1]);
        assert!(!a.concurrent(&a.clone()));
    }

    #[test]
    fn clocks_of_different_lengths_do_not_compare() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(3);
        assert_eq!(a.partial_cmp(&b), None);
    }

    #[test]
    #[should_panic(expected = "different process counts")]
    fn update_panics_on_length_mismatch() {
        let mut a = VectorClock::new(2);
        a.update(&VectorClock::new(3));
    }

    #[test]
    fn display_is_compact() {
        let a = VectorClock::from_components([1, 0, 2]);
        assert_eq!(a.to_string(), "[1,0,2]");
        assert_eq!(format!("{a:?}"), "VT[1, 0, 2]");
    }

    #[test]
    fn conversions_round_trip() {
        let v = vec![1u64, 2, 3];
        let vt = VectorClock::from(v.clone());
        let back: Vec<u64> = vt.clone().into();
        assert_eq!(v, back);
        let collected: VectorClock = v.iter().copied().collect();
        assert_eq!(collected, vt);
        assert_eq!(VectorClock::from([1u64, 2, 3]), vt);
    }

    #[test]
    fn weight_sums_components() {
        assert_eq!(VectorClock::from_components([1, 0, 2]).weight(), 3);
    }

    #[test]
    fn figure4_writestamp_flow() {
        // A non-local write per Figure 4: writer increments, owner updates,
        // writer updates with the owner's reply. The resulting stamp must
        // dominate both parties' prior stamps.
        let mut writer = VectorClock::from_components([2, 0, 1]);
        let mut owner = VectorClock::from_components([0, 3, 1]);
        writer.increment(0); // w_i's increment
        let sent = writer.clone();
        owner.update(&sent); // owner's update on WRITE receipt
        let reply = owner.clone();
        writer.update(&reply); // writer's second update
        assert!(sent <= writer);
        assert!(reply <= writer || reply == writer);
        assert_eq!(writer.as_slice(), &[3, 3, 1]);
    }
}
