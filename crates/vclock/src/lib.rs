//! Vector timestamps for causal distributed shared memory.
//!
//! The ICDCS'91 owner protocol captures the evolving partial order of events
//! with one vector timestamp per processor (citing Mattern). This crate
//! provides exactly the three operations the protocol needs — `increment`,
//! `update` (component-wise max) and comparison — plus the derived notions
//! the paper uses throughout: *dominance* (`VT < VT'`) and *concurrency*
//! (neither dominates).
//!
//! # Representation
//!
//! Clocks are the protocol's most-copied data structure: one rides in every
//! message, one stamps every cached page. A clock covering up to
//! [`INLINE_PROCESSES`] processes is stored entirely inline (no heap
//! allocation — cloning is a `memcpy`); larger systems spill to a heap
//! vector transparently. Every operation goes through the same slice-based
//! loops regardless of representation, and [`VectorClockRef`] gives a
//! borrowed view for comparisons against raw component slices without
//! constructing a clock at all.
//!
//! # Examples
//!
//! ```
//! use vclock::VectorClock;
//!
//! let mut a = VectorClock::new(3);
//! let mut b = VectorClock::new(3);
//! a.increment(0); // a = [1, 0, 0]
//! b.increment(1); // b = [0, 1, 0]
//! assert!(a.concurrent(&b));
//!
//! b.update(&a);   // b = [1, 1, 0]
//! assert!(a < b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};

/// The largest process count stored inline (stack-allocated); clocks for
/// bigger systems spill to the heap.
///
/// Sixteen covers every cluster size in the paper's evaluation (and every
/// workload in this repository) with a 136-byte clock — small enough to
/// copy freely, large enough that the heap path only runs in the spill
/// tests.
pub const INLINE_PROCESSES: usize = 16;

/// Storage for the components: inline array up to [`INLINE_PROCESSES`],
/// heap vector above. Invariant: `Heap` is only used for
/// `len > INLINE_PROCESSES`, so equal component sequences always share a
/// representation (derived comparisons would be wrong otherwise; ours go
/// through slices anyway).
#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        buf: [u64; INLINE_PROCESSES],
    },
    Heap(Vec<u64>),
}

/// A vector timestamp over a fixed number of processes.
///
/// Comparison follows the paper: `VT < VT'` iff every component of `VT` is
/// `<=` the corresponding component of `VT'` and at least one is strictly
/// less. Two clocks where neither relation holds (and which are not equal)
/// are *concurrent*; [`PartialOrd::partial_cmp`] returns `None` for them.
///
/// # Examples
///
/// ```
/// use vclock::VectorClock;
///
/// let mut vt = VectorClock::new(2);
/// vt.increment(0);
/// assert_eq!(vt.get(0), 1);
/// assert_eq!(vt.get(1), 0);
/// ```
#[derive(Clone)]
pub struct VectorClock {
    repr: Repr,
}

/// Compares two component slices in the paper's dominance order.
///
/// This is the single comparison loop behind [`VectorClock`] and
/// [`VectorClockRef`]: index-free, no bounds checks after the length
/// test, early exit on the first proof of concurrency.
fn compare_components(a: &[u64], b: &[u64]) -> Option<Ordering> {
    if a.len() != b.len() {
        return None;
    }
    let mut less = false;
    let mut greater = false;
    for (x, y) in a.iter().zip(b) {
        match x.cmp(y) {
            Ordering::Less => less = true,
            Ordering::Greater => greater = true,
            Ordering::Equal => {}
        }
        if less && greater {
            return None;
        }
    }
    match (less, greater) {
        (false, false) => Some(Ordering::Equal),
        (true, false) => Some(Ordering::Less),
        (false, true) => Some(Ordering::Greater),
        (true, true) => None,
    }
}

impl VectorClock {
    /// Creates the zero clock for a system of `n` processes.
    ///
    /// The zero clock is the writestamp of the paper's distinguished initial
    /// writes, causally preceding every real operation.
    ///
    /// # Examples
    ///
    /// ```
    /// let vt = vclock::VectorClock::new(4);
    /// assert!(vt.is_zero());
    /// ```
    #[must_use]
    pub fn new(n: usize) -> Self {
        if n <= INLINE_PROCESSES {
            VectorClock {
                repr: Repr::Inline {
                    len: n as u8,
                    buf: [0; INLINE_PROCESSES],
                },
            }
        } else {
            VectorClock {
                repr: Repr::Heap(vec![0; n]),
            }
        }
    }

    /// Creates a clock from explicit components.
    ///
    /// # Examples
    ///
    /// ```
    /// let vt = vclock::VectorClock::from_components([1, 0, 2]);
    /// assert_eq!(vt.get(2), 2);
    /// ```
    #[must_use]
    pub fn from_components<I: IntoIterator<Item = u64>>(components: I) -> Self {
        let mut buf = [0u64; INLINE_PROCESSES];
        let mut len = 0usize;
        let mut iter = components.into_iter();
        for c in iter.by_ref() {
            if len == INLINE_PROCESSES {
                // Spill: move what we have to the heap and drain the rest.
                let mut vec = Vec::with_capacity(INLINE_PROCESSES * 2);
                vec.extend_from_slice(&buf);
                vec.push(c);
                vec.extend(iter);
                return VectorClock {
                    repr: Repr::Heap(vec),
                };
            }
            buf[len] = c;
            len += 1;
        }
        VectorClock {
            repr: Repr::Inline {
                len: len as u8,
                buf,
            },
        }
    }

    /// Creates a clock by copying a component slice.
    #[must_use]
    pub fn from_slice(components: &[u64]) -> Self {
        if components.len() <= INLINE_PROCESSES {
            let mut buf = [0u64; INLINE_PROCESSES];
            buf[..components.len()].copy_from_slice(components);
            VectorClock {
                repr: Repr::Inline {
                    len: components.len() as u8,
                    buf,
                },
            }
        } else {
            VectorClock {
                repr: Repr::Heap(components.to_vec()),
            }
        }
    }

    /// Number of processes this clock covers.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Returns `true` if the clock covers zero processes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if the components live inline (no heap allocation).
    #[must_use]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Returns `true` if every component is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.as_slice().iter().all(|&c| c == 0)
    }

    /// The `i`th component.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        self.as_slice()[i]
    }

    /// Adds one to the `i`th component — the paper's
    /// `increment(VT_i)` performed by processor `P_i` on every write attempt.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn increment(&mut self, i: usize) {
        self.as_mut_slice()[i] += 1;
    }

    /// Returns a copy with the `i`th component incremented.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn incremented(&self, i: usize) -> Self {
        let mut vt = self.clone();
        vt.increment(i);
        vt
    }

    /// Component-wise maximum in place — the paper's `update(VT, VT')`.
    ///
    /// # Panics
    ///
    /// Panics if the two clocks cover different numbers of processes.
    pub fn update(&mut self, other: &VectorClock) {
        self.update_slice(other.as_slice());
    }

    /// Component-wise maximum against a raw component slice, the zero-copy
    /// form used when the other stamp arrives over the wire.
    ///
    /// # Panics
    ///
    /// Panics if `other` covers a different number of processes.
    pub fn update_slice(&mut self, other: &[u64]) {
        let mine = self.as_mut_slice();
        assert_eq!(
            mine.len(),
            other.len(),
            "vector clocks cover different process counts"
        );
        for (a, b) in mine.iter_mut().zip(other) {
            *a = (*a).max(*b);
        }
    }

    /// Returns the component-wise maximum of two clocks.
    ///
    /// # Panics
    ///
    /// Panics if the two clocks cover different numbers of processes.
    #[must_use]
    pub fn updated(&self, other: &VectorClock) -> Self {
        let mut vt = self.clone();
        vt.update(other);
        vt
    }

    /// `true` iff neither clock dominates the other and they differ:
    /// the writes they stamp are concurrent.
    ///
    /// # Examples
    ///
    /// ```
    /// use vclock::VectorClock;
    /// let a = VectorClock::from_components([1, 0]);
    /// let b = VectorClock::from_components([0, 1]);
    /// assert!(a.concurrent(&b));
    /// assert!(!a.concurrent(&a));
    /// ```
    #[must_use]
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        compare_components(self.as_slice(), other.as_slice()).is_none()
    }

    /// `true` iff `self < other` in the paper's dominance order.
    ///
    /// Equivalent to `self.partial_cmp(other) == Some(Ordering::Less)` but
    /// reads like the pseudocode's `M_i[y].VT < VT'`.
    #[must_use]
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        matches!(
            compare_components(self.as_slice(), other.as_slice()),
            Some(Ordering::Less)
        )
    }

    /// Iterates over the components in process order.
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.as_slice().iter()
    }

    /// Borrows the raw components.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Borrows the raw components mutably.
    fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// A borrowed view of this clock for allocation-free comparison.
    #[must_use]
    pub fn as_ref(&self) -> VectorClockRef<'_> {
        VectorClockRef {
            components: self.as_slice(),
        }
    }

    /// Sum of all components; a cheap scalar proxy for "how much causal
    /// history this stamp reflects" (used by diagnostics only).
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.as_slice().iter().sum()
    }

    /// Iterates over the nonzero components as `(process, count)` pairs in
    /// process order — the sparse projection of this clock.
    ///
    /// In an interest-scoped deployment a process's clock is nonzero only
    /// for processes in the interest closure of the pages it has touched,
    /// so this iterator is the share-graph-sized view of an O(n) stamp.
    pub fn nonzero(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
    }

    /// Number of nonzero components.
    #[must_use]
    pub fn nonzero_count(&self) -> usize {
        self.as_slice().iter().filter(|&&c| c != 0).count()
    }

    /// Reconstructs a dense clock of `n` processes from sparse
    /// `(process, count)` entries; unlisted components are zero.
    ///
    /// # Panics
    ///
    /// Panics if an entry names a process `>= n`.
    #[must_use]
    pub fn from_sparse_entries<I: IntoIterator<Item = (u32, u64)>>(n: usize, entries: I) -> Self {
        let mut vt = VectorClock::new(n);
        let slots = vt.as_mut_slice();
        for (i, c) in entries {
            slots[i as usize] = c;
        }
        vt
    }
}

impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for VectorClock {}

impl Hash for VectorClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the component slice (same prefix as `[u64]`'s impl), so
        // inline and spilled clocks with equal components hash equally.
        self.as_slice().hash(state);
    }
}

impl PartialOrd for VectorClock {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        compare_components(self.as_slice(), other.as_slice())
    }
}

// The wire and JSON shape of a clock is a plain sequence of components,
// exactly as the former `Vec<u64>`-backed representation serialized.
impl Serialize for VectorClock {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|&c| Value::U64(c)).collect())
    }
}

impl Deserialize for VectorClock {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|item| {
                    item.as_u64()
                        .ok_or_else(|| DeError::msg("expected unsigned clock component"))
                })
                .collect(),
            _ => Err(DeError::msg("expected clock component sequence")),
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VT{:?}", self.as_slice())
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_ref().fmt(f)
    }
}

impl From<Vec<u64>> for VectorClock {
    fn from(components: Vec<u64>) -> Self {
        if components.len() > INLINE_PROCESSES {
            VectorClock {
                repr: Repr::Heap(components),
            }
        } else {
            VectorClock::from_slice(&components)
        }
    }
}

impl From<VectorClock> for Vec<u64> {
    fn from(vt: VectorClock) -> Self {
        match vt.repr {
            Repr::Inline { len, buf } => buf[..len as usize].to_vec(),
            Repr::Heap(v) => v,
        }
    }
}

impl<const N: usize> From<[u64; N]> for VectorClock {
    fn from(components: [u64; N]) -> Self {
        VectorClock::from_slice(&components)
    }
}

impl FromIterator<u64> for VectorClock {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        VectorClock::from_components(iter)
    }
}

impl<'a> IntoIterator for &'a VectorClock {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A borrowed vector timestamp: the comparison and formatting operations
/// of [`VectorClock`] over a component slice that stays where it is —
/// a received message buffer, a cached page's stamp — with no clock
/// construction or allocation.
///
/// # Examples
///
/// ```
/// use vclock::{VectorClock, VectorClockRef};
///
/// let owned = VectorClock::from_components([1, 2, 0]);
/// let wire: &[u64] = &[2, 2, 0]; // decoded in place from a message
/// let incoming = VectorClockRef::from(wire);
/// assert!(owned.as_ref() < incoming);
/// assert_eq!(incoming.to_owned().as_slice(), wire);
/// ```
#[derive(Clone, Copy)]
pub struct VectorClockRef<'a> {
    components: &'a [u64],
}

impl<'a> VectorClockRef<'a> {
    /// Number of processes the viewed clock covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if the viewed clock covers zero processes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Returns `true` if every component is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.components.iter().all(|&c| c == 0)
    }

    /// The `i`th component.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        self.components[i]
    }

    /// Borrows the raw components.
    #[must_use]
    pub fn as_slice(&self) -> &'a [u64] {
        self.components
    }

    /// `true` iff neither viewed clock dominates the other and they differ.
    #[must_use]
    pub fn concurrent(&self, other: &VectorClockRef<'_>) -> bool {
        compare_components(self.components, other.components).is_none()
    }

    /// `true` iff `self < other` in the paper's dominance order.
    #[must_use]
    pub fn dominated_by(&self, other: &VectorClockRef<'_>) -> bool {
        matches!(
            compare_components(self.components, other.components),
            Some(Ordering::Less)
        )
    }

    /// Copies the viewed components into an owned clock.
    #[must_use]
    pub fn to_owned(&self) -> VectorClock {
        VectorClock::from_slice(self.components)
    }

    /// Sum of all components.
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.components.iter().sum()
    }
}

impl<'a> From<&'a [u64]> for VectorClockRef<'a> {
    fn from(components: &'a [u64]) -> Self {
        VectorClockRef { components }
    }
}

impl<'a> From<&'a VectorClock> for VectorClockRef<'a> {
    fn from(vt: &'a VectorClock) -> Self {
        vt.as_ref()
    }
}

impl PartialEq for VectorClockRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.components == other.components
    }
}

impl Eq for VectorClockRef<'_> {}

impl PartialOrd for VectorClockRef<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        compare_components(self.components, other.components)
    }
}

impl PartialEq<VectorClock> for VectorClockRef<'_> {
    fn eq(&self, other: &VectorClock) -> bool {
        self.components == other.as_slice()
    }
}

impl PartialEq<VectorClockRef<'_>> for VectorClock {
    fn eq(&self, other: &VectorClockRef<'_>) -> bool {
        self.as_slice() == other.components
    }
}

impl fmt::Debug for VectorClockRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VT{:?}", self.components)
    }
}

impl fmt::Display for VectorClockRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Compares two sorted sparse entry lists in the paper's dominance order
/// by a single merge walk; an entry missing on one side is a zero
/// component there. Mirrors [`compare_components`] exactly (the property
/// suite in `tests/sparse_property.rs` pins the agreement), including the
/// rule that clocks over different process counts do not compare.
fn compare_sparse(n_a: u32, a: &[(u32, u64)], n_b: u32, b: &[(u32, u64)]) -> Option<Ordering> {
    if n_a != n_b {
        return None;
    }
    let (mut less, mut greater) = (false, false);
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let (x, y) = match (a.get(i), b.get(j)) {
            (Some(&(ia, ca)), Some(&(ib, cb))) => match ia.cmp(&ib) {
                Ordering::Equal => {
                    i += 1;
                    j += 1;
                    (ca, cb)
                }
                Ordering::Less => {
                    i += 1;
                    (ca, 0)
                }
                Ordering::Greater => {
                    j += 1;
                    (0, cb)
                }
            },
            (Some(&(_, ca)), None) => {
                i += 1;
                (ca, 0)
            }
            (None, Some(&(_, cb))) => {
                j += 1;
                (0, cb)
            }
            (None, None) => unreachable!(),
        };
        match x.cmp(&y) {
            Ordering::Less => less = true,
            Ordering::Greater => greater = true,
            Ordering::Equal => {}
        }
        if less && greater {
            return None;
        }
    }
    match (less, greater) {
        (false, false) => Some(Ordering::Equal),
        (true, false) => Some(Ordering::Less),
        (false, true) => Some(Ordering::Greater),
        (true, true) => None,
    }
}

/// An interest-scoped sparse vector timestamp: the nonzero components of a
/// clock over `n` processes, stored as sorted `(process, count)` pairs.
///
/// This is the model object behind the sparse wire encoding: a clock whose
/// nonzero support is bounded by the share graph costs O(interest) to ship
/// rather than O(n), while remaining losslessly interconvertible with the
/// dense [`VectorClock`]. Dense inline storage stays the fast path for
/// small systems; this representation exists for the 100+-node regime
/// where most components of any given stamp are still zero.
///
/// # Examples
///
/// ```
/// use vclock::{SparseClock, VectorClock};
///
/// let dense = VectorClock::from_components([0, 3, 0, 1]);
/// let sparse = SparseClock::from_dense(&dense);
/// assert_eq!(sparse.nonzero_count(), 2);
/// assert_eq!(sparse.get(1), 3);
/// assert_eq!(sparse.to_dense(), dense);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SparseClock {
    /// Total number of processes the clock covers (the dense length).
    n: u32,
    /// Sorted by process index; every count is nonzero.
    entries: Vec<(u32, u64)>,
}

impl SparseClock {
    /// The zero clock for a system of `n` processes (no entries at all).
    #[must_use]
    pub fn new(n: usize) -> Self {
        SparseClock {
            n: n as u32,
            entries: Vec::new(),
        }
    }

    /// Projects a dense clock onto its nonzero support.
    #[must_use]
    pub fn from_dense(vt: &VectorClock) -> Self {
        SparseClock {
            n: vt.len() as u32,
            entries: vt.nonzero().collect(),
        }
    }

    /// Builds a sparse clock from raw entries.
    ///
    /// Entries need not be sorted; zero counts are dropped and duplicate
    /// process indices keep their maximum (so any entry list denotes a
    /// well-formed clock).
    ///
    /// # Panics
    ///
    /// Panics if an entry names a process `>= n`.
    #[must_use]
    pub fn from_entries<I: IntoIterator<Item = (u32, u64)>>(n: usize, entries: I) -> Self {
        let mut list: Vec<(u32, u64)> = entries.into_iter().filter(|&(_, c)| c != 0).collect();
        list.sort_unstable_by_key(|&(i, _)| i);
        list.dedup_by(|next, kept| {
            if next.0 == kept.0 {
                kept.1 = kept.1.max(next.1);
                true
            } else {
                false
            }
        });
        if let Some(&(last, _)) = list.last() {
            assert!((last as usize) < n, "sparse entry names process {last} >= n={n}");
        }
        SparseClock {
            n: n as u32,
            entries: list,
        }
    }

    /// Expands back to the dense representation (lossless inverse of
    /// [`SparseClock::from_dense`]).
    #[must_use]
    pub fn to_dense(&self) -> VectorClock {
        VectorClock::from_sparse_entries(self.n as usize, self.entries.iter().copied())
    }

    /// Number of processes this clock covers (the dense length).
    #[must_use]
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Returns `true` if the clock covers zero processes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of nonzero components actually stored.
    #[must_use]
    pub fn nonzero_count(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if every component is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `i`th component (zero unless an entry names it).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.n as usize, "component {i} out of range");
        match self.entries.binary_search_by_key(&(i as u32), |&(p, _)| p) {
            Ok(at) => self.entries[at].1,
            Err(_) => 0,
        }
    }

    /// Adds one to the `i`th component.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn increment(&mut self, i: usize) {
        assert!(i < self.n as usize, "component {i} out of range");
        match self.entries.binary_search_by_key(&(i as u32), |&(p, _)| p) {
            Ok(at) => self.entries[at].1 += 1,
            Err(at) => self.entries.insert(at, (i as u32, 1)),
        }
    }

    /// Component-wise maximum in place — the paper's `update(VT, VT')` on
    /// the sparse representation, by a sorted merge.
    ///
    /// # Panics
    ///
    /// Panics if the two clocks cover different numbers of processes.
    pub fn update(&mut self, other: &SparseClock) {
        assert_eq!(
            self.n, other.n,
            "vector clocks cover different process counts"
        );
        let mut merged = Vec::with_capacity(self.entries.len().max(other.entries.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.entries.len() || j < other.entries.len() {
            match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(ia, ca)), Some(&(ib, cb))) => match ia.cmp(&ib) {
                    Ordering::Equal => {
                        merged.push((ia, ca.max(cb)));
                        i += 1;
                        j += 1;
                    }
                    Ordering::Less => {
                        merged.push((ia, ca));
                        i += 1;
                    }
                    Ordering::Greater => {
                        merged.push((ib, cb));
                        j += 1;
                    }
                },
                (Some(&e), None) => {
                    merged.push(e);
                    i += 1;
                }
                (None, Some(&e)) => {
                    merged.push(e);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.entries = merged;
    }

    /// `true` iff neither clock dominates the other and they differ.
    #[must_use]
    pub fn concurrent(&self, other: &SparseClock) -> bool {
        self.partial_cmp(other).is_none()
    }

    /// `true` iff `self < other` in the paper's dominance order.
    #[must_use]
    pub fn dominated_by(&self, other: &SparseClock) -> bool {
        matches!(self.partial_cmp(other), Some(Ordering::Less))
    }

    /// Borrows the sorted `(process, count)` entries.
    #[must_use]
    pub fn entries(&self) -> &[(u32, u64)] {
        &self.entries
    }

    /// A borrowed view for allocation-free comparison.
    #[must_use]
    pub fn as_ref(&self) -> SparseClockRef<'_> {
        SparseClockRef {
            n: self.n,
            entries: &self.entries,
        }
    }

    /// Sum of all components.
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }
}

impl PartialOrd for SparseClock {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        compare_sparse(self.n, &self.entries, other.n, &other.entries)
    }
}

impl From<&VectorClock> for SparseClock {
    fn from(vt: &VectorClock) -> Self {
        SparseClock::from_dense(vt)
    }
}

impl From<&SparseClock> for VectorClock {
    fn from(sc: &SparseClock) -> Self {
        sc.to_dense()
    }
}

impl fmt::Debug for SparseClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SVT(n={}){:?}", self.n, self.entries)
    }
}

impl fmt::Display for SparseClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Same bracket notation as the dense clock, eliding zeros:
        // `{1:3,3:1}/4` reads "components 1→3, 3→1 of a 4-process clock".
        write!(f, "{{")?;
        for (k, (i, c)) in self.entries.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}:{c}")?;
        }
        write!(f, "}}/{}", self.n)
    }
}

/// A borrowed sparse timestamp: comparison over `(process, count)` entries
/// that stay where they are — a decoded message buffer, a
/// [`SparseClock`]'s storage — mirroring [`VectorClockRef`] for the sparse
/// representation.
///
/// # Examples
///
/// ```
/// use vclock::{SparseClock, SparseClockRef};
///
/// let a = SparseClock::from_entries(8, [(1, 2)]);
/// let wire: &[(u32, u64)] = &[(1, 2), (5, 1)];
/// let b = SparseClockRef::new(8, wire);
/// assert!(a.as_ref() < b);
/// assert_eq!(b.to_owned(), SparseClock::from_entries(8, wire.iter().copied()));
/// ```
#[derive(Clone, Copy)]
pub struct SparseClockRef<'a> {
    n: u32,
    entries: &'a [(u32, u64)],
}

impl<'a> SparseClockRef<'a> {
    /// Views sorted nonzero `(process, count)` entries as a clock over `n`
    /// processes.
    ///
    /// The entries must be sorted by process index with no duplicates and
    /// no zero counts (as produced by [`SparseClock::entries`] or a wire
    /// decoder that enforces canonical form).
    #[must_use]
    pub fn new(n: u32, entries: &'a [(u32, u64)]) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries.iter().all(|&(_, c)| c != 0));
        SparseClockRef { n, entries }
    }

    /// Number of processes the viewed clock covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Returns `true` if the viewed clock covers zero processes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of nonzero components.
    #[must_use]
    pub fn nonzero_count(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if every component is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `i`th component (zero unless an entry names it).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.n as usize, "component {i} out of range");
        match self.entries.binary_search_by_key(&(i as u32), |&(p, _)| p) {
            Ok(at) => self.entries[at].1,
            Err(_) => 0,
        }
    }

    /// Borrows the sorted `(process, count)` entries.
    #[must_use]
    pub fn entries(&self) -> &'a [(u32, u64)] {
        self.entries
    }

    /// `true` iff neither viewed clock dominates the other and they differ.
    #[must_use]
    pub fn concurrent(&self, other: &SparseClockRef<'_>) -> bool {
        compare_sparse(self.n, self.entries, other.n, other.entries).is_none()
    }

    /// `true` iff `self < other` in the paper's dominance order.
    #[must_use]
    pub fn dominated_by(&self, other: &SparseClockRef<'_>) -> bool {
        matches!(
            compare_sparse(self.n, self.entries, other.n, other.entries),
            Some(Ordering::Less)
        )
    }

    /// Copies the viewed entries into an owned sparse clock.
    #[must_use]
    pub fn to_owned(&self) -> SparseClock {
        SparseClock {
            n: self.n,
            entries: self.entries.to_vec(),
        }
    }

    /// Expands to the dense representation.
    #[must_use]
    pub fn to_dense(&self) -> VectorClock {
        VectorClock::from_sparse_entries(self.n as usize, self.entries.iter().copied())
    }

    /// Sum of all components.
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }
}

impl<'a> From<&'a SparseClock> for SparseClockRef<'a> {
    fn from(sc: &'a SparseClock) -> Self {
        sc.as_ref()
    }
}

impl PartialEq for SparseClockRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.entries == other.entries
    }
}

impl Eq for SparseClockRef<'_> {}

impl PartialOrd for SparseClockRef<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        compare_sparse(self.n, self.entries, other.n, other.entries)
    }
}

impl PartialEq<SparseClock> for SparseClockRef<'_> {
    fn eq(&self, other: &SparseClock) -> bool {
        self.n == other.n && self.entries == other.entries
    }
}

impl PartialEq<SparseClockRef<'_>> for SparseClock {
    fn eq(&self, other: &SparseClockRef<'_>) -> bool {
        self.n == other.n && self.entries == other.entries
    }
}

impl fmt::Debug for SparseClockRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SVT(n={}){:?}", self.n, self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock_is_zero() {
        let vt = VectorClock::new(3);
        assert!(vt.is_zero());
        assert_eq!(vt.len(), 3);
        assert!(!vt.is_empty());
        assert!(VectorClock::new(0).is_empty());
    }

    #[test]
    fn increment_bumps_single_component() {
        let mut vt = VectorClock::new(3);
        vt.increment(1);
        assert_eq!(vt.as_slice(), &[0, 1, 0]);
        vt.increment(1);
        assert_eq!(vt.as_slice(), &[0, 2, 0]);
    }

    #[test]
    fn incremented_leaves_original_untouched() {
        let vt = VectorClock::new(2);
        let vt2 = vt.incremented(0);
        assert!(vt.is_zero());
        assert_eq!(vt2.as_slice(), &[1, 0]);
    }

    #[test]
    fn update_takes_componentwise_max() {
        let mut a = VectorClock::from_components([3, 0, 5]);
        let b = VectorClock::from_components([1, 4, 5]);
        a.update(&b);
        assert_eq!(a.as_slice(), &[3, 4, 5]);
    }

    #[test]
    fn comparison_matches_paper_definition() {
        let a = VectorClock::from_components([1, 2]);
        let b = VectorClock::from_components([1, 3]);
        assert!(a < b);
        assert!(b > a);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        assert_eq!(a.partial_cmp(&a), Some(Ordering::Equal));
    }

    #[test]
    fn concurrent_clocks_are_unordered() {
        let a = VectorClock::from_components([2, 0]);
        let b = VectorClock::from_components([0, 2]);
        assert!(a.concurrent(&b));
        assert!(b.concurrent(&a));
        assert_eq!(a.partial_cmp(&b), None);
        assert!(!a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    #[test]
    fn equal_clocks_are_not_concurrent() {
        let a = VectorClock::from_components([1, 1]);
        assert!(!a.concurrent(&a.clone()));
    }

    #[test]
    fn clocks_of_different_lengths_do_not_compare() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(3);
        assert_eq!(a.partial_cmp(&b), None);
    }

    #[test]
    #[should_panic(expected = "different process counts")]
    fn update_panics_on_length_mismatch() {
        let mut a = VectorClock::new(2);
        a.update(&VectorClock::new(3));
    }

    #[test]
    fn display_is_compact() {
        let a = VectorClock::from_components([1, 0, 2]);
        assert_eq!(a.to_string(), "[1,0,2]");
        assert_eq!(format!("{a:?}"), "VT[1, 0, 2]");
    }

    #[test]
    fn conversions_round_trip() {
        let v = vec![1u64, 2, 3];
        let vt = VectorClock::from(v.clone());
        let back: Vec<u64> = vt.clone().into();
        assert_eq!(v, back);
        let collected: VectorClock = v.iter().copied().collect();
        assert_eq!(collected, vt);
        assert_eq!(VectorClock::from([1u64, 2, 3]), vt);
    }

    #[test]
    fn weight_sums_components() {
        assert_eq!(VectorClock::from_components([1, 0, 2]).weight(), 3);
    }

    #[test]
    fn figure4_writestamp_flow() {
        // A non-local write per Figure 4: writer increments, owner updates,
        // writer updates with the owner's reply. The resulting stamp must
        // dominate both parties' prior stamps.
        let mut writer = VectorClock::from_components([2, 0, 1]);
        let mut owner = VectorClock::from_components([0, 3, 1]);
        writer.increment(0); // w_i's increment
        let sent = writer.clone();
        owner.update(&sent); // owner's update on WRITE receipt
        let reply = owner.clone();
        writer.update(&reply); // writer's second update
        assert!(sent <= writer);
        assert!(reply <= writer || reply == writer);
        assert_eq!(writer.as_slice(), &[3, 3, 1]);
    }

    #[test]
    fn small_clocks_stay_inline_and_large_spill() {
        assert!(VectorClock::new(INLINE_PROCESSES).is_inline());
        assert!(!VectorClock::new(INLINE_PROCESSES + 1).is_inline());
        let exact: VectorClock = (0..INLINE_PROCESSES as u64).collect();
        assert!(exact.is_inline());
        assert_eq!(exact.len(), INLINE_PROCESSES);
        let spilled: VectorClock = (0..INLINE_PROCESSES as u64 + 1).collect();
        assert!(!spilled.is_inline());
        assert_eq!(spilled.len(), INLINE_PROCESSES + 1);
        assert_eq!(spilled.get(INLINE_PROCESSES), INLINE_PROCESSES as u64);
    }

    #[test]
    fn inline_and_spilled_agree_across_representations() {
        // A heap-repr clock that would fit inline cannot arise from the
        // public constructors, but equality/hash must still be slice-based:
        // compare an inline clock against one built via the spill path.
        let inline = VectorClock::from_slice(&[1, 2, 3]);
        let via_vec = VectorClock::from(vec![1, 2, 3]);
        assert_eq!(inline, via_vec);
        assert_eq!(inline.partial_cmp(&via_vec), Some(Ordering::Equal));

        use std::collections::hash_map::DefaultHasher;
        let h = |vt: &VectorClock| {
            let mut s = DefaultHasher::new();
            vt.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&inline), h(&via_vec));
    }

    #[test]
    fn ref_view_compares_without_owning() {
        let a = VectorClock::from_components([1, 2, 0]);
        let raw: &[u64] = &[2, 2, 0];
        let b = VectorClockRef::from(raw);
        assert!(a.as_ref() < b);
        assert!(a.as_ref().dominated_by(&b));
        assert!(!a.as_ref().concurrent(&b));
        assert_eq!(b.to_owned().as_slice(), raw);
        assert_eq!(b.weight(), 4);
        assert_eq!(b.to_string(), "[2,2,0]");
        assert_eq!(format!("{b:?}"), "VT[2, 2, 0]");
        assert!(a == a.as_ref() && a.as_ref() == a);
    }

    #[test]
    fn nonzero_projects_and_reconstructs() {
        let vt = VectorClock::from_components([0, 3, 0, 0, 7]);
        let pairs: Vec<(u32, u64)> = vt.nonzero().collect();
        assert_eq!(pairs, vec![(1, 3), (4, 7)]);
        assert_eq!(vt.nonzero_count(), 2);
        assert_eq!(VectorClock::from_sparse_entries(5, pairs), vt);
        assert!(VectorClock::new(4).nonzero().next().is_none());
    }

    #[test]
    fn sparse_round_trips_through_dense() {
        for n in [0usize, 1, 3, INLINE_PROCESSES, INLINE_PROCESSES + 9] {
            let vt: VectorClock = (0..n as u64).map(|i| i % 3).collect();
            let sc = SparseClock::from_dense(&vt);
            assert_eq!(sc.len(), n);
            assert_eq!(sc.to_dense(), vt);
            assert_eq!(sc.weight(), vt.weight());
            for i in 0..n {
                assert_eq!(sc.get(i), vt.get(i));
            }
        }
    }

    #[test]
    fn sparse_increment_and_update_match_dense() {
        let mut dense = VectorClock::from_components([0, 2, 0, 5]);
        let mut sparse = SparseClock::from_dense(&dense);
        dense.increment(0);
        sparse.increment(0);
        dense.increment(1);
        sparse.increment(1);
        assert_eq!(sparse.to_dense(), dense);

        let other_dense = VectorClock::from_components([4, 0, 1, 0]);
        let other = SparseClock::from_dense(&other_dense);
        dense.update(&other_dense);
        sparse.update(&other);
        assert_eq!(sparse.to_dense(), dense);
        assert_eq!(sparse.nonzero_count(), 4);
    }

    #[test]
    fn sparse_comparison_matches_paper_definition() {
        let a = SparseClock::from_entries(4, [(0, 1), (2, 2)]);
        let b = SparseClock::from_entries(4, [(0, 1), (2, 3)]);
        assert!(a < b);
        assert!(a.dominated_by(&b));
        let c = SparseClock::from_entries(4, [(1, 1)]);
        assert!(a.concurrent(&c));
        assert_eq!(a.partial_cmp(&a.clone()), Some(Ordering::Equal));
        // Different process counts never compare, exactly like dense.
        assert_eq!(
            SparseClock::new(2).partial_cmp(&SparseClock::new(3)),
            None
        );
    }

    #[test]
    fn sparse_from_entries_canonicalizes() {
        // Unsorted input, duplicate indices (max wins), zero counts dropped.
        let sc = SparseClock::from_entries(6, [(4, 1), (1, 2), (4, 5), (3, 0)]);
        assert_eq!(sc.entries(), &[(1, 2), (4, 5)]);
        assert!(SparseClock::from_entries(3, [(0, 0)]).is_zero());
    }

    #[test]
    fn sparse_ref_view_compares_without_owning() {
        let a = SparseClock::from_entries(8, [(1, 2)]);
        let raw: &[(u32, u64)] = &[(1, 2), (5, 1)];
        let b = SparseClockRef::new(8, raw);
        assert!(a.as_ref() < b);
        assert!(a.as_ref().dominated_by(&b));
        assert!(!a.as_ref().concurrent(&b));
        assert_eq!(b.to_owned(), SparseClock::from_entries(8, raw.iter().copied()));
        assert_eq!(b.to_dense(), VectorClock::from_components([0, 2, 0, 0, 0, 1, 0, 0]));
        assert_eq!(b.get(5), 1);
        assert_eq!(b.get(4), 0);
        assert_eq!(b.weight(), 3);
        assert!(a == a.as_ref() && a.as_ref() == a);
    }

    #[test]
    fn sparse_display_elides_zeros() {
        let sc = SparseClock::from_entries(5, [(1, 3), (4, 1)]);
        assert_eq!(sc.to_string(), "{1:3,4:1}/5");
        assert_eq!(format!("{sc:?}"), "SVT(n=5)[(1, 3), (4, 1)]");
    }

    #[test]
    fn serde_round_trips_as_plain_sequence() {
        for n in [0usize, 3, INLINE_PROCESSES, INLINE_PROCESSES + 5] {
            let vt: VectorClock = (0..n as u64).map(|i| i * 7 + 1).collect();
            let value = vt.to_value();
            match &value {
                Value::Seq(items) => assert_eq!(items.len(), n),
                other => panic!("clock must serialize as a sequence, got {other:?}"),
            }
            // Identical to how the components serialize as a bare Vec.
            assert_eq!(value, vt.as_slice().to_vec().to_value());
            let back = VectorClock::from_value(&value).expect("round trip");
            assert_eq!(back, vt);
        }
    }
}
