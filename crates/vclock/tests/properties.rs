//! Property-based tests for the vector-clock lattice.

use proptest::prelude::*;
use std::cmp::Ordering;
use vclock::VectorClock;

const N: usize = 5;

fn clock() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u64..16, N).prop_map(VectorClock::from)
}

proptest! {
    /// `update` is the lattice join: idempotent, commutative, associative.
    #[test]
    fn update_is_a_join(a in clock(), b in clock(), c in clock()) {
        prop_assert_eq!(a.updated(&a), a.clone());
        prop_assert_eq!(a.updated(&b), b.updated(&a));
        prop_assert_eq!(a.updated(&b).updated(&c), a.updated(&b.updated(&c)));
    }

    /// The join dominates (or equals) both operands.
    #[test]
    fn join_is_an_upper_bound(a in clock(), b in clock()) {
        let j = a.updated(&b);
        prop_assert!(a <= j);
        prop_assert!(b <= j);
    }

    /// The join is the *least* upper bound.
    #[test]
    fn join_is_least(a in clock(), b in clock(), u in clock()) {
        if a <= u && b <= u {
            prop_assert!(a.updated(&b) <= u);
        }
    }

    /// Increment strictly advances the clock.
    #[test]
    fn increment_strictly_dominates(a in clock(), i in 0usize..N) {
        let b = a.incremented(i);
        prop_assert!(a < b);
        prop_assert!(a.dominated_by(&b));
    }

    /// partial_cmp is antisymmetric and consistent with dominated_by.
    #[test]
    fn ordering_is_consistent(a in clock(), b in clock()) {
        match a.partial_cmp(&b) {
            Some(Ordering::Less) => {
                prop_assert_eq!(b.partial_cmp(&a), Some(Ordering::Greater));
                prop_assert!(a.dominated_by(&b));
            }
            Some(Ordering::Greater) => {
                prop_assert_eq!(b.partial_cmp(&a), Some(Ordering::Less));
                prop_assert!(b.dominated_by(&a));
            }
            Some(Ordering::Equal) => prop_assert_eq!(&a, &b),
            None => {
                prop_assert!(a.concurrent(&b));
                prop_assert!(b.concurrent(&a));
            }
        }
    }

    /// Comparison agrees with the component-wise definition in the paper.
    #[test]
    fn ordering_matches_componentwise_definition(a in clock(), b in clock()) {
        let le = a.iter().zip(b.iter()).all(|(x, y)| x <= y);
        let strict = a.iter().zip(b.iter()).any(|(x, y)| x < y);
        prop_assert_eq!(a.dominated_by(&b), le && strict);
    }

    /// Dominance is transitive.
    #[test]
    fn dominance_is_transitive(a in clock(), b in clock(), c in clock()) {
        if a < b && b < c {
            prop_assert!(a < c);
        }
    }
}
