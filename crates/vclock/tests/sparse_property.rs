//! Model equivalence across the dense↔sparse boundary: `SparseClock` (and
//! its borrowed `SparseClockRef` view) must be observationally identical
//! to the dense `VectorClock` it projects — round trip, merge, increment,
//! the dominance comparison, and concurrency — across 10k random pairs,
//! with lengths straddling the 16→17-process inline→heap spill boundary
//! (so all three representations — inline dense, heap dense, sparse — are
//! pinned to one model).

use std::cmp::Ordering;

use proptest::prelude::*;
use vclock::{SparseClock, SparseClockRef, VectorClock, INLINE_PROCESSES};

/// Component vectors with lengths clustered around the spill boundary and
/// *mostly-zero* components (the regime sparse encoding exists for), plus
/// a dense-ish arm so nonzero-heavy clocks are covered too.
fn sparse_component() -> impl Strategy<Value = u64> {
    // ~80% zeros: draw 0..80 and fold the bottom 64 values to zero.
    (0u64..80).prop_map(|x| if x < 64 { 0 } else { x - 63 })
}

fn components() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        proptest::collection::vec(sparse_component(), 0..INLINE_PROCESSES + 8),
        proptest::collection::vec(1u64..16, 0..INLINE_PROCESSES + 8),
    ]
}

/// Same-length pairs, so merge and comparison are defined.
fn pair() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    let widest = INLINE_PROCESSES + 8;
    (
        components(),
        proptest::collection::vec(sparse_component(), widest..widest + 1),
    )
        .prop_map(|(a, mut b)| {
            b.truncate(a.len());
            (a, b)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2_000))]

    /// Projection is lossless: dense → sparse → dense is the identity,
    /// entries are canonical (sorted, nonzero), and every component
    /// accessor agrees.
    #[test]
    fn projection_round_trips(a in components()) {
        let dense = VectorClock::from_slice(&a);
        let sparse = SparseClock::from_dense(&dense);
        prop_assert_eq!(sparse.to_dense(), dense.clone());
        prop_assert_eq!(sparse.len(), dense.len());
        prop_assert_eq!(sparse.weight(), dense.weight());
        prop_assert_eq!(sparse.is_zero(), dense.is_zero());
        prop_assert_eq!(sparse.nonzero_count(), dense.nonzero_count());
        prop_assert!(sparse.entries().windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert!(sparse.entries().iter().all(|&(_, c)| c != 0));
        for i in 0..a.len() {
            prop_assert_eq!(sparse.get(i), dense.get(i));
        }
        // The iterator-based projection and the type-based one agree.
        let via_pairs = VectorClock::from_sparse_entries(a.len(), dense.nonzero());
        prop_assert_eq!(via_pairs, dense);
    }

    /// Comparison, dominance and concurrency agree with the dense model,
    /// both for owned sparse clocks and for borrowed views.
    #[test]
    fn comparison_matches_dense((a, b) in pair()) {
        let da = VectorClock::from_slice(&a);
        let db = VectorClock::from_slice(&b);
        let want = da.partial_cmp(&db);
        let sa = SparseClock::from_dense(&da);
        let sb = SparseClock::from_dense(&db);
        prop_assert_eq!(sa.partial_cmp(&sb), want);
        prop_assert_eq!(sa.dominated_by(&sb), want == Some(Ordering::Less));
        prop_assert_eq!(sa.concurrent(&sb), want.is_none());
        let ra = SparseClockRef::from(&sa);
        let rb = sb.as_ref();
        prop_assert_eq!(ra.partial_cmp(&rb), want);
        prop_assert_eq!(ra.dominated_by(&rb), want == Some(Ordering::Less));
        prop_assert_eq!(ra.concurrent(&rb), want.is_none());
        prop_assert_eq!(sa == sb, da == db);
    }

    /// Merge commutes with projection: sparse update of projections equals
    /// the projection of the dense update.
    #[test]
    fn merge_commutes_with_projection((a, b) in pair()) {
        let da = VectorClock::from_slice(&a);
        let db = VectorClock::from_slice(&b);
        let mut sparse = SparseClock::from_dense(&da);
        sparse.update(&SparseClock::from_dense(&db));
        prop_assert_eq!(sparse, SparseClock::from_dense(&da.updated(&db)));
    }

    /// Increment commutes with projection at every index.
    #[test]
    fn increment_commutes_with_projection(a in components(), i in 0usize..INLINE_PROCESSES + 8) {
        if !a.is_empty() {
            let i = i % a.len();
            let dense = VectorClock::from_slice(&a);
            let mut sparse = SparseClock::from_dense(&dense);
            sparse.increment(i);
            prop_assert_eq!(sparse, SparseClock::from_dense(&dense.incremented(i)));
        }
    }

    /// Mismatched process counts never compare, exactly like dense clocks.
    #[test]
    fn length_mismatch_is_unordered(a in components(), b in components()) {
        if a.len() != b.len() {
            let sa = SparseClock::from_dense(&VectorClock::from_slice(&a));
            let sb = SparseClock::from_dense(&VectorClock::from_slice(&b));
            prop_assert_eq!(sa.partial_cmp(&sb), None);
            prop_assert!(sa.concurrent(&sb));
            prop_assert!(!sa.dominated_by(&sb));
        }
    }
}

#[test]
fn spill_boundary_is_exact_for_sparse() {
    // 16 processes inline-dense, 17 heap-dense; the sparse projection is
    // representation-blind on both sides of the boundary.
    let at: VectorClock = (1..=INLINE_PROCESSES as u64).collect();
    let over: VectorClock = (1..=INLINE_PROCESSES as u64 + 1).collect();
    assert!(at.is_inline());
    assert!(!over.is_inline());
    let s_at = SparseClock::from_dense(&at);
    let s_over = SparseClock::from_dense(&over);
    assert_eq!(s_at.to_dense(), at);
    assert_eq!(s_over.to_dense(), over);
    assert_eq!(s_at.nonzero_count(), INLINE_PROCESSES);
    assert_eq!(s_over.nonzero_count(), INLINE_PROCESSES + 1);
    // A 16-clock and a 17-clock never compare, sparse or dense.
    assert_eq!(s_at.partial_cmp(&s_over), None);
}
