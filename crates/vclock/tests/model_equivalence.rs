//! Model equivalence: the inline small-vector `VectorClock` must be
//! observationally identical to the reference `Vec<u64>` semantics it
//! replaced — merge (component-wise max), the dominance comparison,
//! concurrency, and the serde round trip — across 10k random pairs,
//! with lengths straddling the 16→17-process inline→heap spill boundary.

use std::cmp::Ordering;

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use vclock::{VectorClock, VectorClockRef, INLINE_PROCESSES};

/// The reference model: the operations as the old `Vec<u64>`-backed
/// implementation wrote them, verbatim.
mod model {
    use std::cmp::Ordering;

    pub fn update(a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| (*x).max(*y)).collect()
    }

    pub fn compare(a: &[u64], b: &[u64]) -> Option<Ordering> {
        if a.len() != b.len() {
            return None;
        }
        let mut less = false;
        let mut greater = false;
        for (x, y) in a.iter().zip(b) {
            match x.cmp(y) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
        }
        match (less, greater) {
            (false, false) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (true, true) => None,
        }
    }
}

/// Component vectors with lengths clustered around the spill boundary:
/// 0..=16 stays inline, 17.. spills to the heap.
fn components() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        proptest::collection::vec(0u64..8, 0..INLINE_PROCESSES + 1),
        proptest::collection::vec(0u64..8, INLINE_PROCESSES..INLINE_PROCESSES + 8),
    ]
}

/// Same-length pairs, so merge is defined (mismatched lengths are covered
/// separately below): draw the second vector at maximum width and cut it
/// to the first one's length.
fn pair() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    let widest = INLINE_PROCESSES + 8;
    (
        components(),
        proptest::collection::vec(0u64..8, widest..widest + 1),
    )
        .prop_map(|(a, mut b)| {
            b.truncate(a.len());
            (a, b)
        })
}

proptest! {
    // 2_500 cases x 4 properties = 10k (pair, operation) checks.
    #![proptest_config(ProptestConfig::with_cases(2_500))]

    /// Merge agrees with the component-wise-max reference model.
    #[test]
    fn merge_matches_model((a, b) in pair()) {
        let want = VectorClock::from(model::update(&a, &b));
        let va = VectorClock::from_slice(&a);
        let vb = VectorClock::from_slice(&b);
        prop_assert_eq!(&va.updated(&vb), &want);
        let mut in_place = va.clone();
        in_place.update(&vb);
        prop_assert_eq!(&in_place, &want);
        let mut via_slice = va;
        via_slice.update_slice(&b);
        prop_assert_eq!(&via_slice, &want);
    }

    /// Comparison, dominance and concurrency agree with the model, both
    /// for owned clocks and for borrowed [`VectorClockRef`] views.
    #[test]
    fn comparison_matches_model((a, b) in pair()) {
        let want = model::compare(&a, &b);
        let va = VectorClock::from_slice(&a);
        let vb = VectorClock::from_slice(&b);
        prop_assert_eq!(va.partial_cmp(&vb), want);
        prop_assert_eq!(va.dominated_by(&vb), want == Some(Ordering::Less));
        prop_assert_eq!(va.concurrent(&vb), want.is_none());
        let ra = VectorClockRef::from(a.as_slice());
        let rb = VectorClockRef::from(b.as_slice());
        prop_assert_eq!(ra.partial_cmp(&rb), want);
        prop_assert_eq!(ra.dominated_by(&rb), want == Some(Ordering::Less));
        prop_assert_eq!(ra.concurrent(&rb), want.is_none());
    }

    /// Mismatched lengths: unordered, never panicking (except `update`,
    /// whose panic contract is pinned by a unit test in the crate).
    #[test]
    fn length_mismatch_is_unordered(a in components(), b in components()) {
        if a.len() != b.len() {
            let va = VectorClock::from_slice(&a);
            let vb = VectorClock::from_slice(&b);
            prop_assert_eq!(va.partial_cmp(&vb), None);
            prop_assert!(va.concurrent(&vb));
            prop_assert!(!va.dominated_by(&vb));
        }
    }

    /// Every accessor and codec path sees exactly the component vector:
    /// construction round-trips (slice, iterator, Vec, serde) across the
    /// spill boundary, and equality/hash are representation-blind.
    #[test]
    fn construction_and_serde_round_trip(a in components()) {
        let vt = VectorClock::from_slice(&a);
        prop_assert_eq!(vt.is_inline(), a.len() <= INLINE_PROCESSES);
        prop_assert_eq!(vt.as_slice(), a.as_slice());
        prop_assert_eq!(vt.len(), a.len());
        prop_assert_eq!(vt.weight(), a.iter().sum::<u64>());

        let from_iter: VectorClock = a.iter().copied().collect();
        let from_vec = VectorClock::from(a.clone());
        prop_assert_eq!(&vt, &from_iter);
        prop_assert_eq!(&vt, &from_vec);
        let back: Vec<u64> = vt.clone().into();
        prop_assert_eq!(back, a.clone());

        // Serde: same tree as the raw Vec<u64>, and round-trips.
        let tree = vt.to_value();
        prop_assert_eq!(&tree, &a.to_value());
        prop_assert_eq!(VectorClock::from_value(&tree).unwrap(), vt);
    }
}

#[test]
fn spill_boundary_is_exact() {
    // 16 processes inline, 17 heap — and the two behave identically
    // right at the edge.
    let at: VectorClock = (1..=INLINE_PROCESSES as u64).collect();
    let over: VectorClock = (1..=INLINE_PROCESSES as u64 + 1).collect();
    assert!(at.is_inline());
    assert!(!over.is_inline());
    assert_eq!(at.len(), INLINE_PROCESSES);
    assert_eq!(over.len(), INLINE_PROCESSES + 1);
    // A 16-clock and a 17-clock never compare.
    assert_eq!(at.partial_cmp(&over), None);
    // Growing a 16-clock's worth of components by one more spills, and
    // merge still matches the model at both widths.
    for vt in [&at, &over] {
        let doubled = VectorClock::from(model::update(vt.as_slice(), vt.as_slice()));
        assert_eq!(&doubled, vt);
    }
}
