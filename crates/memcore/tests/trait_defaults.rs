//! Contract tests for [`SharedMemory`]'s default methods against a mock
//! memory, independent of any engine.

use std::sync::Mutex;

use memcore::{Location, MemoryError, NodeId, SharedMemory};

/// A single-location mock that counts discards and serves a scripted
/// sequence of values (one per read).
struct MockMemory {
    values: Mutex<Vec<i64>>,
    discards: Mutex<u32>,
}

impl MockMemory {
    fn new(values: Vec<i64>) -> Self {
        MockMemory {
            values: Mutex::new(values),
            discards: Mutex::new(0),
        }
    }

    fn discards(&self) -> u32 {
        *self.discards.lock().unwrap()
    }
}

impl SharedMemory<i64> for MockMemory {
    fn node(&self) -> NodeId {
        NodeId::new(0)
    }

    fn read(&self, _loc: Location) -> Result<i64, MemoryError> {
        let mut values = self.values.lock().unwrap();
        if values.len() > 1 {
            Ok(values.remove(0))
        } else {
            values.first().copied().ok_or(MemoryError::Shutdown)
        }
    }

    fn write(&self, _loc: Location, value: i64) -> Result<(), MemoryError> {
        self.values.lock().unwrap().push(value);
        Ok(())
    }

    fn discard(&self, _loc: Location) {
        *self.discards.lock().unwrap() += 1;
    }
}

#[test]
fn read_fresh_discards_then_reads() {
    let mem = MockMemory::new(vec![7]);
    assert_eq!(mem.read_fresh(Location::new(0)).unwrap(), 7);
    assert_eq!(mem.discards(), 1);
}

#[test]
fn wait_until_discards_before_every_retry() {
    // Values 1, 2, 3 then steady 4: the wait must poll through them,
    // discarding each time, and return the first satisfying value.
    let mem = MockMemory::new(vec![1, 2, 3, 4]);
    let got = mem.wait_until(Location::new(0), &|v| *v >= 3).unwrap();
    assert_eq!(got, 3);
    assert_eq!(mem.discards(), 3, "one discard per attempt");
}

#[test]
fn wait_until_returns_immediately_when_satisfied() {
    let mem = MockMemory::new(vec![9]);
    assert_eq!(mem.wait_until(Location::new(0), &|v| *v == 9).unwrap(), 9);
    assert_eq!(mem.discards(), 1);
}

#[test]
fn wait_until_propagates_errors() {
    let mem = MockMemory::new(vec![]);
    assert_eq!(
        mem.wait_until(Location::new(0), &|_| true),
        Err(MemoryError::Shutdown)
    );
}
