//! Property tests for consistent-hash ownership: the two claims that make
//! the ring worth having over round-robin — pages spread evenly across
//! members (virtual nodes smooth the arcs), and membership growth moves
//! only O(pages/n) assignments — plus the contract the failover layer
//! leans on (epoch succession is a permutation of the membership).

use memcore::{HashRingOwners, NodeId, OwnerMap, PageId};

const PAGES: usize = 4096;
const VNODES: u32 = 64;

fn assignment(ring: &HashRingOwners) -> Vec<NodeId> {
    (0..PAGES).map(|p| ring.owner_of_page(PageId::new(p as u32))).collect()
}

/// Uniform distribution, chi-squared style: with `VNODES` virtual nodes
/// the per-member page count concentrates around `PAGES / n`; we pin the
/// normalized chi-square statistic and a hard min/max band. The bounds are
/// loose enough to be seed-independent (the hash is fixed, so this is
/// really pinning the quality of the mixer) but tight enough that a
/// broken ring — e.g. un-salted page hashing colliding with vnode points,
/// or a sort bug collapsing arcs — fails immediately.
#[test]
fn pages_distribute_uniformly_across_members() {
    for n in [4u32, 16, 64] {
        let ring = HashRingOwners::new(n, 1, VNODES);
        let mut counts = vec![0u64; n as usize];
        for owner in assignment(&ring) {
            counts[owner.index()] += 1;
        }
        let expected = PAGES as f64 / n as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // Normalized by degrees of freedom; a true uniform multinomial
        // gives E[chi2/(n-1)] = 1, and vnode smoothing keeps the observed
        // value the same order. 4.0 is many standard deviations out.
        let normalized = chi2 / (n as f64 - 1.0);
        assert!(
            normalized < 4.0,
            "n={n}: chi2/dof = {normalized:.2}, counts {counts:?}"
        );
        let (lo, hi) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(
            lo > expected / 2.0 && hi < expected * 2.0,
            "n={n}: page counts outside [expected/2, 2*expected]: {counts:?}"
        );
    }
}

/// Minimal reshuffle on join: going from n to n+1 members moves at most
/// 2·pages/n assignments, and every moved page moves *to* the new node
/// (consistent hashing's defining property — existing arcs only shrink).
#[test]
fn join_moves_at_most_two_over_n_of_the_pages() {
    for n in [8u32, 16, 64] {
        let before = assignment(&HashRingOwners::new(n, 1, VNODES));
        let after = assignment(&HashRingOwners::new(n + 1, 1, VNODES));
        let moved: Vec<usize> = (0..PAGES).filter(|&p| before[p] != after[p]).collect();
        let bound = 2 * PAGES / n as usize;
        assert!(
            moved.len() <= bound,
            "n={n}->{}: {} pages moved, bound {bound}",
            n + 1,
            moved.len()
        );
        // Some pages must move (the new node owns a nonempty share)...
        assert!(!moved.is_empty(), "n={n}: new node owns nothing");
        // ...and every move lands on the joining node.
        for &p in &moved {
            assert_eq!(
                after[p],
                NodeId::new(n),
                "page {p} moved to an old member on join"
            );
        }
    }
}

/// The same bound read as a leave: shrinking n+1 to n only re-homes the
/// leaver's pages (the symmetric difference is exactly the join set).
#[test]
fn leave_rehomes_only_the_leavers_pages() {
    let n = 16u32;
    let big = assignment(&HashRingOwners::new(n + 1, 1, VNODES));
    let small = assignment(&HashRingOwners::new(n, 1, VNODES));
    for p in 0..PAGES {
        if big[p] != NodeId::new(n) {
            assert_eq!(
                big[p], small[p],
                "page {p} moved although its owner did not leave"
            );
        }
    }
}

/// Epoch succession is a permutation: for any page the first n epochs
/// visit n distinct members, epoch 0 is the static owner, and succession
/// is stable across equal rings (computed-never-stored requires every
/// node to derive the same walk).
#[test]
fn epoch_succession_is_a_stable_permutation() {
    let n = 16u32;
    let a = HashRingOwners::new(n, 1, VNODES);
    let b = HashRingOwners::new(n, 1, VNODES);
    for p in (0..PAGES).step_by(61) {
        let page = PageId::new(p as u32);
        let walk: Vec<NodeId> = (0..n).map(|e| a.owner_at_epoch(page, e)).collect();
        assert_eq!(walk[0], a.owner_of_page(page));
        let mut sorted = walk.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), n as usize, "page {p}: succession repeats early");
        for e in 0..n {
            assert_eq!(a.owner_at_epoch(page, e), b.owner_at_epoch(page, e));
            // Succession wraps modulo n.
            assert_eq!(a.owner_at_epoch(page, e), a.owner_at_epoch(page, e + n));
        }
    }
}

/// The round-robin default keeps the failover layer's historical formula:
/// `owner_at_epoch` on a non-ring map is `(static + e) mod n`, so swapping
/// the trait method into `failover::owner_at` changed no behavior there.
#[test]
fn default_owner_at_epoch_matches_failover_formula() {
    let rr = memcore::RoundRobinOwners::new(5, 2);
    for p in 0..40usize {
        let page = PageId::new(p as u32);
        for e in 0..11u32 {
            let want = (rr.owner_of_page(page).index() as u32 + e) % 5;
            assert_eq!(rr.owner_at_epoch(page, e), NodeId::new(want));
        }
    }
}
