//! Operation records: the bridge from running engines to the executable
//! specification.
//!
//! Every engine can be handed a [`Recorder`]; it then logs each completed
//! read and write, in program order per process, tagged with the
//! [`WriteId`] that makes the reads-from relation exact. The `causal-spec`
//! crate turns these logs into causality graphs and checks Definition 2.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::{Location, NodeId, WriteId};

/// Whether an operation is a read or a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A read operation `r(x)v`.
    Read,
    /// A write operation `w(x)v`.
    Write,
}

/// One completed operation, as recorded by an engine.
///
/// For writes, `write_id` is the write's own unique tag; for reads it is
/// the tag of the write the read *reads from* (possibly an initial write).
///
/// # Examples
///
/// ```
/// use memcore::{Location, NodeId, OpRecord, WriteId};
///
/// let w = OpRecord::write(Location::new(0), 5i64, WriteId::new(NodeId::new(1), 0));
/// let r = OpRecord::read(Location::new(0), 5i64, w.write_id);
/// assert_eq!(r.write_id, w.write_id);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpRecord<V> {
    /// Read or write.
    pub kind: OpKind,
    /// The location acted on.
    pub loc: Location,
    /// The value written or returned.
    pub value: V,
    /// The write's own tag, or the tag of the write a read reads from.
    pub write_id: WriteId,
}

impl<V> OpRecord<V> {
    /// Records a read of `loc` returning `value` written by `reads_from`.
    pub fn read(loc: Location, value: V, reads_from: WriteId) -> Self {
        OpRecord {
            kind: OpKind::Read,
            loc,
            value,
            write_id: reads_from,
        }
    }

    /// Records a write of `value` to `loc` tagged `id`.
    pub fn write(loc: Location, value: V, id: WriteId) -> Self {
        OpRecord {
            kind: OpKind::Write,
            loc,
            value,
            write_id: id,
        }
    }

    /// `true` iff this is a read record.
    pub fn is_read(&self) -> bool {
        self.kind == OpKind::Read
    }
}

/// Collects per-process operation sequences from a running engine.
///
/// Cheap to clone (internally shared); engines call
/// [`Recorder::record`] as operations complete and tests call
/// [`Recorder::processes`] afterwards.
///
/// # Examples
///
/// ```
/// use memcore::{Location, NodeId, OpRecord, Recorder, WriteId};
///
/// let rec = Recorder::new(2);
/// rec.record(
///     NodeId::new(0),
///     OpRecord::write(Location::new(0), 1i64, WriteId::new(NodeId::new(0), 0)),
/// );
/// assert_eq!(rec.processes()[0].len(), 1);
/// assert_eq!(rec.processes()[1].len(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct Recorder<V> {
    procs: Arc<Vec<Mutex<Vec<OpRecord<V>>>>>,
}

impl<V: Clone> Recorder<V> {
    /// Creates a recorder for `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Recorder {
            procs: Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect()),
        }
    }

    /// Number of processes being recorded.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Appends `op` to `node`'s program-order log.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this recorder.
    pub fn record(&self, node: NodeId, op: OpRecord<V>) {
        self.procs[node.index()].lock().push(op);
    }

    /// Snapshots all per-process logs, in process order.
    #[must_use]
    pub fn processes(&self) -> Vec<Vec<OpRecord<V>>> {
        self.procs.iter().map(|m| m.lock().clone()).collect()
    }

    /// Total number of recorded operations across all processes.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.procs.iter().map(|m| m.lock().len()).sum()
    }

    /// Clears all logs (useful to scope measurement to a program phase).
    pub fn clear(&self) {
        for m in self.procs.iter() {
            m.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wid(p: u32, s: u64) -> WriteId {
        WriteId::new(NodeId::new(p), s)
    }

    #[test]
    fn records_preserve_program_order() {
        let rec: Recorder<i64> = Recorder::new(2);
        rec.record(
            NodeId::new(0),
            OpRecord::write(Location::new(0), 1, wid(0, 0)),
        );
        rec.record(
            NodeId::new(0),
            OpRecord::read(Location::new(0), 1, wid(0, 0)),
        );
        rec.record(
            NodeId::new(1),
            OpRecord::read(Location::new(0), 1, wid(0, 0)),
        );
        let procs = rec.processes();
        assert_eq!(procs[0].len(), 2);
        assert_eq!(procs[0][0].kind, OpKind::Write);
        assert_eq!(procs[0][1].kind, OpKind::Read);
        assert!(procs[0][1].is_read());
        assert_eq!(procs[1].len(), 1);
        assert_eq!(rec.total_ops(), 3);
    }

    #[test]
    fn clear_resets_all_processes() {
        let rec: Recorder<i64> = Recorder::new(1);
        rec.record(
            NodeId::new(0),
            OpRecord::write(Location::new(0), 1, wid(0, 0)),
        );
        rec.clear();
        assert_eq!(rec.total_ops(), 0);
    }

    #[test]
    fn recorder_clones_share_state() {
        let rec: Recorder<i64> = Recorder::new(1);
        let rec2 = rec.clone();
        rec2.record(
            NodeId::new(0),
            OpRecord::write(Location::new(0), 1, wid(0, 0)),
        );
        assert_eq!(rec.total_ops(), 1);
        assert_eq!(rec.process_count(), 1);
    }
}
