//! Message statistics: the instrument behind the paper's §4.1
//! message-counting argument.
//!
//! Every transport in this workspace records each protocol message it
//! carries, keyed by *sending* node and message kind. The solver experiment
//! (E6 in `DESIGN.md`) reads these counters to reproduce the paper's
//! `2n + 6` vs `3n + 5` per-processor-per-iteration comparison.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::NodeId;

/// Well-known counter kinds for fault and session-layer accounting.
///
/// Protocol messages are counted under their own kinds (`"READ"`,
/// `"W_REPLY"`, …). The fault-injection and reliable-delivery layers
/// (`dsm-faults`) add bookkeeping events under these names so overhead is
/// separable from protocol cost in any [`StatsSnapshot`].
pub mod kinds {
    /// A session-layer retransmission of an unacknowledged message.
    pub const RETX: &str = "RETX";
    /// A duplicate copy delivered by the (faulty) network.
    pub const DUP: &str = "DUP";
    /// A message dropped by the network (loss, partition, or dead node).
    pub const DROP: &str = "DROP";
    /// A session-layer cumulative acknowledgement.
    pub const ACK: &str = "ACK";
    /// A failure-detector liveness probe (owner-failover layer).
    pub const HEARTBEAT: &str = "HEARTBEAT";
    /// A suspicion broadcast announcing a migrated ownership epoch.
    pub const SUSPECT: &str = "SUSPECT";
    /// A stale-epoch rejection carrying the current owner as a redirect.
    pub const NACK: &str = "NACK";
    /// A hot-standby shadow copy shipped to a page's successor.
    pub const REPL: &str = "REPL";
    /// An interest-set update: a node telling a page's owner it no longer
    /// caches the page (partial-replication layer). Registration is
    /// implicit in the first READ/WRITE, so only drops are messages.
    pub const INTEREST: &str = "INTEREST";
    /// A session-layer incarnation announcement: a restarted node (or a
    /// peer fencing its stale frames) advertising its current
    /// incarnation so both ends rebase their sequence spaces.
    pub const HELLO: &str = "HELLO";
    /// A transport envelope carrying several logical messages (batching).
    ///
    /// Never recorded in the *logical* per-kind counters — those always see
    /// the constituent messages under their own kinds — only in the
    /// physical-envelope counters, where one batch is one send.
    pub const BATCH: &str = "BATCH";

    /// Every overhead kind, as an enum so the overhead/protocol split in
    /// [`StatsSnapshot`](super::StatsSnapshot) stays exhaustive by
    /// construction: adding a variant without extending [`Overhead::name`]
    /// or [`Overhead::VARIANTS`] is a compile error, so a new bookkeeping
    /// kind can never be silently misclassified as protocol traffic.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    #[repr(usize)]
    pub enum Overhead {
        /// [`RETX`].
        Retx = 0,
        /// [`DUP`].
        Dup,
        /// [`DROP`].
        Drop,
        /// [`ACK`].
        Ack,
        /// [`HEARTBEAT`].
        Heartbeat,
        /// [`SUSPECT`].
        Suspect,
        /// [`NACK`].
        Nack,
        /// [`REPL`].
        Repl,
        /// [`INTEREST`].
        Interest,
        /// [`HELLO`].
        Hello,
    }

    impl Overhead {
        /// Number of overhead kinds.
        pub const COUNT: usize = Overhead::Hello as usize + 1;

        /// Every variant, in discriminant order (checked at compile time
        /// below).
        pub const VARIANTS: [Overhead; Overhead::COUNT] = [
            Overhead::Retx,
            Overhead::Dup,
            Overhead::Drop,
            Overhead::Ack,
            Overhead::Heartbeat,
            Overhead::Suspect,
            Overhead::Nack,
            Overhead::Repl,
            Overhead::Interest,
            Overhead::Hello,
        ];

        /// The counter name this kind is recorded under. The match is
        /// deliberately wildcard-free: extending the enum forces the name —
        /// and through [`ALL`], the overhead split — to follow.
        #[must_use]
        pub const fn name(self) -> &'static str {
            match self {
                Overhead::Retx => RETX,
                Overhead::Dup => DUP,
                Overhead::Drop => DROP,
                Overhead::Ack => ACK,
                Overhead::Heartbeat => HEARTBEAT,
                Overhead::Suspect => SUSPECT,
                Overhead::Nack => NACK,
                Overhead::Repl => REPL,
                Overhead::Interest => INTEREST,
                Overhead::Hello => HELLO,
            }
        }
    }

    // Compile-time exhaustiveness: VARIANTS must list every variant exactly
    // once, in order. Forgetting one fails this constant's evaluation.
    const _: () = {
        let mut i = 0;
        while i < Overhead::COUNT {
            assert!(
                Overhead::VARIANTS[i] as usize == i,
                "kinds::Overhead::VARIANTS must list every overhead kind in order"
            );
            i += 1;
        }
    };

    /// All fault/session bookkeeping kinds, for filtering reports. Derived
    /// from [`Overhead`] so it can never drift from the enum.
    pub const ALL: [&str; Overhead::COUNT] = {
        let mut out = [""; Overhead::COUNT];
        let mut i = 0;
        while i < Overhead::COUNT {
            out[i] = Overhead::VARIANTS[i].name();
            i += 1;
        }
        out
    };

    /// `true` iff `kind` is fault/session/failover bookkeeping rather than
    /// protocol traffic.
    #[must_use]
    pub fn is_overhead(kind: &str) -> bool {
        let mut i = 0;
        while i < Overhead::COUNT {
            if ALL[i].as_bytes() == kind.as_bytes() {
                return true;
            }
            i += 1;
        }
        false
    }
}

/// Shared, thread-safe message counters, one map per node.
///
/// Cheap to clone (internally shared).
///
/// # Examples
///
/// ```
/// use memcore::{NetStats, NodeId};
///
/// let stats = NetStats::new(2);
/// stats.record(NodeId::new(0), "READ");
/// stats.record(NodeId::new(0), "READ");
/// stats.record(NodeId::new(1), "R_REPLY");
/// let snap = stats.snapshot();
/// assert_eq!(snap.total(), 3);
/// assert_eq!(snap.node_total(NodeId::new(0)), 2);
/// assert_eq!(snap.kind_total("READ"), 2);
/// ```
#[derive(Clone, Debug)]
pub struct NetStats {
    nodes: Arc<Vec<Mutex<BTreeMap<&'static str, u64>>>>,
}

impl NetStats {
    /// Creates counters for `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        NetStats {
            nodes: Arc::new((0..n).map(|_| Mutex::new(BTreeMap::new())).collect()),
        }
    }

    /// Counts one message of `kind` sent by `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn record(&self, node: NodeId, kind: &'static str) {
        self.record_n(node, kind, 1);
    }

    /// Adds `n` to the counter for (`node`, `kind`) — used for byte
    /// accounting, where one message contributes its encoded size.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn record_n(&self, node: NodeId, kind: &'static str, n: u64) {
        *self.nodes[node.index()].lock().entry(kind).or_insert(0) += n;
    }

    /// Takes a consistent copy of all counters.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            per_node: self
                .nodes
                .iter()
                .map(|m| {
                    m.lock()
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), *v))
                        .collect()
                })
                .collect(),
        }
    }

    /// Resets all counters to zero (scopes measurement to a program phase).
    pub fn clear(&self) {
        for m in self.nodes.iter() {
            m.lock().clear();
        }
    }
}

/// An immutable copy of message counters at one instant.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    per_node: Vec<BTreeMap<String, u64>>,
}

impl StatsSnapshot {
    /// Total messages sent system-wide.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_node.iter().flat_map(|m| m.values()).sum()
    }

    /// Total messages sent by one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn node_total(&self, node: NodeId) -> u64 {
        self.per_node[node.index()].values().sum()
    }

    /// Total messages of one kind, across nodes.
    #[must_use]
    pub fn kind_total(&self, kind: &str) -> u64 {
        self.per_node.iter().filter_map(|m| m.get(kind)).sum()
    }

    /// Count for a single (node, kind) cell.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn get(&self, node: NodeId, kind: &str) -> u64 {
        self.per_node[node.index()].get(kind).copied().unwrap_or(0)
    }

    /// Per-kind totals, for reporting.
    #[must_use]
    pub fn by_kind(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for m in &self.per_node {
            for (k, v) in m {
                *out.entry(k.clone()).or_insert(0) += v;
            }
        }
        out
    }

    /// Messages per node, in node order.
    #[must_use]
    pub fn per_node_totals(&self) -> Vec<u64> {
        self.per_node.iter().map(|m| m.values().sum()).collect()
    }

    /// Total fault/session bookkeeping messages ([`kinds::ALL`]): the
    /// overhead the reliable-delivery layer paid on top of the protocol.
    #[must_use]
    pub fn overhead_total(&self) -> u64 {
        kinds::ALL.iter().map(|k| self.kind_total(k)).sum()
    }

    /// Total protocol messages, excluding fault/session bookkeeping — the
    /// quantity the paper's §4.1 message-counting argument is about.
    #[must_use]
    pub fn protocol_total(&self) -> u64 {
        self.total() - self.overhead_total()
    }

    /// The difference `self - earlier`, cell-wise (saturating at zero).
    ///
    /// Used to measure one phase of a long-running program.
    #[must_use]
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut per_node = Vec::with_capacity(self.per_node.len());
        for (i, m) in self.per_node.iter().enumerate() {
            let base = earlier.per_node.get(i);
            per_node.push(
                m.iter()
                    .map(|(k, v)| {
                        let b = base.and_then(|bm| bm.get(k)).copied().unwrap_or(0);
                        (k.clone(), v.saturating_sub(b))
                    })
                    .filter(|(_, v)| *v > 0)
                    .collect(),
            );
        }
        StatsSnapshot { per_node }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total messages: {}", self.total())?;
        for (kind, count) in self.by_kind() {
            writeln!(f, "  {kind:<12} {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_node_and_kind() {
        let stats = NetStats::new(3);
        stats.record(NodeId::new(0), "READ");
        stats.record(NodeId::new(1), "READ");
        stats.record(NodeId::new(1), "WRITE");
        let snap = stats.snapshot();
        assert_eq!(snap.total(), 3);
        assert_eq!(snap.node_total(NodeId::new(1)), 2);
        assert_eq!(snap.kind_total("READ"), 2);
        assert_eq!(snap.kind_total("WRITE"), 1);
        assert_eq!(snap.get(NodeId::new(1), "WRITE"), 1);
        assert_eq!(snap.get(NodeId::new(2), "WRITE"), 0);
        assert_eq!(snap.per_node_totals(), vec![1, 2, 0]);
    }

    #[test]
    fn clear_zeroes_counters() {
        let stats = NetStats::new(1);
        stats.record(NodeId::new(0), "READ");
        stats.clear();
        assert_eq!(stats.snapshot().total(), 0);
    }

    #[test]
    fn since_subtracts_cellwise() {
        let stats = NetStats::new(2);
        stats.record(NodeId::new(0), "READ");
        let before = stats.snapshot();
        stats.record(NodeId::new(0), "READ");
        stats.record(NodeId::new(1), "WRITE");
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.total(), 2);
        assert_eq!(delta.get(NodeId::new(0), "READ"), 1);
        assert_eq!(delta.get(NodeId::new(1), "WRITE"), 1);
    }

    #[test]
    fn by_kind_aggregates_across_nodes() {
        let stats = NetStats::new(2);
        stats.record(NodeId::new(0), "A");
        stats.record(NodeId::new(1), "A");
        stats.record(NodeId::new(1), "B");
        let by_kind = stats.snapshot().by_kind();
        assert_eq!(by_kind["A"], 2);
        assert_eq!(by_kind["B"], 1);
    }

    #[test]
    fn overhead_is_separable_from_protocol() {
        let stats = NetStats::new(2);
        stats.record(NodeId::new(0), "READ");
        stats.record(NodeId::new(0), kinds::RETX);
        stats.record(NodeId::new(1), kinds::ACK);
        stats.record(NodeId::new(1), kinds::DUP);
        stats.record(NodeId::new(1), kinds::DROP);
        let snap = stats.snapshot();
        assert_eq!(snap.overhead_total(), 4);
        assert_eq!(snap.protocol_total(), 1);
        assert_eq!(snap.total(), 5);
    }

    #[test]
    fn failover_kinds_count_as_overhead() {
        // The exhaustive enum is what keeps this true: HEARTBEAT/SUSPECT/
        // NACK/REPL must land on the overhead side of the split.
        let stats = NetStats::new(1);
        stats.record(NodeId::new(0), "WRITE");
        stats.record(NodeId::new(0), kinds::HEARTBEAT);
        stats.record(NodeId::new(0), kinds::SUSPECT);
        stats.record(NodeId::new(0), kinds::NACK);
        stats.record(NodeId::new(0), kinds::REPL);
        stats.record(NodeId::new(0), kinds::INTEREST);
        stats.record(NodeId::new(0), kinds::HELLO);
        let snap = stats.snapshot();
        assert_eq!(snap.overhead_total(), 6);
        assert_eq!(snap.protocol_total(), 1);
        for kind in kinds::ALL {
            assert!(kinds::is_overhead(kind), "{kind} misclassified");
        }
        assert!(!kinds::is_overhead("WRITE"));
        assert!(!kinds::is_overhead(kinds::BATCH), "BATCH is envelope-only");
        for (i, v) in kinds::Overhead::VARIANTS.iter().enumerate() {
            assert_eq!(kinds::ALL[i], v.name());
        }
    }

    #[test]
    fn display_lists_kinds() {
        let stats = NetStats::new(1);
        stats.record(NodeId::new(0), "READ");
        let text = stats.snapshot().to_string();
        assert!(text.contains("total messages: 1"));
        assert!(text.contains("READ"));
    }

    #[test]
    fn clones_share_counters() {
        let stats = NetStats::new(1);
        let stats2 = stats.clone();
        stats2.record(NodeId::new(0), "READ");
        assert_eq!(stats.snapshot().total(), 1);
    }
}
