//! Identifiers: processes, locations, pages and unique write tags.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one of the `n` processes sharing the memory.
///
/// # Examples
///
/// ```
/// let p = memcore::NodeId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a process identifier from its index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The process index, usable to index per-process arrays and vector
    /// clock components.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

/// A location (address) in the causal memory namespace `N`.
///
/// # Examples
///
/// ```
/// let x = memcore::Location::new(10);
/// assert_eq!(x.page(4).index(), 2);
/// assert_eq!(x.page_offset(4), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Location(u32);

impl Location {
    /// Creates a location from its flat index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        Location(index)
    }

    /// The flat index of this location.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The page containing this location for a given page size.
    ///
    /// Page size 1 gives the paper's per-location protocol; larger sizes are
    /// the paper's "scaling the unit of sharing to a page" enhancement.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn page(self, page_size: u32) -> PageId {
        assert!(page_size > 0, "page size must be positive");
        PageId(self.0 / page_size)
    }

    /// The offset of this location within its page.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn page_offset(self, page_size: u32) -> usize {
        assert!(page_size > 0, "page size must be positive");
        (self.0 % page_size) as usize
    }
}

impl fmt::Debug for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for Location {
    fn from(index: u32) -> Self {
        Location(index)
    }
}

/// A page: the unit of ownership, caching and invalidation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(u32);

impl PageId {
    /// Creates a page identifier from its index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        PageId(index)
    }

    /// The page index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The first location of this page for a given page size.
    #[must_use]
    pub fn first_location(self, page_size: u32) -> Location {
        Location(self.0 * page_size)
    }

    /// Iterates the locations contained in this page.
    pub fn locations(self, page_size: u32) -> impl Iterator<Item = Location> {
        let base = self.0 * page_size;
        (0..page_size).map(move |o| Location(base + o))
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// The ownership epoch of a page under the owner-failover layer.
///
/// The Figure-4 protocol assigns each page one static owner; the failover
/// layer makes that role migratable by pairing every page with an epoch
/// that is bumped on each migration. Requests and replies carry the
/// requester's epoch; an owner serves a request only at its own current
/// epoch and NACKs stale ones with a redirect. Epoch `0` is the static
/// assignment, so a cluster with failover disabled never leaves it.
///
/// Epochs are totally ordered and the highest epoch always wins, which is
/// what resolves dueling migrations deterministically.
///
/// # Examples
///
/// ```
/// use memcore::OwnerEpoch;
///
/// let e = OwnerEpoch::ZERO;
/// assert_eq!(e.next().get(), 1);
/// assert!(e < e.next());
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct OwnerEpoch(u32);

impl OwnerEpoch {
    /// The initial epoch: the static ownership assignment.
    pub const ZERO: OwnerEpoch = OwnerEpoch(0);

    /// Creates an epoch from its counter value.
    #[must_use]
    pub fn new(epoch: u32) -> Self {
        OwnerEpoch(epoch)
    }

    /// The raw counter value.
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }

    /// The epoch after one more migration.
    #[must_use]
    pub fn next(self) -> Self {
        OwnerEpoch(self.0 + 1)
    }
}

impl fmt::Display for OwnerEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Uniquely tags a write operation.
///
/// The paper assumes "all writes are unique (easily implemented by
/// associating a timestamp with writes)"; this is that timestamp. It lets
/// the executable specification recover the exact reads-from relation, and
/// it lets the owner protocol detect concurrent writes for the §4.2
/// owner-favored resolution policy.
///
/// The distinguished initial writes of value 0/⊥ that the paper assumes for
/// every location are represented by [`WriteId::initial`].
///
/// # Examples
///
/// ```
/// use memcore::{Location, NodeId, WriteId};
///
/// let w = WriteId::new(NodeId::new(1), 4);
/// assert_eq!(w.writer(), Some(NodeId::new(1)));
/// assert_eq!(WriteId::initial(Location::new(9)).writer(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WriteId {
    writer: u32,
    seq: u64,
}

const INITIAL_WRITER: u32 = u32::MAX;

impl WriteId {
    /// Tags the `seq`th write performed by `writer`.
    ///
    /// # Panics
    ///
    /// Panics if `writer` is the reserved initial-write marker
    /// (`u32::MAX`).
    #[must_use]
    pub fn new(writer: NodeId, seq: u64) -> Self {
        assert_ne!(
            writer.index() as u32,
            INITIAL_WRITER,
            "node index reserved for initial writes"
        );
        WriteId {
            writer: writer.index() as u32,
            seq,
        }
    }

    /// The distinguished initial write to `loc`, causally preceding all
    /// operations of every process.
    #[must_use]
    pub fn initial(loc: Location) -> Self {
        WriteId {
            writer: INITIAL_WRITER,
            seq: loc.index() as u64,
        }
    }

    /// `true` iff this is an initial write.
    #[must_use]
    pub fn is_initial(self) -> bool {
        self.writer == INITIAL_WRITER
    }

    /// The process that performed this write, or `None` for initial writes.
    #[must_use]
    pub fn writer(self) -> Option<NodeId> {
        (!self.is_initial()).then(|| NodeId::new(self.writer))
    }

    /// The per-writer sequence number (the location index for initial
    /// writes).
    #[must_use]
    pub fn seq(self) -> u64 {
        self.seq
    }
}

impl fmt::Debug for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_initial() {
            write!(f, "w_init(x{})", self.seq)
        } else {
            write!(f, "w{}#{}", self.writer, self.seq)
        }
    }
}

impl fmt::Display for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The static partition of pages among processors used by every owner
/// protocol in this workspace: page `p` is owned by processor
/// `p mod n`.
///
/// The paper partitions the shared memory among processors ("the locations
/// assigned to a processor are *owned* by that processor") but leaves the
/// assignment abstract; round-robin is the simplest total assignment and the
/// experiments pick namespaces so that each application variable lands on
/// the node the paper's analysis assumes.
///
/// # Examples
///
/// ```
/// use memcore::{Location, NodeId, RoundRobinOwners};
///
/// let owners = RoundRobinOwners::new(3, 1);
/// assert_eq!(owners.owner_of(Location::new(4)), NodeId::new(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobinOwners {
    nodes: u32,
    page_size: u32,
}

impl RoundRobinOwners {
    /// Creates the partition for `nodes` processors and a given page size.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `page_size` is zero.
    #[must_use]
    pub fn new(nodes: u32, page_size: u32) -> Self {
        assert!(nodes > 0, "at least one node required");
        assert!(page_size > 0, "page size must be positive");
        RoundRobinOwners { nodes, page_size }
    }

    /// Number of processors in the partition.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// The configured page size.
    #[must_use]
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// The owner of a page.
    #[must_use]
    pub fn owner_of_page(&self, page: PageId) -> NodeId {
        NodeId::new(page.index() as u32 % self.nodes)
    }

    /// The owner of a location.
    #[must_use]
    pub fn owner_of(&self, loc: Location) -> NodeId {
        self.owner_of_page(loc.page(self.page_size))
    }

    /// `true` iff `node` owns `loc`.
    #[must_use]
    pub fn owns(&self, node: NodeId, loc: Location) -> bool {
        self.owner_of(loc) == node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let p = NodeId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(NodeId::from(7u32), p);
        assert_eq!(format!("{p}"), "P7");
    }

    #[test]
    fn location_page_math() {
        let x = Location::new(13);
        assert_eq!(x.page(4), PageId::new(3));
        assert_eq!(x.page_offset(4), 1);
        assert_eq!(x.page(1), PageId::new(13));
        assert_eq!(x.page_offset(1), 0);
    }

    #[test]
    #[should_panic(expected = "page size must be positive")]
    fn zero_page_size_panics() {
        let _ = Location::new(0).page(0);
    }

    #[test]
    fn page_locations_enumerate_in_order() {
        let locs: Vec<_> = PageId::new(2).locations(3).collect();
        assert_eq!(
            locs,
            vec![Location::new(6), Location::new(7), Location::new(8)]
        );
        assert_eq!(PageId::new(2).first_location(3), Location::new(6));
    }

    #[test]
    fn write_ids_are_unique_per_writer_seq() {
        let a = WriteId::new(NodeId::new(0), 0);
        let b = WriteId::new(NodeId::new(0), 1);
        let c = WriteId::new(NodeId::new(1), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.writer(), Some(NodeId::new(0)));
        assert_eq!(b.seq(), 1);
    }

    #[test]
    fn initial_writes_are_distinguished_per_location() {
        let i0 = WriteId::initial(Location::new(0));
        let i1 = WriteId::initial(Location::new(1));
        assert!(i0.is_initial());
        assert_ne!(i0, i1);
        assert_eq!(i0.writer(), None);
        assert_eq!(format!("{i1:?}"), "w_init(x1)");
    }

    #[test]
    fn round_robin_partitions_all_pages() {
        let owners = RoundRobinOwners::new(4, 2);
        assert_eq!(owners.nodes(), 4);
        assert_eq!(owners.page_size(), 2);
        // Page p -> node p % 4; locations 2p, 2p+1.
        assert_eq!(owners.owner_of(Location::new(0)), NodeId::new(0));
        assert_eq!(owners.owner_of(Location::new(1)), NodeId::new(0));
        assert_eq!(owners.owner_of(Location::new(2)), NodeId::new(1));
        assert_eq!(owners.owner_of(Location::new(9)), NodeId::new(0));
        assert!(owners.owns(NodeId::new(1), Location::new(3)));
        assert!(!owners.owns(NodeId::new(2), Location::new(3)));
    }
}
