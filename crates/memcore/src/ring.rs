//! Consistent-hash page ownership: the scale-out generalization of the
//! failover layer's `(static_owner + e) mod n` succession.
//!
//! [`HashRingOwners`] places every node on a hash ring at
//! [`HashRingOwners::vnodes`] pseudo-random points (virtual nodes) and
//! assigns each page to the first node clockwise of the page's own hash.
//! Ownership stays *computed, never stored* — any node can derive any
//! page's owner (at any epoch) from the membership count alone, which is
//! what lets the failover layer's NACK/redirect machinery work unchanged
//! on top: epoch `e` of a page is served by the `e`-th distinct node
//! walking clockwise from the page's position.
//!
//! Compared to round-robin, the ring buys two scale properties:
//!
//! * **Minimal reshuffle.** Growing the membership from `n` to `n+1`
//!   nodes moves only the pages whose arc the new node's points capture —
//!   O(pages/n) in expectation — instead of remapping almost everything
//!   the way `page % n` does.
//! * **A topology for scoped probing.** The ring induces a deterministic
//!   circular node order, so heartbeats/suspicion can be scoped to the
//!   `k` ring successors ([`OwnerMap::neighbors`]) rather than all pairs.
//!
//! Hashing is a fixed splitmix64 — fully deterministic across runs and
//! processes, like every other seed-driven component in this workspace.

use std::fmt;

use crate::{NodeId, OwnerMap, PageId};

/// Finalizer from splitmix64: a fast, well-mixed, deterministic 64-bit
/// hash. Good enough for ring placement (we need spread, not adversarial
/// collision resistance) and dependency-free.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Where node `node`'s `v`th virtual node sits on the ring.
fn vnode_point(node: u32, v: u32) -> u64 {
    mix64(((node as u64) << 32) | v as u64)
}

/// Where a page sits on the ring (salted so pages and vnodes draw from
/// different streams even at equal raw values).
fn page_point(page: u32) -> u64 {
    mix64(0x5CA1_AB1E_0000_0000 ^ page as u64)
}

/// Consistent-hash ownership with virtual nodes.
///
/// # Examples
///
/// ```
/// use memcore::{HashRingOwners, OwnerMap, PageId};
///
/// let ring = HashRingOwners::new(4, 1, 64);
/// let page = PageId::new(7);
/// let owner = ring.owner_of_page(page);
/// // Epoch 0 is the static owner; epoch 1 is the next distinct node
/// // clockwise, and succession cycles through all members.
/// assert_eq!(ring.owner_at_epoch(page, 0), owner);
/// assert_ne!(ring.owner_at_epoch(page, 1), owner);
/// assert_eq!(ring.owner_at_epoch(page, 4), owner);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashRingOwners {
    nodes: u32,
    page_size: u32,
    vnodes: u32,
    /// All virtual-node points, sorted by position (ties broken by node
    /// id, so the ring is well-defined even under hash collisions).
    ring: Vec<(u64, NodeId)>,
    /// The induced circular node order: nodes sorted by their first
    /// (lowest) point on the ring. Drives `neighbors`/`predecessors`.
    order: Vec<NodeId>,
    /// Inverse of `order`: `pos[i]` is node `i`'s rank in ring order.
    pos: Vec<u32>,
}

impl HashRingOwners {
    /// Builds the ring for `nodes` members with `vnodes` virtual nodes
    /// each.
    ///
    /// More virtual nodes smooth the page distribution (relative spread
    /// shrinks roughly with `1/sqrt(vnodes)`); 64 is plenty for the
    /// cluster sizes the sim runs.
    ///
    /// # Panics
    ///
    /// Panics if `nodes`, `page_size`, or `vnodes` is zero.
    #[must_use]
    pub fn new(nodes: u32, page_size: u32, vnodes: u32) -> Self {
        assert!(nodes > 0, "at least one node required");
        assert!(page_size > 0, "page size must be positive");
        assert!(vnodes > 0, "at least one virtual node per node required");
        let mut ring = Vec::with_capacity(nodes as usize * vnodes as usize);
        for node in 0..nodes {
            for v in 0..vnodes {
                ring.push((vnode_point(node, v), NodeId::new(node)));
            }
        }
        ring.sort_unstable();

        // First point of each node, in ring position order.
        let mut firsts: Vec<(u64, NodeId)> = (0..nodes)
            .map(|node| {
                let lowest = (0..vnodes).map(|v| vnode_point(node, v)).min().unwrap();
                (lowest, NodeId::new(node))
            })
            .collect();
        firsts.sort_unstable();
        let order: Vec<NodeId> = firsts.into_iter().map(|(_, node)| node).collect();
        let mut pos = vec![0u32; nodes as usize];
        for (rank, node) in order.iter().enumerate() {
            pos[node.index()] = rank as u32;
        }

        HashRingOwners {
            nodes,
            page_size,
            vnodes,
            ring,
            order,
            pos,
        }
    }

    /// Number of processors on the ring.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Locations per page.
    #[must_use]
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Virtual nodes per member.
    #[must_use]
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Index into `ring` of the first point at or clockwise of `h`.
    fn successor_index(&self, h: u64) -> usize {
        match self.ring.binary_search(&(h, NodeId::new(0))) {
            Ok(i) => i,
            Err(i) if i == self.ring.len() => 0,
            Err(i) => i,
        }
    }

    /// The distinct nodes met walking clockwise from `page`'s position:
    /// element 0 is the static owner, element `e % n` serves epoch `e`.
    fn succession(&self, page: PageId) -> Vec<NodeId> {
        let start = self.successor_index(page_point(page.index() as u32));
        let mut seen = vec![false; self.nodes as usize];
        let mut walk = Vec::with_capacity(self.nodes as usize);
        for i in 0..self.ring.len() {
            let (_, node) = self.ring[(start + i) % self.ring.len()];
            if !seen[node.index()] {
                seen[node.index()] = true;
                walk.push(node);
                if walk.len() == self.nodes as usize {
                    break;
                }
            }
        }
        walk
    }
}

impl OwnerMap for HashRingOwners {
    fn nodes(&self) -> u32 {
        self.nodes
    }

    fn page_size(&self) -> u32 {
        self.page_size
    }

    fn owner_of_page(&self, page: PageId) -> NodeId {
        let at = self.successor_index(page_point(page.index() as u32));
        self.ring[at].1
    }

    fn owner_at_epoch(&self, page: PageId, epoch: u32) -> NodeId {
        if epoch == 0 {
            return self.owner_of_page(page);
        }
        let walk = self.succession(page);
        walk[(epoch as usize) % walk.len()]
    }

    fn neighbors(&self, node: NodeId, k: u32) -> Vec<NodeId> {
        let n = self.nodes;
        let k = k.min(n.saturating_sub(1));
        let rank = self.pos[node.index()];
        (1..=k)
            .map(|step| self.order[((rank + step) % n) as usize])
            .collect()
    }

    fn predecessors(&self, node: NodeId, k: u32) -> Vec<NodeId> {
        let n = self.nodes;
        let k = k.min(n.saturating_sub(1));
        let rank = self.pos[node.index()];
        (1..=k)
            .map(|step| self.order[((rank + n - step) % n) as usize])
            .collect()
    }
}

impl fmt::Display for HashRingOwners {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HashRingOwners({} nodes x {} vnodes, page_size {})",
            self.nodes, self.vnodes, self.page_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Location;

    #[test]
    fn ring_is_deterministic_and_total() {
        let a = HashRingOwners::new(5, 2, 16);
        let b = HashRingOwners::new(5, 2, 16);
        for p in 0..1000u32 {
            let page = PageId::new(p);
            assert_eq!(a.owner_of_page(page), b.owner_of_page(page));
            assert!(a.owner_of_page(page).index() < 5);
        }
        assert_eq!(a, b);
        assert_eq!(a.owner_of(Location::new(3)), a.owner_of_page(PageId::new(1)));
        assert!(a.owns(a.owner_of(Location::new(9)), Location::new(9)));
    }

    #[test]
    fn epoch_zero_is_static_owner_and_succession_cycles() {
        let ring = HashRingOwners::new(4, 1, 32);
        for p in 0..64u32 {
            let page = PageId::new(p);
            assert_eq!(ring.owner_at_epoch(page, 0), ring.owner_of_page(page));
            // One full cycle returns to the static owner...
            assert_eq!(ring.owner_at_epoch(page, 4), ring.owner_of_page(page));
            // ...and the first n epochs visit n distinct nodes.
            let mut seen: Vec<NodeId> = (0..4).map(|e| ring.owner_at_epoch(page, e)).collect();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), 4, "page {p} epochs revisit a node early");
        }
    }

    #[test]
    fn neighbors_and_predecessors_are_inverse() {
        let ring = HashRingOwners::new(9, 1, 8);
        for k in [1u32, 2, 3, 8, 20] {
            for i in 0..9u32 {
                let me = NodeId::new(i);
                for peer in ring.neighbors(me, k) {
                    assert!(
                        ring.predecessors(peer, k).contains(&me),
                        "{me} heartbeats {peer} but {peer} does not monitor {me} (k={k})"
                    );
                }
                for peer in ring.predecessors(me, k) {
                    assert!(ring.neighbors(peer, k).contains(&me));
                }
            }
        }
        // k >= n-1 degenerates to all peers.
        assert_eq!(ring.neighbors(NodeId::new(0), 99).len(), 8);
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let ring = HashRingOwners::new(1, 4, 8);
        assert_eq!(ring.owner_of_page(PageId::new(123)), NodeId::new(0));
        assert_eq!(ring.owner_at_epoch(PageId::new(123), 7), NodeId::new(0));
        assert!(ring.neighbors(NodeId::new(0), 3).is_empty());
    }
}
