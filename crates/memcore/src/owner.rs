//! Ownership assignment: which processor owns which page.
//!
//! The paper partitions the shared memory among processors ("the locations
//! assigned to a processor are *owned* by that processor") but leaves the
//! assignment policy abstract. Engines take any [`OwnerMap`]; the
//! applications use [`ExplicitOwners`] to pin each variable to the node the
//! paper's analysis assumes (e.g. `P_i` owns `x_i` and its handshake bits in
//! §4.1, and row `i` of the dictionary in §4.2).

use std::fmt;
use std::sync::Arc;

use crate::{Location, NodeId, PageId, RoundRobinOwners};

/// Maps every page to its owning processor.
///
/// Implementations must be total over the namespace and stable for the
/// lifetime of a cluster: this is the *static* (epoch-zero) assignment the
/// paper's protocol uses directly. The owner-failover layer layers
/// per-page [`OwnerEpoch`](crate::OwnerEpoch)s on top — the node serving a
/// page at epoch `e` is derived deterministically from the static owner —
/// so the map itself never changes even when the serving node does.
pub trait OwnerMap: Send + Sync + 'static {
    /// Number of processors.
    fn nodes(&self) -> u32;

    /// The unit of sharing, in locations per page. Page size 1 is the
    /// paper's per-location protocol.
    fn page_size(&self) -> u32;

    /// The owner of `page`.
    fn owner_of_page(&self, page: PageId) -> NodeId;

    /// The owner of the page containing `loc`.
    fn owner_of(&self, loc: Location) -> NodeId {
        self.owner_of_page(loc.page(self.page_size()))
    }

    /// `true` iff `node` owns the page containing `loc`.
    fn owns(&self, node: NodeId, loc: Location) -> bool {
        self.owner_of(loc) == node
    }

    /// The node serving `page` at ownership epoch `epoch`.
    ///
    /// Epoch 0 must equal [`OwnerMap::owner_of_page`]; each epoch bump
    /// (one suspected-owner migration) moves the page to the next node in
    /// the map's deterministic succession order. The default is the
    /// failover layer's original formula, `(static_owner + e) mod n`;
    /// ring-structured maps override it so succession follows the ring.
    fn owner_at_epoch(&self, page: PageId, epoch: u32) -> NodeId {
        let base = self.owner_of_page(page).index() as u32;
        NodeId::new((base + epoch % self.nodes()) % self.nodes())
    }

    /// `node`'s `k` distinct successors in the map's topology order — the
    /// peers it sends failure-detector heartbeats to when probing is
    /// scoped instead of all-pairs.
    ///
    /// Must be the exact inverse of [`OwnerMap::predecessors`]:
    /// `a ∈ neighbors(b, k)` iff `b ∈ predecessors(a, k)`. The default
    /// order is node-index succession; ring maps override it with ring
    /// order. `k >= n-1` degenerates to all peers.
    fn neighbors(&self, node: NodeId, k: u32) -> Vec<NodeId> {
        let n = self.nodes();
        let k = k.min(n.saturating_sub(1));
        (1..=k)
            .map(|step| NodeId::new((node.index() as u32 + step) % n))
            .collect()
    }

    /// `node`'s `k` distinct predecessors in the map's topology order —
    /// the peers whose heartbeats it expects when probing is scoped, i.e.
    /// exactly the nodes that list it in [`OwnerMap::neighbors`].
    fn predecessors(&self, node: NodeId, k: u32) -> Vec<NodeId> {
        let n = self.nodes();
        let k = k.min(n.saturating_sub(1));
        (1..=k)
            .map(|step| NodeId::new((node.index() as u32 + n - step) % n))
            .collect()
    }
}

impl OwnerMap for RoundRobinOwners {
    fn nodes(&self) -> u32 {
        RoundRobinOwners::nodes(self)
    }

    fn page_size(&self) -> u32 {
        RoundRobinOwners::page_size(self)
    }

    fn owner_of_page(&self, page: PageId) -> NodeId {
        RoundRobinOwners::owner_of_page(self, page)
    }
}

impl<T: OwnerMap + ?Sized> OwnerMap for Arc<T> {
    fn nodes(&self) -> u32 {
        (**self).nodes()
    }

    fn page_size(&self) -> u32 {
        (**self).page_size()
    }

    fn owner_of_page(&self, page: PageId) -> NodeId {
        (**self).owner_of_page(page)
    }

    fn owner_at_epoch(&self, page: PageId, epoch: u32) -> NodeId {
        (**self).owner_at_epoch(page, epoch)
    }

    fn neighbors(&self, node: NodeId, k: u32) -> Vec<NodeId> {
        (**self).neighbors(node, k)
    }

    fn predecessors(&self, node: NodeId, k: u32) -> Vec<NodeId> {
        (**self).predecessors(node, k)
    }
}

/// An explicit page-to-owner table.
///
/// # Examples
///
/// ```
/// use memcore::{ExplicitOwners, Location, NodeId, OwnerMap};
///
/// // Three pages, owned by P1, P0, P1 respectively; one location per page.
/// let owners = ExplicitOwners::new(2, 1, vec![
///     NodeId::new(1),
///     NodeId::new(0),
///     NodeId::new(1),
/// ]);
/// assert_eq!(owners.owner_of(Location::new(2)), NodeId::new(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplicitOwners {
    nodes: u32,
    page_size: u32,
    table: Vec<NodeId>,
}

impl ExplicitOwners {
    /// Creates an explicit assignment; `table[p]` owns page `p`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `page_size` is zero, the table is empty, or any
    /// entry names a node `>= nodes`.
    #[must_use]
    pub fn new(nodes: u32, page_size: u32, table: Vec<NodeId>) -> Self {
        assert!(nodes > 0, "at least one node required");
        assert!(page_size > 0, "page size must be positive");
        assert!(!table.is_empty(), "owner table must not be empty");
        for owner in &table {
            assert!(
                (owner.index() as u32) < nodes,
                "owner {owner} out of range for {nodes} nodes"
            );
        }
        ExplicitOwners {
            nodes,
            page_size,
            table,
        }
    }

    /// Number of pages covered by the table. Pages past the end fall back
    /// to round-robin.
    #[must_use]
    pub fn table_len(&self) -> usize {
        self.table.len()
    }
}

impl OwnerMap for ExplicitOwners {
    fn nodes(&self) -> u32 {
        self.nodes
    }

    fn page_size(&self) -> u32 {
        self.page_size
    }

    fn owner_of_page(&self, page: PageId) -> NodeId {
        self.table
            .get(page.index())
            .copied()
            .unwrap_or_else(|| NodeId::new(page.index() as u32 % self.nodes))
    }
}

impl fmt::Display for ExplicitOwners {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ExplicitOwners({} nodes, {} pages)",
            self.nodes,
            self.table.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_implements_owner_map() {
        let owners: &dyn OwnerMap = &RoundRobinOwners::new(3, 2);
        assert_eq!(owners.nodes(), 3);
        assert_eq!(owners.page_size(), 2);
        assert_eq!(owners.owner_of(Location::new(2)), NodeId::new(1));
        assert!(owners.owns(NodeId::new(1), Location::new(3)));
    }

    #[test]
    fn explicit_table_lookup() {
        let owners =
            ExplicitOwners::new(3, 1, vec![NodeId::new(2), NodeId::new(2), NodeId::new(0)]);
        assert_eq!(owners.owner_of_page(PageId::new(0)), NodeId::new(2));
        assert_eq!(owners.owner_of_page(PageId::new(2)), NodeId::new(0));
        assert_eq!(owners.table_len(), 3);
        // Past the table: round-robin fallback.
        assert_eq!(owners.owner_of_page(PageId::new(4)), NodeId::new(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_rejects_out_of_range_owner() {
        let _ = ExplicitOwners::new(2, 1, vec![NodeId::new(5)]);
    }

    #[test]
    fn arc_delegation_works() {
        let owners = Arc::new(RoundRobinOwners::new(2, 1));
        assert_eq!(owners.owner_of(Location::new(3)), NodeId::new(1));
        let dynamic: Arc<dyn OwnerMap> = owners;
        assert_eq!(dynamic.owner_of(Location::new(3)), NodeId::new(1));
    }
}
