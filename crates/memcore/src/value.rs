//! Values stored in the shared memory.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Bound alias for types that can live in a shared-memory location.
///
/// Blanket-implemented; any `Clone + Debug + Send + Sync + 'static` type
/// qualifies, so applications define their own word types (the solver uses
/// one with `f64` and `bool` arms, the dictionary one with key entries).
pub trait Value: Clone + fmt::Debug + Send + Sync + 'static {}

impl<T: Clone + fmt::Debug + Send + Sync + 'static> Value for T {}

/// A convenient general-purpose word type for examples and tests.
///
/// The paper's example executions store small integers and booleans; `Word`
/// covers those plus floats so the quickstart and figure reproductions can
/// share one memory.
///
/// `Word::Zero` plays the role of the paper's "initial writes to all
/// locations of the value 0" and is the [`Default`].
///
/// # Examples
///
/// ```
/// use memcore::Word;
///
/// assert_eq!(Word::default(), Word::Zero);
/// assert_eq!(Word::from(5i64), Word::Int(5));
/// assert_eq!(Word::from(true), Word::Bool(true));
/// assert_eq!(Word::Int(5).as_int(), Some(5));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Word {
    /// The initial value 0 the paper assumes for every location.
    #[default]
    Zero,
    /// An integer, as used by the paper's example executions.
    Int(i64),
    /// A boolean flag, as used by the solver's handshake bits.
    Bool(bool),
    /// A floating-point value, as used by the solver's vector elements.
    Float(f64),
}

impl Word {
    /// The integer payload, treating `Zero` as `0`.
    ///
    /// Returns `None` for non-integer words.
    #[must_use]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Word::Zero => Some(0),
            Word::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean payload, treating `Zero` as `false` (the paper's "all
    /// booleans are initially False").
    ///
    /// Returns `None` for non-boolean words.
    #[must_use]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Word::Zero => Some(false),
            Word::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The float payload, treating `Zero` as `0.0`.
    ///
    /// Returns `None` for non-float words.
    #[must_use]
    pub fn as_float(self) -> Option<f64> {
        match self {
            Word::Zero => Some(0.0),
            Word::Float(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Word::Zero => write!(f, "0"),
            Word::Int(v) => write!(f, "{v}"),
            Word::Bool(v) => write!(f, "{}", if *v { "T" } else { "F" }),
            Word::Float(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Word {
    fn from(v: i64) -> Self {
        Word::Int(v)
    }
}

impl From<bool> for Word {
    fn from(v: bool) -> Self {
        Word::Bool(v)
    }
}

impl From<f64> for Word {
    fn from(v: f64) -> Self {
        Word::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        assert_eq!(Word::default(), Word::Zero);
    }

    #[test]
    fn zero_coerces_to_every_payload() {
        assert_eq!(Word::Zero.as_int(), Some(0));
        assert_eq!(Word::Zero.as_bool(), Some(false));
        assert_eq!(Word::Zero.as_float(), Some(0.0));
    }

    #[test]
    fn payload_accessors_reject_mismatched_kinds() {
        assert_eq!(Word::Bool(true).as_int(), None);
        assert_eq!(Word::Int(1).as_bool(), None);
        assert_eq!(Word::Bool(false).as_float(), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Word::Int(5).to_string(), "5");
        assert_eq!(Word::Bool(true).to_string(), "T");
        assert_eq!(Word::Bool(false).to_string(), "F");
        assert_eq!(Word::Zero.to_string(), "0");
    }

    #[test]
    fn conversions() {
        assert_eq!(Word::from(2i64), Word::Int(2));
        assert_eq!(Word::from(false), Word::Bool(false));
        assert_eq!(Word::from(1.5f64), Word::Float(1.5));
    }
}
