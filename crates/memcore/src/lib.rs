//! Shared vocabulary for the causal-DSM workspace.
//!
//! Every engine in this workspace — the causal owner protocol
//! (`causal-dsm`), the atomic baseline (`atomic-dsm`) and the
//! causal-broadcast comparator (`broadcast-mem`) — speaks in terms of the
//! types defined here: process and location identifiers, unique write tags,
//! the [`SharedMemory`] trait that application code programs against,
//! operation records consumed by the executable specification
//! (`causal-spec`), and message statistics.
//!
//! Keeping the vocabulary in one crate is what lets the paper's point stand
//! in code form: *the same application source runs unchanged on causal and
//! atomic memory* (§4 of the paper), differing only in which engine's handle
//! is passed in.
//!
//! # Examples
//!
//! ```
//! use memcore::{Location, NodeId, WriteId};
//!
//! let loc = Location::new(7);
//! assert_eq!(loc.page(4).index(), 1); // locations 4..8 share page 1
//! let w = WriteId::new(NodeId::new(2), 1);
//! assert!(!w.is_initial());
//! assert!(WriteId::initial(loc).is_initial());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ids;
mod op;
mod owner;
mod ring;
mod stats;
mod value;

pub use error::MemoryError;
pub use ids::{Location, NodeId, OwnerEpoch, PageId, RoundRobinOwners, WriteId};
pub use op::{OpKind, OpRecord, Recorder};
pub use owner::{ExplicitOwners, OwnerMap};
pub use ring::HashRingOwners;
pub use stats::{kinds, NetStats, StatsSnapshot};
pub use value::{Value, Word};

/// The interface applications program against — the paper's plain shared
/// memory of locations, read and written one at a time.
///
/// Implemented by the per-process handles of every engine in this workspace.
/// `discard` is the paper's cache-drop action (§3.1, the `discard`
/// procedure); engines without caches implement it as a no-op.
///
/// # Examples
///
/// Application code is generic over the memory, exactly as the paper's
/// programs are written once and run on either consistency level:
///
/// ```
/// use memcore::{Location, MemoryError, SharedMemory};
///
/// fn bump<M: SharedMemory<i64>>(mem: &M, loc: Location) -> Result<i64, MemoryError> {
///     let v = mem.read(loc)?;
///     mem.write(loc, v + 1)?;
///     Ok(v + 1)
/// }
/// ```
pub trait SharedMemory<V: Value> {
    /// The process this handle performs operations as.
    fn node(&self) -> NodeId;

    /// Performs `r_i(x)` and returns the value read.
    ///
    /// # Errors
    ///
    /// Returns an error if the engine has shut down or the location is
    /// outside the configured namespace.
    fn read(&self, loc: Location) -> Result<V, MemoryError>;

    /// Performs `w_i(x)v`.
    ///
    /// # Errors
    ///
    /// Returns an error if the engine has shut down or the location is
    /// outside the configured namespace.
    fn write(&self, loc: Location, value: V) -> Result<(), MemoryError>;

    /// Drops any locally cached copy of `loc` (the paper's `discard`).
    ///
    /// Locations owned by this process are never invalidated, as in the
    /// paper; discarding them is a no-op.
    fn discard(&self, loc: Location);

    /// Performs `r_i(x)` and also reports which write the returned value
    /// came from, when the engine tracks write tags.
    ///
    /// Typed object layers (`dsm-objects`) use the tag to log which
    /// concrete writes each high-level operation observed, which is what
    /// lets the per-object sequential-spec checker reconstruct an
    /// operation's view. Engines without write tagging fall back to this
    /// default and report `None`; the causal engine overrides it.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SharedMemory::read`].
    fn read_tagged(&self, loc: Location) -> Result<(V, Option<WriteId>), MemoryError> {
        Ok((self.read(loc)?, None))
    }

    /// Performs `w_i(x)v` and reports the write's unique tag, when the
    /// engine assigns one.
    ///
    /// The counterpart to [`SharedMemory::read_tagged`]: typed object
    /// layers log the tag of every write an operation issued so the
    /// checker can match observations to their originating operations.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SharedMemory::write`].
    fn write_tagged(&self, loc: Location, value: V) -> Result<Option<WriteId>, MemoryError> {
        self.write(loc, value)?;
        Ok(None)
    }

    /// Discards then reads: forces the next read to consult the owner.
    ///
    /// This is the idiom the paper's liveness discussion calls for —
    /// "occasional execution of *discard* can … ensure eventual
    /// communication".
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SharedMemory::read`].
    fn read_fresh(&self, loc: Location) -> Result<V, MemoryError> {
        self.discard(loc);
        self.read(loc)
    }

    /// Spins (with discard, so progress is guaranteed) until `pred` holds
    /// for the value of `loc`, returning that value.
    ///
    /// This is the paper's `wait(B)` ("while (¬B) skip") made live on a
    /// caching DSM.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SharedMemory::read`].
    fn wait_until(&self, loc: Location, pred: &dyn Fn(&V) -> bool) -> Result<V, MemoryError> {
        loop {
            let v = self.read_fresh(loc)?;
            if pred(&v) {
                return Ok(v);
            }
            std::thread::yield_now();
        }
    }
}
