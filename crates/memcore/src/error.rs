//! Error type shared by all engines.

use std::error::Error;
use std::fmt;

use crate::{Location, NodeId};

/// Errors surfaced by [`SharedMemory`](crate::SharedMemory) operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemoryError {
    /// The engine (cluster) has been shut down; no further operations can
    /// complete.
    Shutdown,
    /// The location lies outside the configured namespace.
    OutOfRange {
        /// The offending location.
        loc: Location,
        /// The size of the namespace.
        namespace: usize,
    },
    /// A protocol message could not be delivered to its destination.
    Unreachable {
        /// The destination that could not be reached.
        dst: NodeId,
    },
    /// An owner round-trip did not complete within the configured timeout
    /// budget (timeout × retries) — the owner is unreachable or the network
    /// is losing traffic faster than the session layer can repair it.
    ///
    /// Recoverable: the operation it aborted is lost, but the handle stays
    /// usable — engines drop any late reply to a timed-out request, so a
    /// subsequent operation starts clean. With the owner-failover layer
    /// enabled a timeout additionally counts as suspicion evidence against
    /// the owner, and retries are redirected to its successor.
    Timeout {
        /// Whose reply was awaited.
        owner: NodeId,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::Shutdown => write!(f, "memory engine has shut down"),
            MemoryError::OutOfRange { loc, namespace } => {
                write!(
                    f,
                    "location {loc} outside namespace of {namespace} locations"
                )
            }
            MemoryError::Unreachable { dst } => {
                write!(f, "protocol message undeliverable to {dst}")
            }
            MemoryError::Timeout { owner } => {
                write!(f, "timed out waiting for a reply from owner {owner}")
            }
        }
    }
}

impl Error for MemoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_concisely() {
        assert_eq!(
            MemoryError::Shutdown.to_string(),
            "memory engine has shut down"
        );
        let e = MemoryError::OutOfRange {
            loc: Location::new(9),
            namespace: 4,
        };
        assert_eq!(
            e.to_string(),
            "location x9 outside namespace of 4 locations"
        );
        let u = MemoryError::Unreachable {
            dst: NodeId::new(2),
        };
        assert_eq!(u.to_string(), "protocol message undeliverable to P2");
        let t = MemoryError::Timeout {
            owner: NodeId::new(1),
        };
        assert_eq!(t.to_string(), "timed out waiting for a reply from owner P1");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<MemoryError>();
    }
}
