//! Configuration of the atomic baseline.

use std::fmt;
use std::sync::Arc;

use memcore::{OwnerMap, RoundRobinOwners, Value};

/// How invalidations are performed on writes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum InvalMode {
    /// Invalidation messages are sent but not acknowledged; the write
    /// completes as soon as they are *sent*. This is the accounting the
    /// paper's §4.1 analysis uses (`n − 1` extra messages per owner write)
    /// — cheaper, but in-flight invalidations can race reads.
    #[default]
    FireAndForget,
    /// The write blocks until every cached copy acknowledges invalidation
    /// (invalidate-before-write): the properly atomic protocol.
    Acknowledged,
}

/// Full configuration of an atomic DSM instance.
#[derive(Clone)]
pub struct AtomicConfig<V> {
    nodes: u32,
    locations: u32,
    owners: Arc<dyn OwnerMap>,
    initial: V,
    inval_mode: InvalMode,
}

impl<V: Value> AtomicConfig<V> {
    /// Starts building a configuration (round-robin ownership, page size 1,
    /// fire-and-forget invalidation by default).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `locations` is zero.
    #[must_use]
    pub fn builder(nodes: u32, locations: u32) -> AtomicConfigBuilder<V>
    where
        V: Default,
    {
        assert!(nodes > 0, "at least one node required");
        assert!(locations > 0, "at least one location required");
        AtomicConfigBuilder {
            nodes,
            locations,
            page_size: 1,
            owners: None,
            initial: V::default(),
            inval_mode: InvalMode::default(),
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Size of the shared namespace, in locations.
    #[must_use]
    pub fn locations(&self) -> u32 {
        self.locations
    }

    /// The ownership assignment.
    #[must_use]
    pub fn owners(&self) -> &Arc<dyn OwnerMap> {
        &self.owners
    }

    /// Locations per page.
    #[must_use]
    pub fn page_size(&self) -> u32 {
        self.owners.page_size()
    }

    /// Number of pages in the namespace.
    #[must_use]
    pub fn page_count(&self) -> u32 {
        self.locations.div_ceil(self.page_size())
    }

    /// The initial value of every location.
    #[must_use]
    pub fn initial(&self) -> &V {
        &self.initial
    }

    /// The invalidation mode.
    #[must_use]
    pub fn inval_mode(&self) -> InvalMode {
        self.inval_mode
    }
}

impl<V> fmt::Debug for AtomicConfig<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicConfig")
            .field("nodes", &self.nodes)
            .field("locations", &self.locations)
            .field("page_size", &self.owners.page_size())
            .field("inval_mode", &self.inval_mode)
            .finish()
    }
}

/// Builder for [`AtomicConfig`].
///
/// # Examples
///
/// ```
/// use atomic_dsm::{AtomicConfig, InvalMode};
/// use memcore::Word;
///
/// let config = AtomicConfig::<Word>::builder(4, 16)
///     .inval_mode(InvalMode::Acknowledged)
///     .build();
/// assert_eq!(config.page_count(), 16);
/// ```
pub struct AtomicConfigBuilder<V> {
    nodes: u32,
    locations: u32,
    page_size: u32,
    owners: Option<Arc<dyn OwnerMap>>,
    initial: V,
    inval_mode: InvalMode,
}

impl<V: Value> AtomicConfigBuilder<V> {
    /// Sets the unit of sharing (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn page_size(mut self, page_size: u32) -> Self {
        assert!(page_size > 0, "page size must be positive");
        self.page_size = page_size;
        self
    }

    /// Sets an explicit ownership assignment.
    #[must_use]
    pub fn owners(mut self, owners: impl OwnerMap) -> Self {
        self.owners = Some(Arc::new(owners));
        self
    }

    /// Sets the initial value of every location.
    #[must_use]
    pub fn initial(mut self, initial: V) -> Self {
        self.initial = initial;
        self
    }

    /// Sets the invalidation mode.
    #[must_use]
    pub fn inval_mode(mut self, mode: InvalMode) -> Self {
        self.inval_mode = mode;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if an explicit owner map disagrees with the node count.
    #[must_use]
    pub fn build(self) -> AtomicConfig<V> {
        let owners = self
            .owners
            .unwrap_or_else(|| Arc::new(RoundRobinOwners::new(self.nodes, self.page_size)));
        assert_eq!(
            owners.nodes(),
            self.nodes,
            "owner map node count disagrees with configuration"
        );
        AtomicConfig {
            nodes: self.nodes,
            locations: self.locations,
            owners,
            initial: self.initial,
            inval_mode: self.inval_mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::Word;

    #[test]
    fn defaults_match_paper_accounting() {
        let config = AtomicConfig::<Word>::builder(3, 6).build();
        assert_eq!(config.inval_mode(), InvalMode::FireAndForget);
        assert_eq!(config.page_size(), 1);
        assert_eq!(config.page_count(), 6);
        assert_eq!(config.initial(), &Word::Zero);
        assert!(format!("{config:?}").contains("AtomicConfig"));
    }

    #[test]
    fn acknowledged_mode_is_selectable() {
        let config = AtomicConfig::<Word>::builder(2, 2)
            .inval_mode(InvalMode::Acknowledged)
            .build();
        assert_eq!(config.inval_mode(), InvalMode::Acknowledged);
    }
}
