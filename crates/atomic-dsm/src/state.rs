//! The atomic baseline as a pure state machine.
//!
//! A fixed-ownership, write-invalidate protocol in the style of Li &
//! Hudak's shared virtual memory (the comparator the paper names): owners
//! keep a *copyset* per page — every node holding a cached copy — and a
//! write invalidates all of them before (Acknowledged) or while
//! (FireAndForget) installing. This is the "potential global
//! synchronization" on writes that the causal protocol avoids.
//!
//! Like [`causal_dsm::CausalState`], this state machine performs no I/O;
//! the threaded engine and the deterministic simulator drive it.

use std::collections::{HashMap, HashSet, VecDeque};

use memcore::{Location, NodeId, OwnerMap, PageId, Value, WriteId};

use crate::config::{AtomicConfig, InvalMode};
use crate::msg::AMsg;

#[derive(Clone, Debug)]
struct APage<V> {
    slots: Vec<(V, WriteId)>,
}

/// Who initiated a pending (awaiting-acks) write.
#[derive(Clone, Debug)]
enum Initiator {
    /// The owner's own application.
    Local,
    /// A remote writer to reply to.
    Remote { node: NodeId, has_copy: bool },
}

#[derive(Clone, Debug)]
struct Pending<V> {
    initiator: Initiator,
    loc: Location,
    value: V,
    wid: WriteId,
    awaiting: HashSet<NodeId>,
}

#[derive(Clone, Debug)]
enum Queued<V> {
    Remote(NodeId, AMsg<V>),
    LocalWrite {
        loc: Location,
        value: V,
        wid: WriteId,
    },
}

/// Result of starting a read.
#[derive(Clone, Debug)]
pub enum AReadStep<V> {
    /// Owned or cached: complete.
    Hit {
        /// The value read.
        value: V,
        /// The write it reads from.
        wid: WriteId,
    },
    /// Fetch from the owner; feed the reply to
    /// [`AtomicState::finish_read`].
    Miss {
        /// The page's owner.
        owner: NodeId,
        /// The fetch request.
        request: AMsg<V>,
    },
}

/// Result of starting a write.
#[derive(Clone, Debug)]
pub enum AWriteStep<V> {
    /// Completed immediately (possibly after firing invalidations).
    Done {
        /// The write's tag.
        wid: WriteId,
        /// Invalidations to send (fire-and-forget mode).
        outgoing: Vec<(NodeId, AMsg<V>)>,
    },
    /// Owner write blocked until invalidation acks arrive; completion is
    /// signalled by a [`Transition::local_write_done`].
    Blocked {
        /// The write's tag.
        wid: WriteId,
        /// Invalidations to send.
        outgoing: Vec<(NodeId, AMsg<V>)>,
    },
    /// Non-owner write: send to the owner; feed the reply to
    /// [`AtomicState::finish_write`].
    Remote {
        /// The write's tag.
        wid: WriteId,
        /// The page's owner.
        owner: NodeId,
        /// The certification request.
        request: AMsg<V>,
    },
}

/// Effects of delivering one protocol message.
#[derive(Clone, Debug, Default)]
pub struct Transition<V> {
    /// Messages to send, with destinations.
    pub outgoing: Vec<(NodeId, AMsg<V>)>,
    /// Set when a *local* blocked write (of this node's own application)
    /// has completed.
    pub local_write_done: Option<WriteId>,
}

impl<V> Transition<V> {
    fn none() -> Self {
        Transition {
            outgoing: Vec::new(),
            local_write_done: None,
        }
    }
}

/// One processor's state in the atomic owner protocol.
///
/// # Examples
///
/// ```
/// use atomic_dsm::{AtomicConfig, AtomicState, AReadStep};
/// use memcore::{NodeId, Location, Word};
///
/// let config = AtomicConfig::<Word>::builder(2, 2).build();
/// let mut p0 = AtomicState::new(NodeId::new(0), config.clone());
/// let mut p1 = AtomicState::new(NodeId::new(1), config);
///
/// // P1 fetches x0 from P0 and lands in its copyset.
/// let AReadStep::Miss { owner, request } = p1.begin_read(Location::new(0)) else {
///     unreachable!()
/// };
/// let t = p0.on_message(NodeId::new(1), request);
/// let (_, reply) = t.outgoing.into_iter().next().unwrap();
/// let (value, _) = p1.finish_read(Location::new(0), reply);
/// assert_eq!(value, Word::Zero);
/// assert_eq!(p0.copyset_size(Location::new(0).page(1)), 1);
/// # let _ = owner;
/// ```
#[derive(Clone, Debug)]
pub struct AtomicState<V> {
    id: NodeId,
    config: AtomicConfig<V>,
    pages: HashMap<PageId, APage<V>>,
    copysets: HashMap<PageId, HashSet<NodeId>>,
    pending: HashMap<PageId, Pending<V>>,
    queued: HashMap<PageId, VecDeque<Queued<V>>>,
    /// Bumped whenever an `Inval` for the page arrives; guards against
    /// installing a fetched copy that was invalidated while in flight.
    epochs: HashMap<PageId, u64>,
    /// Epoch of the page the single outstanding operation concerns, at the
    /// time the request was sent.
    op_epoch: u64,
    write_seq: u64,
    invalidations: u64,
}

impl<V: Value> AtomicState<V> {
    /// Creates processor `id`'s state with owned pages initialized.
    #[must_use]
    pub fn new(id: NodeId, config: AtomicConfig<V>) -> Self {
        let mut pages = HashMap::new();
        let mut copysets = HashMap::new();
        for page_index in 0..config.page_count() {
            let page = PageId::new(page_index);
            if config.owners().owner_of_page(page) == id {
                let slots = page
                    .locations(config.page_size())
                    .map(|loc| (config.initial().clone(), WriteId::initial(loc)))
                    .collect();
                pages.insert(page, APage { slots });
                copysets.insert(page, HashSet::new());
            }
        }
        AtomicState {
            id,
            config,
            pages,
            copysets,
            pending: HashMap::new(),
            queued: HashMap::new(),
            epochs: HashMap::new(),
            op_epoch: 0,
            write_seq: 0,
            invalidations: 0,
        }
    }

    /// This processor's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AtomicConfig<V> {
        &self.config
    }

    /// Number of nodes currently in an owned page's copyset.
    #[must_use]
    pub fn copyset_size(&self, page: PageId) -> usize {
        self.copysets.get(&page).map_or(0, HashSet::len)
    }

    /// Cumulative invalidations this node has received (cache drops).
    #[must_use]
    pub fn invalidation_count(&self) -> u64 {
        self.invalidations
    }

    /// `true` iff `loc` is readable locally.
    #[must_use]
    pub fn has_valid_copy(&self, loc: Location) -> bool {
        self.pages.contains_key(&self.page_of(loc))
    }

    /// The locally visible value, without protocol side effects.
    #[must_use]
    pub fn peek(&self, loc: Location) -> Option<(&V, WriteId)> {
        let entry = self.pages.get(&self.page_of(loc))?;
        let (v, wid) = &entry.slots[self.offset_of(loc)];
        Some((v, *wid))
    }

    fn page_of(&self, loc: Location) -> PageId {
        loc.page(self.config.page_size())
    }

    fn offset_of(&self, loc: Location) -> usize {
        loc.page_offset(self.config.page_size())
    }

    fn epoch(&self, page: PageId) -> u64 {
        self.epochs.get(&page).copied().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Application side
    // ------------------------------------------------------------------

    /// Starts a read of `loc`.
    pub fn begin_read(&mut self, loc: Location) -> AReadStep<V> {
        let page = self.page_of(loc);
        if let Some(entry) = self.pages.get(&page) {
            let (value, wid) = &entry.slots[self.offset_of(loc)];
            AReadStep::Hit {
                value: value.clone(),
                wid: *wid,
            }
        } else {
            self.op_epoch = self.epoch(page);
            AReadStep::Miss {
                owner: self.config.owners().owner_of_page(page),
                request: AMsg::Read { page },
            }
        }
    }

    /// Completes a read miss. The fetched page is cached unless an
    /// invalidation overtook the reply.
    ///
    /// # Panics
    ///
    /// Panics if `reply` is not a `ReadReply` for `loc`'s page.
    pub fn finish_read(&mut self, loc: Location, reply: AMsg<V>) -> (V, WriteId) {
        let AMsg::ReadReply { page, slots } = reply else {
            panic!("finish_read fed a non-ReadReply message");
        };
        assert_eq!(page, self.page_of(loc), "reply for wrong page");
        let offset = self.offset_of(loc);
        let result = slots[offset].clone();
        if self.epoch(page) == self.op_epoch {
            self.pages.insert(page, APage { slots });
        }
        result
    }

    /// Starts a write of `value` to `loc`.
    pub fn begin_write(&mut self, loc: Location, value: V) -> AWriteStep<V> {
        let wid = WriteId::new(self.id, self.write_seq);
        self.write_seq += 1;
        let page = self.page_of(loc);
        let owner = self.config.owners().owner_of_page(page);
        if owner != self.id {
            self.op_epoch = self.epoch(page);
            let has_copy = self.pages.contains_key(&page);
            return AWriteStep::Remote {
                wid,
                owner,
                request: AMsg::Write {
                    loc,
                    value,
                    wid,
                    has_copy,
                },
            };
        }

        if self.pending.contains_key(&page) {
            // A remote-initiated write is mid-invalidation on this page;
            // queue behind it.
            self.queued
                .entry(page)
                .or_default()
                .push_back(Queued::LocalWrite { loc, value, wid });
            return AWriteStep::Blocked {
                wid,
                outgoing: Vec::new(),
            };
        }

        let members: Vec<NodeId> = self
            .copysets
            .get(&page)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        if members.is_empty() {
            self.install(page, loc, value, wid);
            return AWriteStep::Done {
                wid,
                outgoing: Vec::new(),
            };
        }

        let outgoing: Vec<_> = members.iter().map(|&m| (m, AMsg::Inval { page })).collect();
        self.copysets.insert(page, HashSet::new());
        match self.config.inval_mode() {
            InvalMode::FireAndForget => {
                self.install(page, loc, value, wid);
                AWriteStep::Done { wid, outgoing }
            }
            InvalMode::Acknowledged => {
                self.pending.insert(
                    page,
                    Pending {
                        initiator: Initiator::Local,
                        loc,
                        value,
                        wid,
                        awaiting: members.into_iter().collect(),
                    },
                );
                AWriteStep::Blocked { wid, outgoing }
            }
        }
    }

    /// Completes a remote write with the owner's confirmation. The written
    /// value is cached unless an invalidation overtook the reply.
    ///
    /// # Panics
    ///
    /// Panics if `reply` is not a `WriteReply`.
    pub fn finish_write(&mut self, reply: AMsg<V>) -> WriteId {
        let AMsg::WriteReply { loc, wid, value } = reply else {
            panic!("finish_write fed a non-WriteReply message");
        };
        let page = self.page_of(loc);
        if self.epoch(page) == self.op_epoch {
            let offset = self.offset_of(loc);
            if let Some(entry) = self.pages.get_mut(&page) {
                entry.slots[offset] = (value, wid);
            } else if self.config.page_size() == 1 {
                self.pages.insert(
                    page,
                    APage {
                        slots: vec![(value, wid)],
                    },
                );
            }
        }
        wid
    }

    /// Drops the cached copy of `loc`'s page (voluntary discard).
    pub fn discard(&mut self, loc: Location) -> bool {
        let page = self.page_of(loc);
        if self.config.owners().owner_of_page(page) == self.id {
            return false;
        }
        self.pages.remove(&page).is_some()
        // Note: the owner's copyset still lists this node; the next Inval
        // for the page is then redundant but harmless (and acked).
    }

    // ------------------------------------------------------------------
    // Message handling (server side)
    // ------------------------------------------------------------------

    /// Delivers one protocol message (`Read`, `Write`, `Inval`,
    /// `InvalAck`), producing outgoing messages and possibly completing a
    /// blocked local write.
    ///
    /// `ReadReply`/`WriteReply` must instead be routed to the blocked
    /// operation ([`AtomicState::finish_read`] /
    /// [`AtomicState::finish_write`]); feeding them here is a no-op.
    pub fn on_message(&mut self, from: NodeId, msg: AMsg<V>) -> Transition<V> {
        match msg {
            AMsg::Read { page } => self.on_read_request(from, page),
            AMsg::Write {
                loc,
                value,
                wid,
                has_copy,
            } => self.on_write_request(from, loc, value, wid, has_copy),
            AMsg::Inval { page } => self.on_inval(from, page),
            AMsg::InvalAck { page } => self.on_inval_ack(from, page),
            _ => Transition::none(),
        }
    }

    fn on_read_request(&mut self, from: NodeId, page: PageId) -> Transition<V> {
        debug_assert_eq!(self.config.owners().owner_of_page(page), self.id);
        if self.pending.contains_key(&page) {
            self.queued
                .entry(page)
                .or_default()
                .push_back(Queued::Remote(from, AMsg::Read { page }));
            return Transition::none();
        }
        Transition {
            outgoing: vec![(from, self.read_reply(from, page))],
            local_write_done: None,
        }
    }

    fn read_reply(&mut self, from: NodeId, page: PageId) -> AMsg<V> {
        self.copysets.entry(page).or_default().insert(from);
        let entry = &self.pages[&page];
        AMsg::ReadReply {
            page,
            slots: entry.slots.clone(),
        }
    }

    fn on_write_request(
        &mut self,
        from: NodeId,
        loc: Location,
        value: V,
        wid: WriteId,
        has_copy: bool,
    ) -> Transition<V> {
        let page = self.page_of(loc);
        debug_assert_eq!(self.config.owners().owner_of_page(page), self.id);
        if self.pending.contains_key(&page) {
            self.queued
                .entry(page)
                .or_default()
                .push_back(Queued::Remote(
                    from,
                    AMsg::Write {
                        loc,
                        value,
                        wid,
                        has_copy,
                    },
                ));
            return Transition::none();
        }
        self.start_remote_write(from, loc, value, wid, has_copy)
    }

    fn start_remote_write(
        &mut self,
        from: NodeId,
        loc: Location,
        value: V,
        wid: WriteId,
        has_copy: bool,
    ) -> Transition<V> {
        let page = self.page_of(loc);
        let members: Vec<NodeId> = self
            .copysets
            .get(&page)
            .map(|s| s.iter().copied().filter(|&m| m != from).collect())
            .unwrap_or_default();
        let writer_caches = has_copy || self.config.page_size() == 1;

        if members.is_empty() || self.config.inval_mode() == InvalMode::FireAndForget {
            let mut outgoing: Vec<_> = members.iter().map(|&m| (m, AMsg::Inval { page })).collect();
            self.install(page, loc, value.clone(), wid);
            let copyset = self.copysets.entry(page).or_default();
            copyset.clear();
            if writer_caches {
                copyset.insert(from);
            }
            outgoing.push((from, AMsg::WriteReply { loc, wid, value }));
            return Transition {
                outgoing,
                local_write_done: None,
            };
        }

        // Acknowledged mode with live copies: invalidate-before-write.
        let outgoing: Vec<_> = members.iter().map(|&m| (m, AMsg::Inval { page })).collect();
        self.copysets.insert(page, HashSet::new());
        self.pending.insert(
            page,
            Pending {
                initiator: Initiator::Remote {
                    node: from,
                    has_copy: writer_caches,
                },
                loc,
                value,
                wid,
                awaiting: members.into_iter().collect(),
            },
        );
        Transition {
            outgoing,
            local_write_done: None,
        }
    }

    fn on_inval(&mut self, from: NodeId, page: PageId) -> Transition<V> {
        if self.pages.remove(&page).is_some() {
            self.invalidations += 1;
        }
        *self.epochs.entry(page).or_insert(0) += 1;
        match self.config.inval_mode() {
            InvalMode::Acknowledged => Transition {
                outgoing: vec![(from, AMsg::InvalAck { page })],
                local_write_done: None,
            },
            InvalMode::FireAndForget => Transition::none(),
        }
    }

    fn on_inval_ack(&mut self, from: NodeId, page: PageId) -> Transition<V> {
        let Some(pending) = self.pending.get_mut(&page) else {
            return Transition::none();
        };
        pending.awaiting.remove(&from);
        if !pending.awaiting.is_empty() {
            return Transition::none();
        }
        let Pending {
            initiator,
            loc,
            value,
            wid,
            ..
        } = self.pending.remove(&page).expect("checked above");
        self.install(page, loc, value.clone(), wid);
        let mut transition = Transition::none();
        match initiator {
            Initiator::Local => transition.local_write_done = Some(wid),
            Initiator::Remote { node, has_copy } => {
                if has_copy {
                    self.copysets.entry(page).or_default().insert(node);
                }
                transition
                    .outgoing
                    .push((node, AMsg::WriteReply { loc, wid, value }));
            }
        }
        self.drain_queue(page, &mut transition);
        transition
    }

    /// Serve queued requests after a pending write completes; stops if a
    /// queued write opens a new pending window.
    fn drain_queue(&mut self, page: PageId, transition: &mut Transition<V>) {
        while let Some(item) = self.queued.get_mut(&page).and_then(VecDeque::pop_front) {
            match item {
                Queued::Remote(from, AMsg::Read { .. }) => {
                    let reply = self.read_reply(from, page);
                    transition.outgoing.push((from, reply));
                }
                Queued::Remote(
                    from,
                    AMsg::Write {
                        loc,
                        value,
                        wid,
                        has_copy,
                    },
                ) => {
                    let t = self.start_remote_write(from, loc, value, wid, has_copy);
                    transition.outgoing.extend(t.outgoing);
                    if self.pending.contains_key(&page) {
                        return;
                    }
                }
                Queued::Remote(..) => {}
                Queued::LocalWrite { loc, value, wid } => {
                    let members: Vec<NodeId> = self
                        .copysets
                        .get(&page)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    if members.is_empty() {
                        self.install(page, loc, value, wid);
                        transition.local_write_done = Some(wid);
                    } else {
                        transition
                            .outgoing
                            .extend(members.iter().map(|&m| (m, AMsg::Inval { page })));
                        self.copysets.insert(page, HashSet::new());
                        self.pending.insert(
                            page,
                            Pending {
                                initiator: Initiator::Local,
                                loc,
                                value,
                                wid,
                                awaiting: members.into_iter().collect(),
                            },
                        );
                        return;
                    }
                }
            }
        }
    }

    fn install(&mut self, page: PageId, loc: Location, value: V, wid: WriteId) {
        let offset = self.offset_of(loc);
        let entry = self
            .pages
            .get_mut(&page)
            .expect("owned pages are always present");
        entry.slots[offset] = (value, wid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::Word;

    fn p(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn loc(i: u32) -> Location {
        Location::new(i)
    }

    fn pair(mode: InvalMode) -> (AtomicState<Word>, AtomicState<Word>) {
        let config = AtomicConfig::<Word>::builder(2, 4).inval_mode(mode).build();
        (
            AtomicState::new(p(0), config.clone()),
            AtomicState::new(p(1), config),
        )
    }

    /// Drive a full read, delivering messages synchronously.
    fn read(reader: &mut AtomicState<Word>, owner: &mut AtomicState<Word>, l: Location) -> Word {
        match reader.begin_read(l) {
            AReadStep::Hit { value, .. } => value,
            AReadStep::Miss { request, .. } => {
                let t = owner.on_message(reader.id(), request);
                let (dst, reply) = t.outgoing.into_iter().next().unwrap();
                assert_eq!(dst, reader.id());
                reader.finish_read(l, reply).0
            }
        }
    }

    #[test]
    fn read_miss_populates_copyset() {
        let (mut p0, mut p1) = pair(InvalMode::FireAndForget);
        assert_eq!(read(&mut p1, &mut p0, loc(0)), Word::Zero);
        assert_eq!(p0.copyset_size(loc(0).page(1)), 1);
        assert!(p1.has_valid_copy(loc(0)));
    }

    #[test]
    fn owner_write_with_empty_copyset_is_free() {
        let (mut p0, _) = pair(InvalMode::Acknowledged);
        match p0.begin_write(loc(0), Word::Int(5)) {
            AWriteStep::Done { outgoing, .. } => assert!(outgoing.is_empty()),
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(5));
    }

    #[test]
    fn fire_and_forget_owner_write_sends_invals_and_completes() {
        let (mut p0, mut p1) = pair(InvalMode::FireAndForget);
        let _ = read(&mut p1, &mut p0, loc(0));
        match p0.begin_write(loc(0), Word::Int(7)) {
            AWriteStep::Done { outgoing, .. } => {
                assert_eq!(outgoing.len(), 1);
                let (dst, msg) = &outgoing[0];
                assert_eq!(*dst, p(1));
                assert!(matches!(msg, AMsg::Inval { .. }));
                // Deliver the inval: P1 drops its copy.
                let t = p1.on_message(p(0), msg.clone());
                assert!(t.outgoing.is_empty()); // no ack in this mode
                assert!(!p1.has_valid_copy(loc(0)));
                assert_eq!(p1.invalidation_count(), 1);
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn acknowledged_owner_write_blocks_until_acks() {
        let (mut p0, mut p1) = pair(InvalMode::Acknowledged);
        let _ = read(&mut p1, &mut p0, loc(0));
        let AWriteStep::Blocked { wid, outgoing } = p0.begin_write(loc(0), Word::Int(7)) else {
            panic!("expected Blocked");
        };
        // Old value still installed while pending.
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Zero);
        // Deliver inval to P1, route its ack back.
        let (_, inval) = outgoing.into_iter().next().unwrap();
        let t1 = p1.on_message(p(0), inval);
        let (_, ack) = t1.outgoing.into_iter().next().unwrap();
        let t0 = p0.on_message(p(1), ack);
        assert_eq!(t0.local_write_done, Some(wid));
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(7));
    }

    #[test]
    fn remote_write_round_trip() {
        let (mut p0, mut p1) = pair(InvalMode::Acknowledged);
        let AWriteStep::Remote { request, .. } = p1.begin_write(loc(0), Word::Int(3)) else {
            panic!("expected Remote");
        };
        let t = p0.on_message(p(1), request);
        let (dst, reply) = t.outgoing.into_iter().next().unwrap();
        assert_eq!(dst, p(1));
        p1.finish_write(reply);
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(3));
        // Writer caches the written value and is in the copyset.
        assert_eq!(p1.peek(loc(0)).unwrap().0, &Word::Int(3));
        assert_eq!(p0.copyset_size(loc(0).page(1)), 1);
    }

    #[test]
    fn remote_write_invalidates_other_readers() {
        let config = AtomicConfig::<Word>::builder(3, 3)
            .inval_mode(InvalMode::Acknowledged)
            .build();
        let mut p0 = AtomicState::new(p(0), config.clone());
        let mut p1 = AtomicState::new(p(1), config.clone());
        let mut p2 = AtomicState::new(p(2), config);
        let _ = read(&mut p2, &mut p0, loc(0)); // P2 caches x0

        let AWriteStep::Remote { request, wid, .. } = p1.begin_write(loc(0), Word::Int(9)) else {
            panic!("expected Remote");
        };
        // Owner must invalidate P2 before replying.
        let t = p0.on_message(p(1), request);
        assert_eq!(t.outgoing.len(), 1);
        let (dst, inval) = t.outgoing.into_iter().next().unwrap();
        assert_eq!(dst, p(2));
        let t2 = p2.on_message(p(0), inval);
        assert!(!p2.has_valid_copy(loc(0)));
        let (_, ack) = t2.outgoing.into_iter().next().unwrap();
        let t0 = p0.on_message(p(2), ack);
        // Now the reply to the writer flows.
        let (dst, reply) = t0.outgoing.into_iter().next().unwrap();
        assert_eq!(dst, p(1));
        assert_eq!(p1.finish_write(reply), wid);
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(9));
    }

    #[test]
    fn reads_queue_behind_pending_writes() {
        let config = AtomicConfig::<Word>::builder(3, 3)
            .inval_mode(InvalMode::Acknowledged)
            .build();
        let mut p0 = AtomicState::new(p(0), config.clone());
        let mut p1 = AtomicState::new(p(1), config.clone());
        let mut p2 = AtomicState::new(p(2), config);
        let _ = read(&mut p2, &mut p0, loc(0));

        // Owner's own write pends on P2's ack.
        let AWriteStep::Blocked { outgoing, .. } = p0.begin_write(loc(0), Word::Int(5)) else {
            panic!("expected Blocked");
        };
        // Meanwhile P1's read request arrives: queued, no reply yet.
        let AReadStep::Miss { request, .. } = p1.begin_read(loc(0)) else {
            panic!()
        };
        let t = p0.on_message(p(1), request);
        assert!(t.outgoing.is_empty());

        // Ack arrives: write completes AND the queued read is served with
        // the new value.
        let (_, inval) = outgoing.into_iter().next().unwrap();
        let t2 = p2.on_message(p(0), inval);
        let (_, ack) = t2.outgoing.into_iter().next().unwrap();
        let t0 = p0.on_message(p(2), ack);
        assert!(t0.local_write_done.is_some());
        let (dst, reply) = t0.outgoing.into_iter().next().unwrap();
        assert_eq!(dst, p(1));
        assert_eq!(p1.finish_read(loc(0), reply).0, Word::Int(5));
    }

    #[test]
    fn queued_write_cascades_into_a_new_pending_window() {
        // Owner P0; P2 caches the page. P1's remote write opens a pending
        // window (P2 must ack). While pending, ANOTHER write (from P3) and
        // a read (from P1... use P3's read) queue up. When the ack lands:
        // the first write completes, the queued write immediately opens a
        // second pending window (P1 now holds a copy), and the queued read
        // waits behind it.
        let config = AtomicConfig::<Word>::builder(4, 4)
            .inval_mode(InvalMode::Acknowledged)
            .build();
        let mut p0 = AtomicState::new(p(0), config.clone());
        let mut p1 = AtomicState::new(p(1), config.clone());
        let mut p2 = AtomicState::new(p(2), config.clone());
        let mut p3 = AtomicState::new(p(3), config);

        // P2 caches x0.
        let AReadStep::Miss { request, .. } = p2.begin_read(loc(0)) else {
            panic!()
        };
        let t = p0.on_message(p(2), request);
        let (_, reply) = t.outgoing.into_iter().next().unwrap();
        p2.finish_read(loc(0), reply);

        // P1's write opens the pending window (inval to P2).
        let AWriteStep::Remote { request: w1, .. } = p1.begin_write(loc(0), Word::Int(1)) else {
            panic!()
        };
        let t = p0.on_message(p(1), w1);
        let (dst, inval) = t.outgoing.into_iter().next().unwrap();
        assert_eq!(dst, p(2));

        // P3's write and read queue behind it.
        let AWriteStep::Remote { request: w3, .. } = p3.begin_write(loc(0), Word::Int(3)) else {
            panic!()
        };
        assert!(p0.on_message(p(3), w3).outgoing.is_empty(), "queued");

        // P2's ack releases the window: P1 gets its reply AND the queued
        // write starts a new pending window invalidating P1's fresh copy.
        let t2 = p2.on_message(p(0), inval);
        let (_, ack) = t2.outgoing.into_iter().next().unwrap();
        let t0 = p0.on_message(p(2), ack);
        let mut reply_to_p1 = None;
        let mut inval_to_p1 = None;
        for (dst, msg) in t0.outgoing {
            match msg {
                AMsg::WriteReply { .. } => {
                    assert_eq!(dst, p(1));
                    reply_to_p1 = Some(msg);
                }
                AMsg::Inval { .. } => {
                    assert_eq!(dst, p(1), "P1 cached its write; must be invalidated");
                    inval_to_p1 = Some(msg);
                }
                other => panic!("unexpected message {other:?}"),
            }
        }
        p1.finish_write(reply_to_p1.expect("reply for P1"));
        assert_eq!(p1.peek(loc(0)).unwrap().0, &Word::Int(1));

        // P1 acks the second window; P3's write completes.
        let t1 = p1.on_message(p(0), inval_to_p1.expect("inval for P1"));
        assert!(!p1.has_valid_copy(loc(0)));
        let (_, ack) = t1.outgoing.into_iter().next().unwrap();
        let t0 = p0.on_message(p(1), ack);
        let (dst, reply) = t0.outgoing.into_iter().next().unwrap();
        assert_eq!(dst, p(3));
        p3.finish_write(reply);
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(3));
    }

    #[test]
    fn local_write_queues_behind_remote_pending() {
        // A remote-initiated pending window is open; the owner's own
        // application write must queue and complete via local_write_done.
        let config = AtomicConfig::<Word>::builder(3, 3)
            .inval_mode(InvalMode::Acknowledged)
            .build();
        let mut p0 = AtomicState::new(p(0), config.clone());
        let mut p1 = AtomicState::new(p(1), config.clone());
        let mut p2 = AtomicState::new(p(2), config);

        // P2 caches x0; P1's write opens the window (inval to P2).
        let AReadStep::Miss { request, .. } = p2.begin_read(loc(0)) else {
            panic!()
        };
        let t = p0.on_message(p(2), request);
        let (_, reply) = t.outgoing.into_iter().next().unwrap();
        p2.finish_read(loc(0), reply);
        let AWriteStep::Remote { request: w1, .. } = p1.begin_write(loc(0), Word::Int(1)) else {
            panic!()
        };
        let t = p0.on_message(p(1), w1);
        let (_, inval_p2) = t.outgoing.into_iter().next().unwrap();

        // Owner's own write queues behind the window.
        let AWriteStep::Blocked { wid, outgoing } = p0.begin_write(loc(0), Word::Int(9)) else {
            panic!("expected Blocked behind the pending window");
        };
        assert!(outgoing.is_empty());

        // P2 acks: P1's write completes (reply sent, P1 enters the
        // copyset), and the queued LOCAL write opens a second window that
        // must invalidate P1.
        let t2 = p2.on_message(p(0), inval_p2);
        let (_, ack) = t2.outgoing.into_iter().next().unwrap();
        let t0 = p0.on_message(p(2), ack);
        assert!(t0.local_write_done.is_none(), "still awaiting P1's ack");
        let mut reply_to_p1 = None;
        let mut inval_to_p1 = None;
        for (dst, msg) in t0.outgoing {
            assert_eq!(dst, p(1));
            match msg {
                AMsg::WriteReply { .. } => reply_to_p1 = Some(msg),
                AMsg::Inval { .. } => inval_to_p1 = Some(msg),
                other => panic!("unexpected {other:?}"),
            }
        }
        p1.finish_write(reply_to_p1.expect("P1's reply"));
        let t1 = p1.on_message(p(0), inval_to_p1.expect("P1's inval"));
        let (_, ack) = t1.outgoing.into_iter().next().unwrap();

        // P1's ack completes the owner's queued local write.
        let t0 = p0.on_message(p(1), ack);
        assert_eq!(t0.local_write_done, Some(wid));
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(9));
    }

    #[test]
    fn overtaken_read_reply_is_not_cached() {
        let (mut p0, mut p1) = pair(InvalMode::FireAndForget);
        // P1 sends a read request; owner replies; BEFORE P1 processes the
        // reply, an inval arrives (from a racing write).
        let AReadStep::Miss { request, .. } = p1.begin_read(loc(0)) else {
            panic!()
        };
        let t = p0.on_message(p(1), request);
        let (_, reply) = t.outgoing.into_iter().next().unwrap();
        // Racing write at owner fires an inval at P1.
        let AWriteStep::Done { outgoing, .. } = p0.begin_write(loc(0), Word::Int(8)) else {
            panic!()
        };
        let (_, inval) = outgoing.into_iter().next().unwrap();
        let _ = p1.on_message(p(0), inval);
        // Stale reply completes the read but is NOT installed.
        let (v, _) = p1.finish_read(loc(0), reply);
        assert_eq!(v, Word::Zero);
        assert!(!p1.has_valid_copy(loc(0)));
    }

    #[test]
    fn discard_drops_cached_copy() {
        let (mut p0, mut p1) = pair(InvalMode::FireAndForget);
        let _ = read(&mut p1, &mut p0, loc(0));
        assert!(p1.discard(loc(0)));
        assert!(!p1.has_valid_copy(loc(0)));
        assert!(!p0.discard(loc(0)));
    }
}
