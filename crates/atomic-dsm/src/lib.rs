//! The strong-consistency baseline: a fixed-ownership, write-invalidate
//! **atomic DSM** in the style of Li & Hudak's shared virtual memory — the
//! comparator the ICDCS'91 paper measures its causal protocol against.
//!
//! Owners track a *copyset* per page (who holds cached copies); every write
//! invalidates all cached copies, which is where atomic memory pays the
//! "potential global synchronization" the causal protocol avoids: an owner
//! write costs `|copyset|` extra invalidation messages (§4.1 of the paper
//! counts `n − 1` for the solver), versus **zero** for a causal owner
//! write.
//!
//! Two invalidation modes:
//!
//! * [`InvalMode::FireAndForget`] — invalidations are sent but not awaited
//!   (the paper's message accounting; admits transient staleness);
//! * [`InvalMode::Acknowledged`] — invalidate-before-write: the write
//!   blocks until all copies are dropped (properly atomic; used for
//!   correctness tests).
//!
//! # Examples
//!
//! ```
//! use atomic_dsm::{AtomicCluster, InvalMode};
//! use memcore::{Location, SharedMemory, Word};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = AtomicCluster::<Word>::builder(3, 3)
//!     .configure(|c| c.inval_mode(InvalMode::Acknowledged))
//!     .build()?;
//! let p0 = cluster.handle(0);
//! let p2 = cluster.handle(2);
//! p2.read(Location::new(0))?; // P2 caches x0, entering P0's copyset
//! p0.write(Location::new(0), Word::Int(1))?; // invalidates P2's copy
//! assert_eq!(p2.read(Location::new(0))?, Word::Int(1)); // fresh fetch
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod msg;
mod state;

pub use config::{AtomicConfig, AtomicConfigBuilder, InvalMode};
pub use engine::{AtomicCluster, AtomicClusterBuilder, AtomicHandle};
pub use msg::{AMsg, SlotData};
pub use state::{AReadStep, AWriteStep, AtomicState, Transition};
