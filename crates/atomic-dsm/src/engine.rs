//! The threaded engine for the atomic baseline.
//!
//! Structure mirrors the causal engine: one server thread per node
//! handles requests, invalidations and acknowledgements; application
//! handles block on owner round-trips (and, in acknowledged mode, on
//! invalidation completion for owner writes).

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{unbounded, Receiver, Sender};
use memcore::{
    Location, MemoryError, NetStats, NodeId, OpRecord, Recorder, SharedMemory, Value, WriteId,
};
use parking_lot::Mutex;
use simnet::Network;

use crate::config::{AtomicConfig, AtomicConfigBuilder};
use crate::msg::AMsg;
use crate::state::{AReadStep, AWriteStep, AtomicState};

/// What the server thread forwards to a blocked application operation.
enum Wakeup<V> {
    Reply(AMsg<V>),
    LocalWriteDone(WriteId),
}

struct NodeShared<V> {
    state: Mutex<AtomicState<V>>,
    op_lock: Mutex<()>,
    wakeups: Receiver<Wakeup<V>>,
}

struct ClusterInner<V: Value> {
    config: AtomicConfig<V>,
    net: Network<AMsg<V>>,
    nodes: Vec<Arc<NodeShared<V>>>,
    recorder: Option<Recorder<V>>,
    servers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running atomic DSM: the strong-consistency comparator for every
/// "causal vs atomic" experiment in the paper's §4.
///
/// # Examples
///
/// ```
/// use atomic_dsm::AtomicCluster;
/// use memcore::{Location, SharedMemory, Word};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cluster = AtomicCluster::<Word>::builder(2, 4).build()?;
/// let p0 = cluster.handle(0);
/// let p1 = cluster.handle(1);
/// p0.write(Location::new(0), Word::Int(1))?;
/// assert_eq!(p1.read(Location::new(0))?, Word::Int(1));
/// # Ok(())
/// # }
/// ```
pub struct AtomicCluster<V: Value> {
    inner: Arc<ClusterInner<V>>,
}

/// Builder for [`AtomicCluster`].
pub struct AtomicClusterBuilder<V: Value> {
    config: AtomicConfigBuilder<V>,
    recorder: Option<Recorder<V>>,
}

impl<V: Value + Default> AtomicCluster<V> {
    /// Starts building a cluster of `nodes` processors sharing `locations`
    /// locations.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `locations` is zero.
    #[must_use]
    pub fn builder(nodes: u32, locations: u32) -> AtomicClusterBuilder<V> {
        AtomicClusterBuilder {
            config: AtomicConfig::builder(nodes, locations),
            recorder: None,
        }
    }
}

impl<V: Value> AtomicClusterBuilder<V> {
    /// Applies `f` to the underlying protocol configuration builder.
    #[must_use]
    pub fn configure(
        mut self,
        f: impl FnOnce(AtomicConfigBuilder<V>) -> AtomicConfigBuilder<V>,
    ) -> Self {
        self.config = f(self.config);
        self
    }

    /// Records every completed operation into `recorder`.
    #[must_use]
    pub fn recorder(mut self, recorder: Recorder<V>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builds the cluster and spawns its server threads.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    pub fn build(self) -> Result<AtomicCluster<V>, MemoryError> {
        AtomicCluster::with_config(self.config.build(), self.recorder)
    }
}

impl<V: Value> AtomicCluster<V> {
    /// Builds a cluster from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    pub fn with_config(
        config: AtomicConfig<V>,
        recorder: Option<Recorder<V>>,
    ) -> Result<Self, MemoryError> {
        let n = config.nodes() as usize;
        let net: Network<AMsg<V>> = Network::new(n);
        let mut nodes = Vec::with_capacity(n);
        let mut wakeup_txs: Vec<Sender<Wakeup<V>>> = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = unbounded();
            wakeup_txs.push(tx);
            nodes.push(Arc::new(NodeShared {
                state: Mutex::new(AtomicState::new(NodeId::new(i as u32), config.clone())),
                op_lock: Mutex::new(()),
                wakeups: rx,
            }));
        }

        let mut servers = Vec::with_capacity(n);
        for (i, (node, wakeup_tx)) in nodes.iter().zip(wakeup_txs).enumerate() {
            let me = NodeId::new(i as u32);
            let mailbox = net.take_mailbox(me);
            let node = Arc::clone(node);
            let net = net.clone();
            servers.push(
                std::thread::Builder::new()
                    .name(format!("atomic-node-{i}"))
                    .spawn(move || {
                        while let Some(env) = mailbox.recv() {
                            match env.payload {
                                AMsg::Halt => break,
                                AMsg::ReadReply { .. } | AMsg::WriteReply { .. } => {
                                    let _ = wakeup_tx.send(Wakeup::Reply(env.payload));
                                }
                                msg => {
                                    let transition = node.state.lock().on_message(env.src, msg);
                                    for (dst, out) in transition.outgoing {
                                        let _ = net.send(me, dst, out);
                                    }
                                    if let Some(wid) = transition.local_write_done {
                                        let _ = wakeup_tx.send(Wakeup::LocalWriteDone(wid));
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawning server thread"),
            );
        }

        Ok(AtomicCluster {
            inner: Arc::new(ClusterInner {
                config,
                net,
                nodes,
                recorder,
                servers: Mutex::new(servers),
            }),
        })
    }

    /// A handle performing operations as process `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn handle(&self, node: u32) -> AtomicHandle<V> {
        assert!(
            (node as usize) < self.inner.nodes.len(),
            "node {node} out of range"
        );
        AtomicHandle {
            inner: Arc::clone(&self.inner),
            node: NodeId::new(node),
        }
    }

    /// All handles, in node order.
    #[must_use]
    pub fn handles(&self) -> Vec<AtomicHandle<V>> {
        (0..self.inner.nodes.len() as u32)
            .map(|i| self.handle(i))
            .collect()
    }

    /// The cluster's configuration.
    #[must_use]
    pub fn config(&self) -> &AtomicConfig<V> {
        &self.inner.config
    }

    /// Per-(node, kind) protocol message counters.
    #[must_use]
    pub fn messages(&self) -> &NetStats {
        self.inner.net.messages()
    }

    /// Per-(node, kind) approximate byte counters.
    #[must_use]
    pub fn bytes(&self) -> &NetStats {
        self.inner.net.bytes()
    }

    /// Total invalidations received across nodes.
    #[must_use]
    pub fn total_invalidations(&self) -> u64 {
        self.inner
            .nodes
            .iter()
            .map(|n| n.state.lock().invalidation_count())
            .sum()
    }

    /// Stops all server threads.
    pub fn shutdown(&self) {
        let handles: Vec<_> = self.inner.servers.lock().drain(..).collect();
        if handles.is_empty() {
            return;
        }
        for i in 0..self.inner.nodes.len() {
            let dst = NodeId::new(i as u32);
            let _ = self.inner.net.send(dst, dst, AMsg::Halt);
        }
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl<V: Value> Drop for AtomicCluster<V> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<V: Value> std::fmt::Debug for AtomicCluster<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicCluster")
            .field("config", &self.inner.config)
            .finish_non_exhaustive()
    }
}

/// A per-process handle onto an [`AtomicCluster`]; implements
/// [`SharedMemory`].
pub struct AtomicHandle<V: Value> {
    inner: Arc<ClusterInner<V>>,
    node: NodeId,
}

impl<V: Value> Clone for AtomicHandle<V> {
    fn clone(&self) -> Self {
        AtomicHandle {
            inner: Arc::clone(&self.inner),
            node: self.node,
        }
    }
}

impl<V: Value> std::fmt::Debug for AtomicHandle<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicHandle({})", self.node)
    }
}

impl<V: Value> AtomicHandle<V> {
    fn check_bounds(&self, loc: Location) -> Result<(), MemoryError> {
        let namespace = self.inner.config.locations() as usize;
        if loc.index() >= namespace {
            return Err(MemoryError::OutOfRange { loc, namespace });
        }
        Ok(())
    }

    fn record(&self, op: OpRecord<V>) {
        if let Some(rec) = &self.inner.recorder {
            rec.record(self.node, op);
        }
    }

    fn await_reply(&self, node: &NodeShared<V>) -> Result<AMsg<V>, MemoryError> {
        loop {
            match node.wakeups.recv().map_err(|_| MemoryError::Shutdown)? {
                Wakeup::Reply(reply) => return Ok(reply),
                // A stray local-done is impossible while a remote op is
                // outstanding (one op per node), but tolerate it.
                Wakeup::LocalWriteDone(_) => continue,
            }
        }
    }

    fn await_local_done(&self, node: &NodeShared<V>) -> Result<WriteId, MemoryError> {
        loop {
            match node.wakeups.recv().map_err(|_| MemoryError::Shutdown)? {
                Wakeup::LocalWriteDone(wid) => return Ok(wid),
                Wakeup::Reply(_) => continue,
            }
        }
    }
}

impl<V: Value> SharedMemory<V> for AtomicHandle<V> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn read(&self, loc: Location) -> Result<V, MemoryError> {
        self.check_bounds(loc)?;
        let node = &self.inner.nodes[self.node.index()];
        let _op = node.op_lock.lock();
        let step = node.state.lock().begin_read(loc);
        let (value, wid) = match step {
            AReadStep::Hit { value, wid } => (value, wid),
            AReadStep::Miss { owner, request } => {
                self.inner
                    .net
                    .send(self.node, owner, request)
                    .map_err(|_| MemoryError::Shutdown)?;
                let reply = self.await_reply(node)?;
                node.state.lock().finish_read(loc, reply)
            }
        };
        self.record(OpRecord::read(loc, value.clone(), wid));
        Ok(value)
    }

    fn write(&self, loc: Location, value: V) -> Result<(), MemoryError> {
        self.check_bounds(loc)?;
        let node = &self.inner.nodes[self.node.index()];
        let _op = node.op_lock.lock();
        let step = node.state.lock().begin_write(loc, value.clone());
        let wid = match step {
            AWriteStep::Done { wid, outgoing } => {
                for (dst, msg) in outgoing {
                    self.inner
                        .net
                        .send(self.node, dst, msg)
                        .map_err(|_| MemoryError::Shutdown)?;
                }
                wid
            }
            AWriteStep::Blocked { wid, outgoing } => {
                for (dst, msg) in outgoing {
                    self.inner
                        .net
                        .send(self.node, dst, msg)
                        .map_err(|_| MemoryError::Shutdown)?;
                }
                let done = self.await_local_done(node)?;
                debug_assert_eq!(done, wid);
                wid
            }
            AWriteStep::Remote {
                wid,
                owner,
                request,
            } => {
                self.inner
                    .net
                    .send(self.node, owner, request)
                    .map_err(|_| MemoryError::Shutdown)?;
                let reply = self.await_reply(node)?;
                node.state.lock().finish_write(reply);
                wid
            }
        };
        self.record(OpRecord::write(loc, value, wid));
        Ok(())
    }

    fn discard(&self, loc: Location) {
        if loc.index() >= self.inner.config.locations() as usize {
            return;
        }
        let node = &self.inner.nodes[self.node.index()];
        let _op = node.op_lock.lock();
        node.state.lock().discard(loc);
    }
}
