//! Protocol messages of the atomic (strong-consistency) baseline.

use std::mem;

use memcore::{Location, PageId, Value, WriteId};
use simnet::Tagged;

/// One slot of a transferred page.
pub type SlotData<V> = (V, WriteId);

/// Messages of the invalidate-on-write owner protocol (after Li & Hudak's
/// write-invalidate shared virtual memory, simplified to fixed ownership).
///
/// The causal protocol's message types are a strict subset; `Inval` (and
/// `InvalAck` when acknowledged invalidation is enabled) is the extra
/// traffic strong consistency pays — the heart of the paper's §4.1
/// message-count comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum AMsg<V> {
    /// Fetch a page from its owner (adds the reader to the copyset).
    Read {
        /// The requested page.
        page: PageId,
    },
    /// The owner's current page contents.
    ReadReply {
        /// The page transferred.
        page: PageId,
        /// Per-location values and write tags.
        slots: Vec<SlotData<V>>,
    },
    /// Ask the owner to perform a write.
    Write {
        /// The location written.
        loc: Location,
        /// The value written.
        value: V,
        /// The unique tag of this write.
        wid: WriteId,
        /// Whether the writer holds a cached copy (so the owner keeps it
        /// in the copyset for the updated page).
        has_copy: bool,
    },
    /// The owner's confirmation that the write is globally visible.
    WriteReply {
        /// The location written.
        loc: Location,
        /// The tag of the confirmed write.
        wid: WriteId,
        /// The value written (echoed so the writer can cache it).
        value: V,
    },
    /// Invalidate any cached copy of `page`.
    Inval {
        /// The page to drop.
        page: PageId,
    },
    /// Acknowledgement of an `Inval` (only in acknowledged mode).
    InvalAck {
        /// The page that was dropped.
        page: PageId,
    },
    /// Engine shutdown sentinel.
    Halt,
}

impl<V> AMsg<V> {
    /// `true` for messages owners service.
    pub fn is_request(&self) -> bool {
        matches!(self, AMsg::Read { .. } | AMsg::Write { .. })
    }
}

impl<V: Value> Tagged for AMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            AMsg::Read { .. } => "READ",
            AMsg::ReadReply { .. } => "R_REPLY",
            AMsg::Write { .. } => "WRITE",
            AMsg::WriteReply { .. } => "W_REPLY",
            AMsg::Inval { .. } => "INVAL",
            AMsg::InvalAck { .. } => "INVAL_ACK",
            AMsg::Halt => "HALT",
        }
    }

    fn wire_size(&self) -> Option<usize> {
        let value_size = mem::size_of::<V>();
        Some(match self {
            AMsg::Read { .. } | AMsg::Inval { .. } | AMsg::InvalAck { .. } => 1 + 4,
            AMsg::ReadReply { slots, .. } => 1 + 4 + 4 + slots.len() * (value_size + 12),
            AMsg::Write { .. } => 1 + 4 + value_size + 12 + 1,
            AMsg::WriteReply { .. } => 1 + 4 + 12 + value_size,
            AMsg::Halt => 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::{NodeId, Word};

    #[test]
    fn kinds_are_distinct() {
        let msgs: Vec<AMsg<Word>> = vec![
            AMsg::Read {
                page: PageId::new(0),
            },
            AMsg::ReadReply {
                page: PageId::new(0),
                slots: vec![],
            },
            AMsg::Write {
                loc: Location::new(0),
                value: Word::Int(1),
                wid: WriteId::new(NodeId::new(0), 0),
                has_copy: false,
            },
            AMsg::WriteReply {
                loc: Location::new(0),
                wid: WriteId::new(NodeId::new(0), 0),
                value: Word::Int(1),
            },
            AMsg::Inval {
                page: PageId::new(0),
            },
            AMsg::InvalAck {
                page: PageId::new(0),
            },
            AMsg::Halt,
        ];
        let kinds: Vec<_> = msgs.iter().map(|m| m.kind()).collect();
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len());
        assert!(msgs[0].is_request());
        assert!(msgs[2].is_request());
        assert!(!msgs[4].is_request());
        assert!(msgs.iter().all(|m| m.wire_size().is_some()));
    }
}
