//! Strong-consistency litmus tests for the atomic baseline (threaded
//! engine, acknowledged invalidation) — the properties that distinguish it
//! from the causal engine.

use atomic_dsm::{AtomicCluster, InvalMode};
use memcore::{Location, SharedMemory, Word};

fn loc(i: u32) -> Location {
    Location::new(i)
}

fn acked_cluster(nodes: u32, locations: u32) -> AtomicCluster<Word> {
    AtomicCluster::<Word>::builder(nodes, locations)
        .configure(|c| c.inval_mode(InvalMode::Acknowledged))
        .build()
        .expect("cluster")
}

#[test]
fn dekker_never_reads_two_zeros_with_acknowledged_invalidation() {
    // P0: w(x)1 r(y) ; P1: w(y)1 r(x). Under acknowledged invalidation a
    // write completes only after every cached copy is gone, so at least
    // one process must observe the other's write. (This is the SC outcome
    // the Figure-5 causal execution escapes.)
    for round in 0..200 {
        let cluster = acked_cluster(2, 2);
        let p0 = cluster.handle(0);
        let p1 = cluster.handle(1);
        // Warm both caches so invalidation is actually exercised.
        let _ = p0.read(loc(1)).unwrap();
        let _ = p1.read(loc(0)).unwrap();

        let (r0, r1) = std::thread::scope(|scope| {
            let t0 = scope.spawn(|| {
                p0.write(loc(0), Word::Int(1)).unwrap();
                p0.read(loc(1)).unwrap()
            });
            let t1 = scope.spawn(|| {
                p1.write(loc(1), Word::Int(1)).unwrap();
                p1.read(loc(0)).unwrap()
            });
            (t0.join().unwrap(), t1.join().unwrap())
        });
        assert!(
            !(r0 == Word::Zero && r1 == Word::Zero),
            "round {round}: both-zero outcome on atomic memory"
        );
    }
}

#[test]
fn reads_always_see_completed_writes() {
    // Once a write has *returned*, every subsequent read anywhere must see
    // it (or something newer): single-location linearizability.
    let cluster = acked_cluster(3, 1);
    let writer = cluster.handle(1);
    let readers = [cluster.handle(0), cluster.handle(2)];
    for v in 1..=50i64 {
        writer.write(loc(0), Word::Int(v)).unwrap();
        for r in &readers {
            let seen = r.read(loc(0)).unwrap().as_int().unwrap();
            assert!(seen >= v, "read {seen} after write {v} completed");
        }
    }
}

#[test]
fn copyset_churn_under_concurrent_readers_and_writer() {
    let cluster = acked_cluster(4, 1);
    // Populate the copyset up front so the first write must invalidate
    // (the threads below race arbitrarily).
    for node in 1..4u32 {
        let _ = cluster.handle(node).read(loc(0)).unwrap();
    }
    std::thread::scope(|scope| {
        for node in 1..4u32 {
            let h = cluster.handle(node);
            scope.spawn(move || {
                let mut last = 0;
                for _ in 0..200 {
                    let v = h.read(loc(0)).unwrap().as_int().unwrap();
                    assert!(v >= last, "monotone reads expected, {v} < {last}");
                    last = v;
                }
            });
        }
        let owner = cluster.handle(0);
        scope.spawn(move || {
            for v in 1..=100i64 {
                owner.write(loc(0), Word::Int(v)).unwrap();
            }
        });
    });
    assert!(cluster.total_invalidations() > 0);
}

#[test]
fn fire_and_forget_mode_still_converges_after_quiescence() {
    let cluster = AtomicCluster::<Word>::builder(2, 2)
        .build()
        .expect("cluster");
    let p0 = cluster.handle(0);
    let p1 = cluster.handle(1);
    let _ = p1.read(loc(0)).unwrap();
    p0.write(loc(0), Word::Int(9)).unwrap();
    // The invalidation is in flight; a fresh read is always correct.
    assert_eq!(p1.read_fresh(loc(0)).unwrap(), Word::Int(9));
    // And after the inval lands, even a cached read re-fetches.
    assert_eq!(
        p1.wait_until(loc(0), &|v| *v == Word::Int(9)).unwrap(),
        Word::Int(9)
    );
}

#[test]
fn remote_writers_cache_their_writes() {
    let cluster = acked_cluster(2, 1);
    let p1 = cluster.handle(1);
    p1.write(loc(0), Word::Int(3)).unwrap();
    let before = cluster.messages().snapshot().total();
    assert_eq!(p1.read(loc(0)).unwrap(), Word::Int(3));
    assert_eq!(
        cluster.messages().snapshot().total(),
        before,
        "read-after-write hits the writer's cache"
    );
}

#[test]
fn page_mode_amortizes_fetches_and_false_shares() {
    let cluster = AtomicCluster::<Word>::builder(2, 8)
        .configure(|c| c.page_size(4).inval_mode(InvalMode::Acknowledged))
        .build()
        .expect("cluster");
    let p0 = cluster.handle(0);
    let p1 = cluster.handle(1);
    // P0 owns page 0 (locations 0..4).
    p0.write(loc(0), Word::Int(10)).unwrap();
    p0.write(loc(3), Word::Int(13)).unwrap();
    // One fetch caches the whole page at P1.
    assert_eq!(p1.read(loc(0)).unwrap(), Word::Int(10));
    let before = cluster.messages().snapshot().total();
    assert_eq!(p1.read(loc(3)).unwrap(), Word::Int(13));
    assert_eq!(cluster.messages().snapshot().total(), before);
    // False sharing: a write to ANY slot of the page invalidates P1's
    // whole copy.
    p0.write(loc(1), Word::Int(11)).unwrap();
    let before = cluster.messages().snapshot().total();
    assert_eq!(p1.read(loc(3)).unwrap(), Word::Int(13)); // refetch
    assert!(cluster.messages().snapshot().total() > before);
}

#[test]
fn messages_include_invalidation_traffic() {
    let cluster = acked_cluster(3, 1);
    let p1 = cluster.handle(1);
    let p2 = cluster.handle(2);
    let _ = p1.read(loc(0)).unwrap();
    let _ = p2.read(loc(0)).unwrap();
    let before = cluster.messages().snapshot();
    cluster.handle(0).write(loc(0), Word::Int(1)).unwrap();
    let delta = cluster.messages().snapshot().since(&before);
    // Two cached copies: two INVALs and two acks.
    assert_eq!(delta.kind_total("INVAL"), 2);
    assert_eq!(delta.kind_total("INVAL_ACK"), 2);
}
