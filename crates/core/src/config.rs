//! Configuration of the causal owner protocol.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use dsm_durable::DurableConfig;
use memcore::{OwnerMap, PageId, RoundRobinOwners, Value};

/// Which cache sweeps run when a new value is introduced.
///
/// The paper's prose says values are invalidated "each time a new value is
/// introduced into local memory by a read or write", but its Figure 4
/// pseudocode only sweeps on read-miss completion and at the owner when
/// servicing a remote `WRITE` — the *writer* of a remote write does not
/// sweep on `W_REPLY`. Both readings are implemented; the difference is an
/// ablation (A1 in `DESIGN.md`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum InvalidationMode {
    /// Exactly Figure 4: no sweep at the writer on `W_REPLY`.
    #[default]
    PaperExact,
    /// Additionally sweep the writer's cache with the merged timestamp when
    /// a remote write completes.
    WriterInvalidate,
}

/// How an owner resolves a remote write that is *concurrent* with the value
/// currently installed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Always install the incoming write (the arriving write's merged
    /// timestamp dominates, so owner memory remains monotone).
    #[default]
    LastArrival,
    /// §4.2: "writes by the owner are always favored when resolving
    /// concurrent writes" — an incoming write concurrent with a value the
    /// owner itself wrote is rejected, and the reply carries the surviving
    /// value so the loser's cache converges. The distributed dictionary
    /// relies on this policy.
    OwnerFavored,
}

/// Configuration of the owner-failover layer: heartbeat failure detection,
/// hot-standby replication to each page's deterministic successor, and
/// epoch-stamped ownership migration (see `docs/FAULTS.md` §4).
///
/// Attached via [`CausalConfigBuilder::failover`]; absent (the default),
/// the protocol is byte-identical to Figure 4 — no heartbeats, no stamps,
/// no shadow copies.
///
/// Time quantities are in transport time units: simulator ticks under the
/// deterministic simulator, milliseconds under the threaded engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailoverConfig {
    /// Interval between liveness probes to every peer.
    pub heartbeat_interval: u64,
    /// Consecutive missed heartbeat intervals before a peer is suspected
    /// and its pages migrate to their successors.
    pub suspicion_threshold: u32,
    /// Base delay of the exponential retry backoff after a timed-out or
    /// NACKed owner round-trip.
    pub backoff_base: u64,
    /// Ceiling of the exponential retry backoff.
    pub backoff_max: u64,
    /// Retries (redirects or timeouts) an operation consumes before
    /// surfacing [`memcore::MemoryError::Timeout`].
    pub max_retries: u32,
    /// How many ring successors each node probes with heartbeats.
    ///
    /// `0` (the default) probes every peer — the all-pairs detector the
    /// failover layer shipped with, O(n²) heartbeats per interval. A
    /// positive `k` scopes probing to the `k` successors in the owner
    /// map's ring order ([`memcore::OwnerMap::neighbors`]), O(n·k) per
    /// interval; each node is then monitored by exactly its `k`
    /// predecessors. Owners a node talks to but does not monitor are still
    /// covered by the request-timeout path, which suspects on evidence of
    /// unresponsiveness rather than missed probes.
    pub heartbeat_fanout: u32,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            heartbeat_interval: 25,
            suspicion_threshold: 4,
            backoff_base: 10,
            backoff_max: 400,
            max_retries: 8,
            heartbeat_fanout: 0,
        }
    }
}

impl FailoverConfig {
    /// The retry backoff before attempt `attempt` (0-based), with a small
    /// deterministic jitter derived from `salt` so colliding retriers
    /// spread out identically on replay.
    #[must_use]
    pub fn backoff(&self, attempt: u32, salt: u64) -> u64 {
        let exp = self
            .backoff_base
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.backoff_max);
        // Deterministic jitter in [0, exp/4]: a cheap hash of the salt.
        let jitter = (salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) % (exp / 4 + 1);
        exp + jitter
    }
}

/// Full configuration of a causal DSM instance.
///
/// Build with [`CausalConfig::builder`].
#[derive(Clone)]
pub struct CausalConfig<V> {
    nodes: u32,
    locations: u32,
    owners: Arc<dyn OwnerMap>,
    initial: V,
    invalidation: InvalidationMode,
    policy: WritePolicy,
    cache_capacity: Option<usize>,
    const_pages: HashSet<PageId>,
    owner_timeout: Option<Duration>,
    owner_retries: u32,
    pipeline_window: u32,
    batching: bool,
    failover: Option<FailoverConfig>,
    interest_scoping: bool,
    durability: Option<DurableConfig>,
}

impl<V: Value> CausalConfig<V> {
    /// Starts building a configuration for `nodes` processors sharing
    /// `locations` locations (round-robin page ownership by default).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `locations` is zero.
    #[must_use]
    pub fn builder(nodes: u32, locations: u32) -> CausalConfigBuilder<V>
    where
        V: Default,
    {
        CausalConfigBuilder::new(nodes, locations)
    }

    /// Number of processors.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Size of the shared namespace, in locations.
    #[must_use]
    pub fn locations(&self) -> u32 {
        self.locations
    }

    /// The ownership assignment.
    #[must_use]
    pub fn owners(&self) -> &Arc<dyn OwnerMap> {
        &self.owners
    }

    /// Locations per page.
    #[must_use]
    pub fn page_size(&self) -> u32 {
        self.owners.page_size()
    }

    /// Number of pages in the namespace.
    #[must_use]
    pub fn page_count(&self) -> u32 {
        self.locations.div_ceil(self.page_size())
    }

    /// The distinguished initial value every location starts with.
    #[must_use]
    pub fn initial(&self) -> &V {
        &self.initial
    }

    /// The configured invalidation mode.
    #[must_use]
    pub fn invalidation(&self) -> InvalidationMode {
        self.invalidation
    }

    /// The configured concurrent-write resolution policy.
    #[must_use]
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// Maximum number of cached (non-owned) pages per node, if bounded.
    #[must_use]
    pub fn cache_capacity(&self) -> Option<usize> {
        self.cache_capacity
    }

    /// `true` iff `page` is marked constant (never invalidated or evicted —
    /// the paper's footnote-2 enhancement for the solver's `A` and `b`).
    #[must_use]
    pub fn is_const_page(&self, page: PageId) -> bool {
        self.const_pages.contains(&page)
    }

    /// How long one owner round-trip may wait for its reply before the
    /// engine re-checks for shutdown and, after
    /// [`owner_retries`](CausalConfig::owner_retries) further windows,
    /// fails with [`memcore::MemoryError::Timeout`].
    ///
    /// `None` (the default) waits forever — the paper's model, where the
    /// network is reliable and owners always answer.
    #[must_use]
    pub fn owner_timeout(&self) -> Option<Duration> {
        self.owner_timeout
    }

    /// Number of additional timeout windows an owner round-trip waits
    /// through before giving up (ignored unless
    /// [`owner_timeout`](CausalConfig::owner_timeout) is set).
    #[must_use]
    pub fn owner_retries(&self) -> u32 {
        self.owner_retries
    }

    /// Maximum number of pipelined writes a node may have in flight to one
    /// owner at a time (the paper's "reducing the blocking of processors"
    /// enhancement, bounded).
    ///
    /// `0` (the default) disables the pipeline entirely: `write_pipelined`
    /// degenerates to the blocking Figure-4 round-trip and the protocol is
    /// byte-identical to the paper's.
    #[must_use]
    pub fn pipeline_window(&self) -> u32 {
        self.pipeline_window
    }

    /// Whether pipelined writes to the same owner may share one transport
    /// envelope (`Msg::Batch`), with the owner coalescing its invalidation
    /// sweeps over the batch and piggybacking all acks on one reply.
    ///
    /// `false` (the default) sends every message in its own envelope —
    /// byte-identical to the paper's protocol. Logical per-kind message
    /// counts are unchanged either way; only the *physical envelope* count
    /// drops when enabled.
    #[must_use]
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// The owner-failover layer's configuration, or `None` (the default)
    /// for the paper's static-ownership protocol.
    #[must_use]
    pub fn failover(&self) -> Option<FailoverConfig> {
        self.failover
    }

    /// Whether metadata is interest-scoped (the partial-replication
    /// layer): owners track which nodes cache each page and ship
    /// replications/interest messages only to them, and every timestamp
    /// leaves the node in the sparse wire encoding
    /// ([`crate::Stamp`]). `false` (the default) is byte-identical to
    /// Figure 4.
    #[must_use]
    pub fn interest_scoping(&self) -> bool {
        self.interest_scoping
    }

    /// The durability layer's tuning, or `None` (the default) when the
    /// node journals nothing. Off ⇒ no write-ahead appends, no journal
    /// records, and — like every gated layer — wire traffic
    /// byte-identical to Figure 4.
    #[must_use]
    pub fn durability(&self) -> Option<DurableConfig> {
        self.durability
    }
}

impl<V> fmt::Debug for CausalConfig<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CausalConfig")
            .field("nodes", &self.nodes)
            .field("locations", &self.locations)
            .field("page_size", &self.owners.page_size())
            .field("invalidation", &self.invalidation)
            .field("policy", &self.policy)
            .field("cache_capacity", &self.cache_capacity)
            .field("const_pages", &self.const_pages.len())
            .field("owner_timeout", &self.owner_timeout)
            .field("owner_retries", &self.owner_retries)
            .field("pipeline_window", &self.pipeline_window)
            .field("batching", &self.batching)
            .field("failover", &self.failover)
            .field("interest_scoping", &self.interest_scoping)
            .field("durability", &self.durability)
            .finish()
    }
}

/// Builder for [`CausalConfig`].
///
/// # Examples
///
/// ```
/// use causal_dsm::{CausalConfig, InvalidationMode, WritePolicy};
/// use memcore::Word;
///
/// let config = CausalConfig::<Word>::builder(4, 64)
///     .page_size(4)
///     .policy(WritePolicy::OwnerFavored)
///     .invalidation(InvalidationMode::PaperExact)
///     .cache_capacity(8)
///     .build();
/// assert_eq!(config.page_count(), 16);
/// ```
pub struct CausalConfigBuilder<V> {
    nodes: u32,
    locations: u32,
    page_size: u32,
    owners: Option<Arc<dyn OwnerMap>>,
    initial: V,
    invalidation: InvalidationMode,
    policy: WritePolicy,
    cache_capacity: Option<usize>,
    const_pages: HashSet<PageId>,
    owner_timeout: Option<Duration>,
    owner_retries: u32,
    pipeline_window: u32,
    batching: bool,
    failover: Option<FailoverConfig>,
    interest_scoping: bool,
    durability: Option<DurableConfig>,
}

impl<V: Value + Default> CausalConfigBuilder<V> {
    fn new(nodes: u32, locations: u32) -> Self {
        assert!(nodes > 0, "at least one node required");
        assert!(locations > 0, "at least one location required");
        CausalConfigBuilder {
            nodes,
            locations,
            page_size: 1,
            owners: None,
            initial: V::default(),
            invalidation: InvalidationMode::default(),
            policy: WritePolicy::default(),
            cache_capacity: None,
            const_pages: HashSet::new(),
            owner_timeout: None,
            owner_retries: 0,
            pipeline_window: 0,
            batching: false,
            failover: None,
            interest_scoping: false,
            durability: None,
        }
    }
}

impl<V: Value> CausalConfigBuilder<V> {
    /// Sets the unit of sharing (default 1 — the paper-exact protocol).
    ///
    /// Ignored if [`CausalConfigBuilder::owners`] is also set (the owner
    /// map carries its own page size).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn page_size(mut self, page_size: u32) -> Self {
        assert!(page_size > 0, "page size must be positive");
        self.page_size = page_size;
        self
    }

    /// Sets an explicit ownership assignment (default round-robin).
    #[must_use]
    pub fn owners(mut self, owners: impl OwnerMap) -> Self {
        self.owners = Some(Arc::new(owners));
        self
    }

    /// Sets the initial value of every location (default `V::default()`).
    #[must_use]
    pub fn initial(mut self, initial: V) -> Self {
        self.initial = initial;
        self
    }

    /// Sets the invalidation mode (default [`InvalidationMode::PaperExact`]).
    #[must_use]
    pub fn invalidation(mut self, mode: InvalidationMode) -> Self {
        self.invalidation = mode;
        self
    }

    /// Sets the concurrent-write policy (default
    /// [`WritePolicy::LastArrival`]).
    #[must_use]
    pub fn policy(mut self, policy: WritePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Bounds the number of cached (non-owned) pages per node; the oldest
    /// cached page is discarded to make room (the paper's `discard` as a
    /// replacement policy).
    #[must_use]
    pub fn cache_capacity(mut self, pages: usize) -> Self {
        self.cache_capacity = Some(pages);
        self
    }

    /// Marks pages as constant: cached copies are never invalidated or
    /// evicted. Safe only for data written once before sharing (the
    /// solver's `A` and `b`).
    #[must_use]
    pub fn const_pages(mut self, pages: impl IntoIterator<Item = PageId>) -> Self {
        self.const_pages.extend(pages);
        self
    }

    /// Bounds each owner round-trip wait to `timeout` per window (default:
    /// wait forever, the paper's reliable-network assumption). Set this
    /// when the transport can lose messages, so blocked operations fail
    /// with [`memcore::MemoryError::Timeout`] instead of hanging.
    #[must_use]
    pub fn owner_timeout(mut self, timeout: Duration) -> Self {
        self.owner_timeout = Some(timeout);
        self
    }

    /// Grants `retries` additional timeout windows before an owner
    /// round-trip gives up (default 0; meaningful only with
    /// [`owner_timeout`](CausalConfigBuilder::owner_timeout)).
    #[must_use]
    pub fn owner_retries(mut self, retries: u32) -> Self {
        self.owner_retries = retries;
        self
    }

    /// Allows up to `window` pipelined writes in flight to one owner at a
    /// time (default 0 — every write blocks for its `W_REPLY`, exactly
    /// Figure 4). See [`CausalConfig::pipeline_window`].
    #[must_use]
    pub fn pipeline_window(mut self, window: u32) -> Self {
        self.pipeline_window = window;
        self
    }

    /// Lets pipelined writes and their replies share transport envelopes
    /// (default `false` — one envelope per message). See
    /// [`CausalConfig::batching`].
    #[must_use]
    pub fn batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// Enables the owner-failover layer with the given knobs (default:
    /// disabled — static ownership, exactly Figure 4). See
    /// [`FailoverConfig`].
    #[must_use]
    pub fn failover(mut self, failover: FailoverConfig) -> Self {
        self.failover = Some(failover);
        self
    }

    /// Enables interest-scoped metadata: per-page interest sets at owners
    /// and sparse timestamp encoding on the wire (default `false` —
    /// byte-identical to Figure 4). See
    /// [`CausalConfig::interest_scoping`].
    #[must_use]
    pub fn interest_scoping(mut self, on: bool) -> Self {
        self.interest_scoping = on;
        self
    }

    /// Enables the durability layer with the given tuning (default: off).
    ///
    /// With durability on, the engine appends every certified write (and
    /// every epoch advance, page install, and interest change) to a
    /// write-ahead log *before* replying, per the configured
    /// [`SyncPolicy`](dsm_durable::SyncPolicy); see
    /// [`CausalConfig::durability`].
    #[must_use]
    pub fn durability(mut self, durability: DurableConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if an explicit owner map disagrees with the node count.
    #[must_use]
    pub fn build(self) -> CausalConfig<V> {
        let owners = self
            .owners
            .unwrap_or_else(|| Arc::new(RoundRobinOwners::new(self.nodes, self.page_size)));
        assert_eq!(
            owners.nodes(),
            self.nodes,
            "owner map node count disagrees with configuration"
        );
        CausalConfig {
            nodes: self.nodes,
            locations: self.locations,
            owners,
            initial: self.initial,
            invalidation: self.invalidation,
            policy: self.policy,
            cache_capacity: self.cache_capacity,
            const_pages: self.const_pages,
            owner_timeout: self.owner_timeout,
            owner_retries: self.owner_retries,
            pipeline_window: self.pipeline_window,
            batching: self.batching,
            failover: self.failover,
            interest_scoping: self.interest_scoping,
            durability: self.durability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::{ExplicitOwners, Location, NodeId, Word};

    #[test]
    fn defaults_are_paper_exact() {
        let config = CausalConfig::<Word>::builder(2, 4).build();
        assert_eq!(config.nodes(), 2);
        assert_eq!(config.locations(), 4);
        assert_eq!(config.page_size(), 1);
        assert_eq!(config.page_count(), 4);
        assert_eq!(config.invalidation(), InvalidationMode::PaperExact);
        assert_eq!(config.policy(), WritePolicy::LastArrival);
        assert_eq!(config.cache_capacity(), None);
        assert_eq!(config.initial(), &Word::Zero);
    }

    #[test]
    fn page_count_rounds_up() {
        let config = CausalConfig::<Word>::builder(2, 10).page_size(4).build();
        assert_eq!(config.page_count(), 3);
    }

    #[test]
    fn explicit_owners_override_round_robin() {
        let owners = ExplicitOwners::new(2, 1, vec![NodeId::new(1), NodeId::new(1)]);
        let config = CausalConfig::<Word>::builder(2, 2).owners(owners).build();
        assert_eq!(config.owners().owner_of(Location::new(0)), NodeId::new(1));
    }

    #[test]
    fn const_pages_are_flagged() {
        let config = CausalConfig::<Word>::builder(2, 8)
            .const_pages([PageId::new(3)])
            .build();
        assert!(config.is_const_page(PageId::new(3)));
        assert!(!config.is_const_page(PageId::new(2)));
    }

    #[test]
    #[should_panic(expected = "disagrees")]
    fn mismatched_owner_map_panics() {
        let owners = ExplicitOwners::new(3, 1, vec![NodeId::new(0)]);
        let _ = CausalConfig::<Word>::builder(2, 2).owners(owners).build();
    }

    #[test]
    fn debug_output_is_nonempty() {
        let config = CausalConfig::<Word>::builder(2, 4).build();
        assert!(format!("{config:?}").contains("CausalConfig"));
    }

    #[test]
    fn pipelining_and_batching_default_off() {
        let config = CausalConfig::<Word>::builder(2, 4).build();
        assert_eq!(config.pipeline_window(), 0);
        assert!(!config.batching());
        let config = CausalConfig::<Word>::builder(2, 4)
            .pipeline_window(8)
            .batching(true)
            .build();
        assert_eq!(config.pipeline_window(), 8);
        assert!(config.batching());
    }

    #[test]
    fn failover_defaults_off_and_backoff_is_bounded() {
        let config = CausalConfig::<Word>::builder(2, 4).build();
        assert_eq!(config.failover(), None, "failover must be opt-in");
        let fo = FailoverConfig::default();
        let config = CausalConfig::<Word>::builder(2, 4).failover(fo).build();
        assert_eq!(config.failover(), Some(fo));
        // Backoff grows, saturates at the ceiling (+ jitter ≤ 25%), and is
        // deterministic per (attempt, salt).
        let b0 = fo.backoff(0, 1);
        let b3 = fo.backoff(3, 1);
        assert!(b3 >= b0);
        for attempt in 0..40 {
            let b = fo.backoff(attempt, 7);
            assert!(b <= fo.backoff_max + fo.backoff_max / 4, "{b}");
            assert_eq!(b, fo.backoff(attempt, 7));
        }
        assert_ne!(
            fo.backoff(2, 1),
            fo.backoff(2, 2),
            "jitter must vary by salt"
        );
    }

    #[test]
    fn interest_scoping_defaults_off() {
        let config = CausalConfig::<Word>::builder(2, 4).build();
        assert!(!config.interest_scoping(), "interest scoping must be opt-in");
        assert_eq!(
            FailoverConfig::default().heartbeat_fanout,
            0,
            "all-pairs probing must stay the default"
        );
        let config = CausalConfig::<Word>::builder(2, 4)
            .interest_scoping(true)
            .build();
        assert!(config.interest_scoping());
    }

    #[test]
    fn owner_timeout_defaults_to_forever() {
        let config = CausalConfig::<Word>::builder(2, 4).build();
        assert_eq!(config.owner_timeout(), None);
        assert_eq!(config.owner_retries(), 0);
        let config = CausalConfig::<Word>::builder(2, 4)
            .owner_timeout(Duration::from_millis(50))
            .owner_retries(3)
            .build();
        assert_eq!(config.owner_timeout(), Some(Duration::from_millis(50)));
        assert_eq!(config.owner_retries(), 3);
    }
}
