//! The threaded engine: one server thread per node, application handles
//! that block on owner round-trips.
//!
//! The paper requires that "each operation must be executed atomically and
//! owners must fairly alternate between issuing reads and writes and
//! responding to READ and WRITE messages from other processors". The engine
//! realizes this with one *server* thread per node (servicing `READ`/`WRITE`
//! requests) and per-node application handles whose operations take the
//! node's state lock only for the atomic steps of Figure 4, releasing it
//! while blocked on a reply — so a node can serve incoming requests while
//! one of its own operations waits, which is exactly the fair alternation
//! the paper asks for (and what makes the protocol deadlock-free).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};
use dsm_durable::{Disk, Store, WalRecord};
use memcore::{
    Location, MemoryError, NetStats, NodeId, OpRecord, PageId, Recorder, SharedMemory, Value,
    WriteId,
};
use parking_lot::{Mutex, MutexGuard, RwLock};
use simnet::codec::Wire;
use simnet::{BatchPolicy, Batcher, Envelope, Network};
use vclock::VectorClock;

use crate::config::{CausalConfig, CausalConfigBuilder, FailoverConfig};
use crate::msg::Msg;
use crate::state::{CausalState, ReadStep, WriteDone, WriteStep};

/// What reply the one outstanding owner round-trip is waiting for. Replies
/// are recognized by *content* — the page of a READ, the unique tag of a
/// WRITE — so a stale reply left over from a previously timed-out
/// operation is silently discarded instead of being misattributed (the
/// regression `Timeout` used to make unrecoverable). Under failover the
/// op stamp is matched as well.
#[derive(Clone, Copy, Debug)]
enum Want {
    Read { page: PageId },
    Write { wid: WriteId },
}

#[derive(Clone, Copy, Debug)]
struct Expected {
    /// The op id the reply must echo (failover only).
    op: Option<u64>,
    want: Want,
}

/// Sender-side state of the bounded write pipeline: which owner the open
/// window points at, how many pipelined writes are outstanding toward it
/// (sent *or* still buffered), and — with transport batching on — the run
/// of WRITE requests accumulated but not yet put on the wire.
///
/// Invariant: `in_flight == 0` iff `owner == None` iff the batcher is
/// empty. The window only ever points at one owner at a time; switching
/// owners requires a full drain (see `drain_pipeline_locked` for why).
struct PipelineState<V: Value> {
    owner: Option<NodeId>,
    in_flight: usize,
    batcher: Batcher<Msg<V>>,
}

/// Where a node's durability journal goes. A trait object so the engine
/// itself needs no `Wire` bound on `V` — only the durable constructors
/// (which open real [`Store`]s) do.
trait JournalSink<V: Value>: Send + Sync {
    /// Appends one batch of records, returning once they are as durable
    /// as the store's sync policy promises.
    fn persist(&self, records: &[WalRecord<V>]);
    /// Whether enough records accumulated that the caller should
    /// checkpoint.
    fn wants_checkpoint(&self) -> bool;
    /// Installs `image` as the new checkpoint, compacting the log.
    fn checkpoint(&self, image: &[WalRecord<V>]);
}

struct StoreSink<V>(Mutex<Store<V>>);

impl<V: Value + Wire> JournalSink<V> for StoreSink<V> {
    fn persist(&self, records: &[WalRecord<V>]) {
        self.0.lock().append(records);
    }

    fn wants_checkpoint(&self) -> bool {
        self.0.lock().wants_checkpoint()
    }

    fn checkpoint(&self, image: &[WalRecord<V>]) {
        self.0.lock().checkpoint(image);
    }
}

/// Per-node boot material for a durable build: the WAL sink plus the
/// state recovered from (or freshly created against) its disk.
struct DurableBoot<V: Value> {
    sink: Arc<dyn JournalSink<V>>,
    state: CausalState<V>,
}

struct NodeShared<V: Value> {
    /// Protocol state. A reader–writer lock: cache-hit reads are
    /// non-mutating (Figure 4's read procedure touches no state on a hit)
    /// and run under the shared lock, concurrently with each other;
    /// everything that moves the clock takes the exclusive lock.
    state: RwLock<CausalState<V>>,
    /// Serializes this node's application operations (program order) and
    /// guards the one-outstanding-remote-op invariant (`replies` carries
    /// at most one in-flight reply). Cache-hit reads don't take it.
    op_lock: Mutex<()>,
    /// Replies forwarded by the server thread to the blocked operation.
    replies: Receiver<Msg<V>>,
    /// Tags of outstanding non-blocking writes, mapped to whether each
    /// belongs to the bounded pipeline (`true`) or is a raw
    /// [`CausalHandle::write_nonblocking`] (`false`); their replies are
    /// absorbed by the server thread instead of waking the application.
    nonblocking: Mutex<HashMap<memcore::WriteId, bool>>,
    /// `nonblocking.len()`, readable without the mutex: the server thread
    /// checks it before locking, so clusters that never use non-blocking
    /// writes pay nothing on the reply path.
    ///
    /// Ordering audit — the Release/Acquire pair is load-bearing:
    ///
    /// * **Publish.** The application inserts into the registry and
    ///   `fetch_add(1, Release)`s *before* sending the WRITE. Every reply
    ///   the server receives sits causally downstream of that send
    ///   (mailbox send → owner recv → reply send → server recv, each a
    ///   release/acquire edge), so whenever a reply for a registered tag
    ///   can be in the mailbox, the server's `load(Acquire)` observes a
    ///   non-zero count and takes the registry lock. A stale zero read is
    ///   only possible when no registered reply is in flight — exactly
    ///   when skipping the lock is correct.
    /// * **Retire.** The server `fetch_sub(1, Release)`s only *after*
    ///   absorbing the reply into the state, so an observer that sees the
    ///   count drop also sees the merged clock (this is what lets
    ///   [`CausalHandle::flush`] treat a drained pipeline as "all replies
    ///   in `VT_i`").
    /// * **Rollback.** If the send itself fails after registration, the
    ///   writer removes the entry and decrements on the spot (regression
    ///   test `send_failure_rolls_back_nonblocking_registration` in
    ///   `tests/hot_path.rs`). Between insert and rollback the counter
    ///   overcounts; the only cost is one spurious registry lock on the
    ///   server.
    nonblocking_count: AtomicUsize,
    /// Bounded-pipeline window state; see [`PipelineState`]. Guarded by
    /// its own mutex (not `op_lock`) because the *server* thread also
    /// updates it when absorbing pipelined replies.
    pipeline: Mutex<PipelineState<V>>,
    /// Signalled (`notify_all`) by the server thread after it absorbs a
    /// pipelined reply and decrements `in_flight` — the wake-up edge for
    /// window backpressure and [`CausalHandle::flush`].
    pipeline_cv: Condvar,
    /// The node's write-ahead log, if this is a durable build. `None`
    /// keeps every journal hook on the zero-cost path.
    wal: Option<Arc<dyn JournalSink<V>>>,
}

impl<V: Value> NodeShared<V> {
    /// Runs `f` under the exclusive state lock and, on durable builds,
    /// appends whatever it journaled *before* the lock is released.
    ///
    /// Holding the lock across the append is what makes the log's order
    /// match the state-mutation order: the server thread and application
    /// threads both mutate this node's state, and two installs to the
    /// same slot must reach the log in install order or replay resurrects
    /// the loser. Callers send replies only after this returns, so a
    /// certified operation is as durable as the sync policy promises.
    fn mutate<R>(&self, f: impl FnOnce(&mut CausalState<V>) -> R) -> R {
        let mut st = self.state.write();
        let r = f(&mut st);
        if self.wal.is_some() {
            self.persist_locked(&mut st);
        }
        r
    }

    /// Drains and appends the journal; caller holds the exclusive state
    /// lock. Checkpoints are taken here too, still under the lock — every
    /// append also requires the lock, so nothing can slip a record into
    /// the log between the image capture and the commit that resets it.
    fn persist_locked(&self, st: &mut CausalState<V>) {
        let Some(wal) = &self.wal else { return };
        let records = st.take_journal();
        if records.is_empty() {
            return;
        }
        wal.persist(&records);
        if wal.wants_checkpoint() {
            let image = st.durable_image();
            wal.checkpoint(&image);
        }
    }
}

/// Shutdown latch for the heartbeat tickers: a flag under a mutex plus a
/// condvar. `shutdown()` raising the flag wakes sleepers immediately,
/// where a plain `thread::sleep` between flag checks used to stretch
/// shutdown by up to one full heartbeat interval.
struct StopSignal {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl StopSignal {
    fn new() -> Self {
        StopSignal {
            stopped: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Raises the flag and wakes every waiter.
    fn stop(&self) {
        *self.stopped.lock() = true;
        self.cv.notify_all();
    }

    /// Whether the flag has been raised.
    fn is_stopped(&self) -> bool {
        *self.stopped.lock()
    }

    /// Sleeps for `timeout` unless stopped first; returns `true` iff the
    /// signal was raised (immediately if it already was).
    fn wait_for(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.stopped.lock();
        while !*guard {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _) = self
                .cv
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
        true
    }
}

/// Puts a run of buffered pipelined WRITEs on the wire as one envelope (a
/// single message, or [`Msg::Batch`] for runs of two or more), rolling
/// back the run's window slots and registry entries if the transport is
/// down. Caller holds the pipeline lock. A free function because both
/// sides of the pipeline send: the application thread
/// (`write_pipelined`/`flush`) and the server loop, which ships the run
/// that accumulated during a round trip the moment the wire drains (the
/// adaptive-batching hand-off).
fn send_run_locked<V: Value>(
    net: &Network<Msg<V>>,
    src: NodeId,
    node: &NodeShared<V>,
    p: &mut PipelineState<V>,
    owner: NodeId,
    mut run: Vec<Msg<V>>,
) -> Result<(), MemoryError> {
    let wids: Vec<memcore::WriteId> = run
        .iter()
        .filter_map(|m| match m {
            Msg::Write { wid, .. } => Some(*wid),
            _ => None,
        })
        .collect();
    let envelope = if run.len() == 1 {
        run.pop().expect("length checked")
    } else {
        Msg::Batch(run)
    };
    if net.send(src, owner, envelope).is_err() {
        // A failed send means the network has shut down, which is
        // terminal for the session: every later operation on this
        // handle also fails with `Shutdown`, and no reply will ever
        // arrive for any member of the run. That is what makes it
        // sound to unregister the *entire* run — including earlier
        // `write_pipelined` calls that already returned `Ok(wid)` to
        // their callers (their VT increments and optimistic cache
        // installs stay applied) — rather than only the write being
        // issued: nothing can observe the orphaned registrations, and
        // leaving them would wedge a later `flush()` on replies that
        // cannot come. If sends ever become retryable, this must be
        // narrowed to the failing write only.
        let mut registry = node.nonblocking.lock();
        for wid in &wids {
            if registry.remove(wid).is_some() {
                node.nonblocking_count.fetch_sub(1, Ordering::Release);
            }
        }
        drop(registry);
        p.in_flight -= wids.len();
        if p.in_flight == 0 {
            p.owner = None;
        }
        return Err(MemoryError::Shutdown);
    }
    Ok(())
}

/// One node's server loop as a value: everything the per-node server
/// thread used to close over, with the thread's `match` body factored
/// into [`ServerCtx::process`] so a transport can run the loop on its own
/// I/O thread instead (see [`InlineServer`]).
struct ServerCtx<V: Value> {
    me: NodeId,
    node: Arc<NodeShared<V>>,
    net: Network<Msg<V>>,
    /// Wakes the application operation blocked on `NodeShared::replies`.
    /// Held here (not by a thread) in inline mode, so dropping the
    /// transport's sink is what disconnects blocked handles.
    reply_tx: Sender<Msg<V>>,
    failover_on: bool,
    clock_start: Instant,
}

impl<V: Value> ServerCtx<V> {
    /// Executes the server loop's body for one inbound envelope: serve
    /// requests (Figure 4's owner side), absorb or forward replies, feed
    /// the failure detector. Returns `false` on [`Msg::Halt`] — the
    /// loop's exit signal.
    fn process(&self, env: Envelope<Msg<V>>) -> bool {
        let me = self.me;
        let node = &self.node;
        let net = &self.net;
        if self.failover_on && env.src != me {
            // Any message is liveness evidence.
            let now = self.clock_start.elapsed().as_millis() as u64;
            node.state.write().record_alive(env.src, now);
        }
        match env.payload {
            Msg::Halt => return false,
            Msg::Heartbeat { .. } => {}
            Msg::Suspect { suspect, epochs } => {
                let repl = node.mutate(|st| {
                    st.absorb_suspect(suspect, &epochs);
                    st.take_replications()
                });
                for (dst, msg) in repl {
                    let _ = net.send(me, dst, msg);
                }
            }
            Msg::Replicate {
                page,
                vt,
                slots,
                origins,
            } => {
                node.mutate(|st| st.apply_replicate(page, vt.into_inner(), slots, origins));
            }
            Msg::Interest { page } => {
                // A peer evicted its copy: stop counting it as interested.
                node.mutate(|st| st.handle_interest_drop(page, env.src));
            }
            Msg::Stamped { epoch, op, inner } if inner.is_request() => {
                let (reply, repl) = node.mutate(|st| {
                    let reply = st.serve_stamped(env.src, epoch, op, *inner);
                    (reply, st.take_replications())
                });
                if let Some(reply) = reply {
                    let _ = net.send(me, env.src, reply);
                }
                for (dst, msg) in repl {
                    let _ = net.send(me, dst, msg);
                }
            }
            Msg::Batch(parts) => {
                // A transport batch is semantically its parts, in order.
                // Requests are served in one state-lock pass with a single
                // coalesced invalidation sweep, and their replies travel
                // back as one envelope (the piggybacked acks); reply parts
                // are absorbed/forwarded exactly as if they arrived alone.
                let mut requests = Vec::with_capacity(parts.len());
                for part in parts {
                    if part.is_request() {
                        requests.push(part);
                    } else {
                        self.absorb_or_forward(part);
                    }
                }
                if !requests.is_empty() {
                    let mut replies = node.mutate(|st| st.serve_batch(env.src, requests));
                    let reply = if replies.len() == 1 {
                        replies.pop().expect("length checked")
                    } else {
                        Msg::Batch(replies)
                    };
                    let _ = net.send(me, env.src, reply);
                }
            }
            request if request.is_request() => {
                let reply = node
                    .mutate(|st| st.serve(env.src, request))
                    .expect("requests always produce replies");
                // Best effort: the requester may already be shutting down.
                let _ = net.send(me, env.src, reply);
            }
            reply => self.absorb_or_forward(reply),
        }
        true
    }

    /// Replies to non-blocking/pipelined writes are absorbed here;
    /// everything else wakes the blocked application operation. The
    /// counter check keeps the common (blocking-only) reply path off the
    /// registry mutex entirely.
    fn absorb_or_forward(&self, reply: Msg<V>) {
        let node = &self.node;
        let absorbed = match &reply {
            Msg::WriteReply { wid, .. } if node.nonblocking_count.load(Ordering::Acquire) > 0 => {
                node.nonblocking.lock().remove(wid)
            }
            _ => None,
        };
        match absorbed {
            Some(pipelined) => {
                node.state.write().absorb_write_reply(reply);
                // Decrement only after absorbing, so a drained pipeline
                // implies the merged clock (see the field's ordering
                // audit).
                node.nonblocking_count.fetch_sub(1, Ordering::Release);
                if pipelined {
                    let mut p = node.pipeline.lock();
                    p.in_flight -= 1;
                    if p.in_flight == 0 {
                        p.owner = None;
                    } else if !p.batcher.is_empty() && p.in_flight == p.batcher.len() {
                        // The wire just drained but writes accumulated
                        // during the round trip: ship them now, as one
                        // envelope. Together with `write_pipelined`'s
                        // eager first send this makes batching adaptive —
                        // a burst's first write travels alone (latency),
                        // and the run that built up behind it coalesces
                        // (throughput), sized by the round trip rather
                        // than a fixed count.
                        let owner = p.owner.expect("buffered writes always have an owner");
                        let run = p.batcher.take();
                        // A send failure means engine shutdown; the
                        // rollback inside leaves the window consistent
                        // and the notify below wakes any flush() waiter.
                        let _ = send_run_locked(&self.net, self.me, node, &mut p, owner, run);
                    }
                    drop(p);
                } else {
                    // flush() waits on `nonblocking_count` under the
                    // pipeline mutex; touching the mutex between the
                    // decrement and the notify makes that wait
                    // lost-wakeup-free (a waiter either sees the new
                    // count or is already parked on the condvar).
                    drop(node.pipeline.lock());
                }
                node.pipeline_cv.notify_all();
            }
            None => {
                let _ = self.reply_tx.send(reply);
            }
        }
    }
}

/// A single node's server loop, handed to the transport instead of a
/// thread: built by [`CausalCluster::with_inline_transport`], consumed by
/// an I/O layer (such as `dsm-net`'s poller) that calls
/// [`InlineServer::deliver`] for every inbound envelope it decodes.
///
/// Exactly one I/O thread must drive it — the engine relies on the
/// per-node server loop being single-threaded, and an event-loop
/// transport's one poller satisfies that the same way the engine's own
/// server thread did.
pub struct InlineServer<V: Value> {
    ctx: Arc<ServerCtx<V>>,
    stop: Arc<StopSignal>,
}

impl<V: Value> InlineServer<V> {
    /// Runs the server loop's body for one envelope on the caller's
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Shutdown`] once the owning cluster has shut
    /// down (or the envelope was [`Msg::Halt`]) — the transport should
    /// stop delivering.
    pub fn deliver(&self, env: Envelope<Msg<V>>) -> Result<(), MemoryError> {
        if self.stop.is_stopped() || !self.ctx.process(env) {
            return Err(MemoryError::Shutdown);
        }
        Ok(())
    }

    /// The node this server serves.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.ctx.me
    }
}

impl<V: Value> std::fmt::Debug for InlineServer<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InlineServer")
            .field("node", &self.ctx.me)
            .finish_non_exhaustive()
    }
}

struct ClusterInner<V: Value> {
    config: CausalConfig<V>,
    net: Network<Msg<V>>,
    nodes: Vec<Arc<NodeShared<V>>>,
    /// The nodes whose server threads run in this process — all of them
    /// for an in-process cluster, a subset when the cluster spans
    /// processes over a remote transport.
    local: Vec<NodeId>,
    recorder: Option<Recorder<V>>,
    servers: Mutex<Vec<JoinHandle<()>>>,
    /// Signals the heartbeat tickers (spawned only with failover
    /// configured) to exit.
    stop: Arc<StopSignal>,
}

/// A running causal DSM: `n` nodes connected by a reliable FIFO network,
/// each executing the Figure-4 owner protocol.
///
/// Obtain per-process handles with [`CausalCluster::handle`]; drop the
/// cluster (or call [`CausalCluster::shutdown`]) to stop the server
/// threads.
///
/// # Examples
///
/// ```
/// use causal_dsm::CausalCluster;
/// use memcore::{Location, SharedMemory, Word};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cluster = CausalCluster::<Word>::builder(2, 4).build()?;
/// let p0 = cluster.handle(0);
/// let p1 = cluster.handle(1);
/// p0.write(Location::new(0), Word::Int(1))?;
/// assert_eq!(p1.read(Location::new(0))?, Word::Int(1));
/// # Ok(())
/// # }
/// ```
pub struct CausalCluster<V: Value> {
    inner: Arc<ClusterInner<V>>,
}

/// Builder for [`CausalCluster`]; wraps [`CausalConfigBuilder`] plus
/// engine-level options (operation recording).
pub struct CausalClusterBuilder<V: Value> {
    config: CausalConfigBuilder<V>,
    recorder: Option<Recorder<V>>,
}

impl<V: Value + Default> CausalCluster<V> {
    /// Starts building a cluster of `nodes` processors sharing `locations`
    /// locations.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `locations` is zero.
    #[must_use]
    pub fn builder(nodes: u32, locations: u32) -> CausalClusterBuilder<V> {
        CausalClusterBuilder {
            config: CausalConfig::builder(nodes, locations),
            recorder: None,
        }
    }
}

impl<V: Value> CausalClusterBuilder<V> {
    /// Applies `f` to the underlying protocol configuration builder.
    #[must_use]
    pub fn configure(
        mut self,
        f: impl FnOnce(CausalConfigBuilder<V>) -> CausalConfigBuilder<V>,
    ) -> Self {
        self.config = f(self.config);
        self
    }

    /// Records every completed operation into `recorder` (for checking
    /// against the executable specification).
    #[must_use]
    pub fn recorder(mut self, recorder: Recorder<V>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builds the cluster and spawns its server threads.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility
    /// with fallible transports.
    pub fn build(self) -> Result<CausalCluster<V>, MemoryError> {
        let config = self.config.build();
        CausalCluster::with_config(config, self.recorder)
    }
}

impl<V: Value> CausalCluster<V> {
    /// Builds a cluster from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    pub fn with_config(
        config: CausalConfig<V>,
        recorder: Option<Recorder<V>>,
    ) -> Result<Self, MemoryError> {
        let n = config.nodes() as usize;
        let net: Network<Msg<V>> = Network::new(n);
        let local: Vec<NodeId> = (0..n).map(|i| NodeId::new(i as u32)).collect();
        Self::with_transport(config, recorder, net, &local)
    }

    /// Builds a cluster over an existing transport, hosting only the nodes
    /// in `local`.
    ///
    /// This is how a cluster spans processes: each process builds a
    /// [`Network::partial`](simnet::Network) whose remote link carries
    /// envelopes off-process (e.g. `dsm-net`'s TCP mesh), then constructs
    /// its share of the cluster with the node ids it hosts. Server and
    /// heartbeat threads are spawned only for `local` nodes; handles exist
    /// only for them. The protocol logic is unchanged — remote peers are
    /// reached through the same `send` path, and the message bills stay
    /// comparable to the in-process transports.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    ///
    /// # Panics
    ///
    /// Panics if the network's size differs from the configured node
    /// count, `local` is empty, or any id in `local` has no mailbox in
    /// this process.
    pub fn with_transport(
        config: CausalConfig<V>,
        recorder: Option<Recorder<V>>,
        net: Network<Msg<V>>,
        local: &[NodeId],
    ) -> Result<Self, MemoryError> {
        Self::build_engine(config, recorder, net, local, false, HashMap::new())
            .map(|(cluster, _)| cluster)
    }

    /// [`CausalCluster::with_transport`] plus a durability layer: each
    /// `(node, disk)` pair gives a locally-hosted node a write-ahead log
    /// (see `dsm_durable`). A disk that already holds state makes the
    /// node *recover* — replaying its checkpoint and log tail into page
    /// images, origin clocks, and the owner-epoch table — and rejoin as
    /// a full peer under a bumped incarnation.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    ///
    /// # Panics
    ///
    /// Panics if the configuration carries no
    /// [`durability`](crate::CausalConfigBuilder::durability) setting, a
    /// disk is supplied for a node not in `local`, or any
    /// [`CausalCluster::with_transport`] precondition fails.
    pub fn with_durable_transport(
        config: CausalConfig<V>,
        recorder: Option<Recorder<V>>,
        net: Network<Msg<V>>,
        local: &[NodeId],
        disks: Vec<(NodeId, Box<dyn Disk>)>,
    ) -> Result<Self, MemoryError>
    where
        V: Wire,
    {
        let boots = Self::open_boots(&config, local, disks);
        Self::build_engine(config, recorder, net, local, false, boots)
            .map(|(cluster, _)| cluster)
    }

    /// [`CausalCluster::with_inline_transport`] plus a durability layer
    /// for the hosted node — what `dsm-server --data-dir` builds.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CausalCluster::with_durable_transport`].
    pub fn with_durable_inline_transport(
        config: CausalConfig<V>,
        recorder: Option<Recorder<V>>,
        net: Network<Msg<V>>,
        me: NodeId,
        disk: Box<dyn Disk>,
    ) -> Result<(Self, InlineServer<V>), MemoryError>
    where
        V: Wire,
    {
        let boots = Self::open_boots(&config, &[me], vec![(me, disk)]);
        Self::build_engine(config, recorder, net, &[me], true, boots)
            .map(|(cluster, server)| (cluster, server.expect("inline build yields a server")))
    }

    /// Opens each disk, recovering state where one holds any.
    fn open_boots(
        config: &CausalConfig<V>,
        local: &[NodeId],
        disks: Vec<(NodeId, Box<dyn Disk>)>,
    ) -> HashMap<NodeId, DurableBoot<V>>
    where
        V: Wire,
    {
        let dcfg = config
            .durability()
            .expect("durable build requires a durability config");
        let mut boots = HashMap::new();
        for (id, disk) in disks {
            assert!(local.contains(&id), "disk supplied for non-local node {id}");
            let (store, recovered) = Store::open(disk, dcfg);
            let incarnation = recovered.next_incarnation();
            let state = if recovered.is_virgin() {
                CausalState::new(id, config.clone())
            } else {
                CausalState::recover(id, config.clone(), recovered.records, incarnation)
            };
            boots.insert(
                id,
                DurableBoot {
                    sink: Arc::new(StoreSink(Mutex::new(store))),
                    state,
                },
            );
        }
        boots
    }

    /// Like [`CausalCluster::with_transport`] for a single local node,
    /// but spawns **no server thread**: the returned [`InlineServer`] is
    /// the node's server loop as a value, and the transport delivers each
    /// inbound envelope by calling [`InlineServer::deliver`] on its own
    /// I/O thread. `dsm-net`'s poller serves requests the moment it
    /// decodes them — the same Figure-4 steps, minus one thread per
    /// process and two scheduler hops per owner round trip.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    ///
    /// # Panics
    ///
    /// Panics if the network's size differs from the configured node
    /// count or `me` has no mailbox in this process.
    pub fn with_inline_transport(
        config: CausalConfig<V>,
        recorder: Option<Recorder<V>>,
        net: Network<Msg<V>>,
        me: NodeId,
    ) -> Result<(Self, InlineServer<V>), MemoryError> {
        Self::build_engine(config, recorder, net, &[me], true, HashMap::new())
            .map(|(cluster, server)| (cluster, server.expect("inline build yields a server")))
    }

    fn build_engine(
        config: CausalConfig<V>,
        recorder: Option<Recorder<V>>,
        net: Network<Msg<V>>,
        local: &[NodeId],
        inline: bool,
        mut boots: HashMap<NodeId, DurableBoot<V>>,
    ) -> Result<(Self, Option<InlineServer<V>>), MemoryError> {
        let n = config.nodes() as usize;
        assert_eq!(net.len(), n, "transport size mismatch");
        assert!(!local.is_empty(), "cluster hosts no local node");
        // Batch runs never exceed the window (a full window must flush so
        // its replies can drain), and eight parts per envelope is plenty
        // to show the coalescing effect without unbounded buffering.
        let batch_policy = BatchPolicy::by_count((config.pipeline_window() as usize).clamp(1, 8));
        let mut nodes = Vec::with_capacity(n);
        let mut reply_txs: Vec<Sender<Msg<V>>> = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = unbounded();
            reply_txs.push(tx);
            let (state, wal) = match boots.remove(&NodeId::new(i as u32)) {
                Some(boot) => (boot.state, Some(boot.sink)),
                None => (CausalState::new(NodeId::new(i as u32), config.clone()), None),
            };
            let shared = Arc::new(NodeShared {
                state: RwLock::new(state),
                op_lock: Mutex::new(()),
                replies: rx,
                nonblocking: Mutex::new(HashMap::new()),
                nonblocking_count: AtomicUsize::new(0),
                pipeline: Mutex::new(PipelineState {
                    owner: None,
                    in_flight: 0,
                    batcher: Batcher::new(batch_policy),
                }),
                pipeline_cv: Condvar::new(),
                wal,
            });
            if shared.wal.is_some() {
                // Persist the boot watermark (`CausalState::new`'s
                // baseline, or recovery's rejoin record with the bumped
                // incarnation) before any traffic can reference it.
                shared.mutate(|_| ());
            }
            nodes.push(shared);
        }

        let mut servers = Vec::with_capacity(local.len());
        let stop = Arc::new(StopSignal::new());
        // Shared transport clock for the failure detector (milliseconds
        // since cluster start).
        let clock_start = Instant::now();
        let failover = config.failover();
        let mut inline_server = None;
        for &me in local {
            let ctx = ServerCtx {
                me,
                node: Arc::clone(&nodes[me.index()]),
                net: net.clone(),
                reply_tx: reply_txs[me.index()].clone(),
                failover_on: failover.is_some(),
                clock_start,
            };
            if inline {
                // The transport drives this node's server loop itself;
                // its mailbox stays with the network, unread (only
                // `Msg::Halt` is ever addressed to it, and inline
                // shutdown runs through the stop signal instead).
                inline_server = Some(InlineServer {
                    ctx: Arc::new(ctx),
                    stop: Arc::clone(&stop),
                });
                continue;
            }
            let mailbox = net.take_mailbox(me);
            servers.push(
                std::thread::Builder::new()
                    .name(format!("causal-node-{}", me.index()))
                    .spawn(move || {
                        while let Some(env) = mailbox.recv() {
                            if !ctx.process(env) {
                                break;
                            }
                        }
                    })
                    .expect("spawning server thread"),
            );
        }

        if let Some(fo) = failover {
            for &me in local {
                let i = me.index();
                let node = Arc::clone(&nodes[i]);
                let net = net.clone();
                let stop = Arc::clone(&stop);
                servers.push(
                    std::thread::Builder::new()
                        .name(format!("causal-heartbeat-{i}"))
                        .spawn(move || {
                            let interval = Duration::from_millis(fo.heartbeat_interval);
                            // The condvar wait (vs a fixed sleep) is what
                            // lets shutdown() interrupt a tick mid-wait.
                            while !stop.wait_for(interval) {
                                let now = clock_start.elapsed().as_millis() as u64;
                                let (hb, hb_targets, broadcasts, repl) = node.mutate(|st| {
                                    let hb = st.heartbeat_msg();
                                    // All peers under all-pairs probing; the
                                    // node's ring successors under a scoped
                                    // heartbeat fanout.
                                    let hb_targets = st.heartbeat_targets();
                                    let newly = st.check_suspicions(now);
                                    let mut broadcasts = Vec::new();
                                    for suspect in newly {
                                        let epochs = st.suspect(suspect);
                                        if !epochs.is_empty() {
                                            let targets = st.suspect_targets(suspect, &epochs);
                                            broadcasts.push((suspect, epochs, targets));
                                        }
                                    }
                                    (hb, hb_targets, broadcasts, st.take_replications())
                                });
                                let n = u32::try_from(net.len()).unwrap_or(0);
                                let all_peers = || {
                                    (0..n).map(NodeId::new).filter(|dst| *dst != me).collect()
                                };
                                if let Some(hb) = hb {
                                    for dst in hb_targets {
                                        let _ = net.send(me, dst, hb.clone());
                                    }
                                }
                                for (suspect, epochs, targets) in broadcasts {
                                    // `None` means broadcast (all-pairs mode).
                                    for dst in targets.unwrap_or_else(all_peers) {
                                        let _ = net.send(
                                            me,
                                            dst,
                                            Msg::Suspect {
                                                suspect,
                                                epochs: epochs.clone(),
                                            },
                                        );
                                    }
                                }
                                for (dst, msg) in repl {
                                    let _ = net.send(me, dst, msg);
                                }
                            }
                        })
                        .expect("spawning heartbeat thread"),
                );
            }
        }

        let cluster = CausalCluster {
            inner: Arc::new(ClusterInner {
                config,
                net,
                nodes,
                local: local.to_vec(),
                recorder,
                servers: Mutex::new(servers),
                stop,
            }),
        };
        Ok((cluster, inline_server))
    }

    /// A handle performing operations as process `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or not hosted by this process
    /// (see [`CausalCluster::with_transport`]).
    #[must_use]
    pub fn handle(&self, node: u32) -> CausalHandle<V> {
        assert!(
            (node as usize) < self.inner.nodes.len(),
            "node {node} out of range"
        );
        assert!(
            self.inner.local.contains(&NodeId::new(node)),
            "node {node} is not hosted by this process"
        );
        CausalHandle {
            inner: Arc::clone(&self.inner),
            node: NodeId::new(node),
        }
    }

    /// Handles for every locally-hosted node, in node order (all nodes for
    /// an in-process cluster).
    #[must_use]
    pub fn handles(&self) -> Vec<CausalHandle<V>> {
        let mut local = self.inner.local.clone();
        local.sort_unstable();
        local
            .into_iter()
            .map(|id| self.handle(id.index() as u32))
            .collect()
    }

    /// The cluster's configuration.
    #[must_use]
    pub fn config(&self) -> &CausalConfig<V> {
        &self.inner.config
    }

    /// Per-(node, kind) protocol message counters.
    #[must_use]
    pub fn messages(&self) -> &NetStats {
        self.inner.net.messages()
    }

    /// Per-(node, kind) approximate byte counters.
    #[must_use]
    pub fn bytes(&self) -> &NetStats {
        self.inner.net.bytes()
    }

    /// Per-(node, kind) **physical envelope** counters. Without transport
    /// batching this mirrors [`CausalCluster::messages`]; with batching on,
    /// a coalesced run counts once here (kind `BATCH`) while its parts
    /// still count individually in the logical counters — so
    /// `messages - envelopes` per node is exactly the coalescing win.
    #[must_use]
    pub fn envelopes(&self) -> &NetStats {
        self.inner.net.envelopes()
    }

    /// Per-(node, kind) **causal-metadata** byte counters: the exact wire
    /// bytes spent on vector timestamps (honoring each stamp's
    /// dense/sparse encoding). Dividing by the operation count gives the
    /// scale benches' `metadata_bytes_per_op`.
    #[must_use]
    pub fn metadata(&self) -> &NetStats {
        self.inner.net.metadata()
    }

    /// Number of node `i`'s non-blocking or pipelined writes whose replies
    /// are still outstanding (diagnostic; inherently racy against the
    /// server thread).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn pending_nonblocking(&self, i: u32) -> usize {
        self.inner.nodes[i as usize]
            .nonblocking_count
            .load(Ordering::Acquire)
    }

    /// Installs (or removes) a fault hook on the cluster's network.
    ///
    /// With faults active the transport may drop protocol messages, so
    /// operations can block forever unless
    /// [`owner_timeout`](crate::CausalConfigBuilder::owner_timeout) is also
    /// configured. Intended for fault-tolerance experiments and tests; the
    /// deterministic chaos suite lives in `dsm-faults`.
    pub fn set_fault_hook(&self, hook: Option<Arc<dyn simnet::FaultHook>>) {
        self.inner.net.set_fault_hook(hook);
    }

    /// A snapshot of node `i`'s current vector timestamp `VT_i`
    /// (observability/diagnostics). Takes only the node's shared lock.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node_vt(&self, i: u32) -> vclock::VectorClock {
        self.inner.nodes[i as usize].state.read().vt().clone()
    }

    /// Node `i`'s incarnation number: 0 for a first life, the persisted
    /// maximum plus one after a durable recovery (see
    /// [`CausalCluster::with_durable_transport`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node_incarnation(&self, i: u32) -> u32 {
        self.inner.nodes[i as usize].state.read().incarnation()
    }

    /// Total cache invalidations performed across all nodes (ablation
    /// metric).
    #[must_use]
    pub fn total_invalidations(&self) -> u64 {
        self.snapshot().invalidations.iter().sum()
    }

    /// A coherent observability snapshot across the cluster: every node's
    /// vector timestamp, cumulative invalidation count, and cached-page
    /// count, taking each node's (shared) state lock exactly once.
    ///
    /// Prefer this over per-metric accessors in loops — a sweep over
    /// [`CausalCluster::node_vt`] and friends re-acquires every node's
    /// lock per metric.
    #[must_use]
    pub fn snapshot(&self) -> ClusterSnapshot {
        let n = self.inner.nodes.len();
        let mut snap = ClusterSnapshot {
            vts: Vec::with_capacity(n),
            invalidations: Vec::with_capacity(n),
            cached_pages: Vec::with_capacity(n),
        };
        for node in &self.inner.nodes {
            let state = node.state.read();
            snap.vts.push(state.vt().clone());
            snap.invalidations.push(state.invalidation_count());
            snap.cached_pages.push(state.cached_pages());
        }
        snap
    }

    /// Stops all server threads and waits for them to exit. Subsequent
    /// operations on handles fail with [`MemoryError::Shutdown`].
    ///
    /// Returns promptly: heartbeat tickers are woken out of their interval
    /// wait rather than finishing it (regression-tested in
    /// `tests/failover.rs`).
    pub fn shutdown(&self) {
        // Raise the flag before looking at the thread roster: an
        // inline-transport cluster has no server threads at all, and its
        // transport checks this flag (through [`InlineServer::deliver`])
        // to learn the engine is gone.
        self.inner.stop.stop();
        let handles: Vec<_> = self.inner.servers.lock().drain(..).collect();
        if handles.is_empty() {
            return;
        }
        for &dst in &self.inner.local {
            // Halt is engine-internal; exclude it from protocol counts by
            // sending as the destination itself. Only locally-hosted
            // servers are halted — peers of a multi-process cluster manage
            // their own shutdown.
            let _ = self.inner.net.send(dst, dst, Msg::Halt);
        }
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl<V: Value> Drop for CausalCluster<V> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<V: Value> std::fmt::Debug for CausalCluster<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CausalCluster")
            .field("config", &self.inner.config)
            .finish_non_exhaustive()
    }
}

/// Per-node observability metrics captured in one pass by
/// [`CausalCluster::snapshot`]; index `i` is node `i`.
#[derive(Clone, Debug)]
pub struct ClusterSnapshot {
    /// Each node's vector timestamp `VT_i` at snapshot time.
    pub vts: Vec<VectorClock>,
    /// Each node's cumulative cache-invalidation count.
    pub invalidations: Vec<u64>,
    /// Each node's current number of cached (non-owned) pages `|C_i|`.
    pub cached_pages: Vec<usize>,
}

/// A per-process handle onto a [`CausalCluster`]; implements
/// [`SharedMemory`].
///
/// Handles are cheap to clone. All operations through handles for the same
/// node are serialized (program order), as the paper's process model
/// requires.
pub struct CausalHandle<V: Value> {
    inner: Arc<ClusterInner<V>>,
    node: NodeId,
}

impl<V: Value> Clone for CausalHandle<V> {
    fn clone(&self) -> Self {
        CausalHandle {
            inner: Arc::clone(&self.inner),
            node: self.node,
        }
    }
}

impl<V: Value> std::fmt::Debug for CausalHandle<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CausalHandle({})", self.node)
    }
}

impl<V: Value> CausalHandle<V> {
    fn check_bounds(&self, loc: Location) -> Result<(), MemoryError> {
        let namespace = self.inner.config.locations() as usize;
        if loc.index() >= namespace {
            return Err(MemoryError::OutOfRange { loc, namespace });
        }
        Ok(())
    }

    /// The current owner of `loc`'s page. Static (lock-free) without
    /// failover; with failover the node's epoch table decides, under a
    /// brief shared state lock.
    fn owner_of(&self, loc: Location) -> NodeId {
        let config = &self.inner.config;
        let page = loc.page(config.page_size());
        if config.failover().is_some() {
            self.inner.nodes[self.node.index()]
                .state
                .read()
                .current_owner(page)
        } else {
            config.owners().owner_of_page(page)
        }
    }

    /// Whether this handle's node currently owns `loc`'s page.
    fn owns_locally(&self, loc: Location) -> bool {
        self.owner_of(loc) == self.node
    }

    /// Best-effort fan-out of protocol side traffic (replication shadows,
    /// suspicion broadcasts).
    fn send_all(&self, msgs: Vec<(NodeId, Msg<V>)>) {
        for (dst, msg) in msgs {
            let _ = self.inner.net.send(self.node, dst, msg);
        }
    }

    /// Ships pending protocol side traffic: hot-standby shadows queued by
    /// a locally-installed write (failover) and `[INTEREST]` drops queued
    /// by cache eviction (interest scoping). A no-op — without touching
    /// the state lock — unless one of those features is on.
    fn drain_side_traffic(&self, node: &NodeShared<V>) {
        let config = &self.inner.config;
        if config.failover().is_none() && !config.interest_scoping() {
            return;
        }
        let (repl, drops) = {
            let mut st = node.state.write();
            (st.take_replications(), st.take_interest_msgs())
        };
        self.send_all(repl);
        self.send_all(drops);
    }

    /// Puts a buffered run on the wire as one envelope (a single message,
    /// or [`Msg::Batch`] for runs of two or more). Rolls back the run's
    /// window slots and registry entries if the transport is down. Caller
    /// holds the pipeline lock.
    fn send_run(
        &self,
        node: &NodeShared<V>,
        p: &mut PipelineState<V>,
        owner: NodeId,
        run: Vec<Msg<V>>,
    ) -> Result<(), MemoryError> {
        send_run_locked(&self.inner.net, self.node, node, p, owner, run)
    }

    /// Sends whatever the batcher holds to the pipeline owner. A no-op
    /// when nothing is buffered. Caller holds the pipeline lock.
    fn flush_batcher(
        &self,
        node: &NodeShared<V>,
        p: &mut PipelineState<V>,
    ) -> Result<(), MemoryError> {
        if p.batcher.is_empty() {
            return Ok(());
        }
        let owner = p.owner.expect("buffered writes always have an owner");
        let run = p.batcher.take();
        self.send_run(node, p, owner, run)
    }

    /// Blocks on the pipeline condvar until the server thread signals
    /// progress. With an [`owner_timeout`](crate::CausalConfigBuilder::owner_timeout)
    /// configured, each wait is bounded by the full retry budget
    /// (`timeout × (1 + retries)`) and then fails with
    /// [`MemoryError::Timeout`]; as with [`CausalHandle::await_reply`],
    /// a timeout should be treated as fatal for the handle's session.
    fn pipeline_wait<'a>(
        &self,
        node: &'a NodeShared<V>,
        guard: MutexGuard<'a, PipelineState<V>>,
    ) -> Result<MutexGuard<'a, PipelineState<V>>, MemoryError> {
        let owner = guard.owner.unwrap_or(self.node);
        match self.inner.config.owner_timeout() {
            None => Ok(node
                .pipeline_cv
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner)),
            Some(window) => {
                let budget = window * (1 + self.inner.config.owner_retries());
                let (guard, timeout) = node
                    .pipeline_cv
                    .wait_timeout(guard, budget)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                // Both waiters funnel through here: the window/drain loops
                // (in_flight) and flush()'s raw non-blocking barrier
                // (nonblocking_count) — a full budget with either still
                // outstanding means the reply is not coming.
                if timeout.timed_out()
                    && (guard.in_flight > 0 || node.nonblocking_count.load(Ordering::Acquire) > 0)
                {
                    return Err(MemoryError::Timeout { owner });
                }
                Ok(guard)
            }
        }
    }

    /// Flushes the batcher and waits until every pipelined write's reply
    /// has been absorbed (`in_flight == 0`). Caller holds the operation
    /// lock; the pipeline guard travels by value because the condvar wait
    /// needs ownership of it.
    fn drain_pipeline_locked<'a>(
        &self,
        node: &'a NodeShared<V>,
        mut guard: MutexGuard<'a, PipelineState<V>>,
    ) -> Result<MutexGuard<'a, PipelineState<V>>, MemoryError> {
        self.flush_batcher(node, &mut guard)?;
        while guard.in_flight > 0 {
            guard = self.pipeline_wait(node, guard)?;
        }
        guard.owner = None;
        Ok(guard)
    }

    /// Records an operation, building the record only if a recorder is
    /// installed — so unrecorded clusters never deep-copy values just to
    /// throw the copy away.
    fn record_with(&self, op: impl FnOnce() -> OpRecord<V>) {
        if let Some(rec) = &self.inner.recorder {
            rec.record(self.node, op());
        }
    }

    /// `true` iff `reply` answers the outstanding round-trip described by
    /// `expect` — anything else in the channel is a stale leftover from a
    /// previously timed-out operation and must be discarded, not
    /// misattributed.
    fn reply_matches(reply: &Msg<V>, expect: &Expected) -> bool {
        match (expect.op, reply) {
            (Some(op), Msg::Stamped { op: rop, inner, .. }) => {
                op == *rop && Self::content_matches(inner, expect.want)
            }
            // A NACK echoing our op id is a valid (negative) answer.
            (Some(op), Msg::Nack { op: rop, .. }) => op == *rop,
            (None, reply) => Self::content_matches(reply, expect.want),
            _ => false,
        }
    }

    fn content_matches(reply: &Msg<V>, want: Want) -> bool {
        match (reply, want) {
            (Msg::ReadReply { page, .. }, Want::Read { page: wanted }) => *page == wanted,
            (Msg::WriteReply { wid, .. }, Want::Write { wid: wanted }) => *wid == wanted,
            _ => false,
        }
    }

    /// Waits for the reply to the outstanding owner round-trip,
    /// discarding any non-matching (stale) reply along the way — the
    /// recovery guarantee that makes [`MemoryError::Timeout`] survivable:
    /// a late reply to a timed-out operation can never be misattributed
    /// to the next one.
    ///
    /// Without an [`owner_timeout`](crate::CausalConfigBuilder::owner_timeout)
    /// this blocks forever (the paper's reliable-network model) unless
    /// failover is on, in which case one suspicion budget
    /// (`heartbeat_interval × suspicion_threshold`, in ms) bounds each
    /// attempt. With an `owner_timeout` and no failover the full retry
    /// budget (`timeout × (1 + retries)`) applies; under failover each
    /// attempt gets a single window (retries are driven a level up by
    /// [`CausalHandle::failover_round_trip`]).
    fn await_reply(
        &self,
        node: &NodeShared<V>,
        owner: NodeId,
        expect: &Expected,
    ) -> Result<Msg<V>, MemoryError> {
        let window = match (
            self.inner.config.owner_timeout(),
            self.inner.config.failover(),
        ) {
            (Some(w), Some(_)) => Some(w),
            (Some(w), None) => Some(w * (1 + self.inner.config.owner_retries())),
            (None, Some(fo)) => Some(Duration::from_millis(
                fo.heartbeat_interval * u64::from(fo.suspicion_threshold),
            )),
            (None, None) => None,
        };
        let deadline = window.map(|w| Instant::now() + w);
        loop {
            let reply = match deadline {
                None => node.replies.recv().map_err(|_| MemoryError::Shutdown)?,
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    match node.replies.recv_timeout(remaining) {
                        Ok(reply) => reply,
                        Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                            return Err(MemoryError::Timeout { owner })
                        }
                        Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                            return Err(MemoryError::Shutdown)
                        }
                    }
                }
            };
            if Self::reply_matches(&reply, expect) {
                return Ok(match reply {
                    Msg::Stamped { inner, .. } => *inner,
                    other => other,
                });
            }
            // Stale: drop silently and keep waiting for the real reply.
        }
    }

    /// One logical owner round-trip under failover: stamp the request
    /// with the node's current `(epoch, op)`, send, await. A NACK adopts
    /// the responder's newer epoch and redirects the retry; a timeout
    /// counts as suspicion evidence — the silent owner's pages migrate to
    /// their successors (promoting this node where it is one) and the
    /// decision is broadcast. Retries back off exponentially with
    /// deterministic jitter until the reply arrives or
    /// [`FailoverConfig::max_retries`] is spent.
    fn failover_round_trip(
        &self,
        node: &NodeShared<V>,
        fo: &FailoverConfig,
        page: PageId,
        request: &Msg<V>,
        want: Want,
    ) -> Result<Msg<V>, MemoryError> {
        let mut last_owner = self.node;
        for attempt in 0..=fo.max_retries {
            if attempt > 0 {
                let salt = (u64::from(self.node.index() as u32) << 32) | u64::from(attempt);
                std::thread::sleep(Duration::from_millis(fo.backoff(attempt - 1, salt)));
            }
            let (owner, epoch, op) = {
                let mut st = node.state.write();
                (st.current_owner(page), st.epoch_of(page), st.next_op_id())
            };
            last_owner = owner;
            if owner == self.node {
                // The page migrated to *us* mid-operation (we are its
                // successor): serve our own request locally.
                let (served, repl) = node.mutate(|st| {
                    let served = st.serve_stamped(self.node, epoch, op, request.clone());
                    (served, st.take_replications())
                });
                self.send_all(repl);
                match served {
                    Some(Msg::Stamped { inner, .. }) => return Ok(*inner),
                    // Raced with a further migration: re-resolve and retry.
                    _ => continue,
                }
            }
            let env = Msg::Stamped {
                epoch,
                op,
                inner: Box::new(request.clone()),
            };
            if self.inner.net.send(self.node, owner, env).is_err() {
                return Err(MemoryError::Shutdown);
            }
            let expect = Expected { op: Some(op), want };
            match self.await_reply(node, owner, &expect) {
                Ok(Msg::Nack {
                    page: npage, epoch, ..
                }) => {
                    node.mutate(|st| st.observe_epoch(npage, epoch));
                }
                Ok(reply) => return Ok(reply),
                Err(MemoryError::Timeout { .. }) => {
                    let (epochs, targets, repl) = node.mutate(|st| {
                        let epochs = st.suspect(owner);
                        let targets = st.suspect_targets(owner, &epochs);
                        (epochs, targets, st.take_replications())
                    });
                    if !epochs.is_empty() {
                        let dsts = targets.unwrap_or_else(|| {
                            (0..self.inner.config.nodes())
                                .map(NodeId::new)
                                .filter(|dst| *dst != self.node)
                                .collect()
                        });
                        for dst in dsts {
                            let _ = self.inner.net.send(
                                self.node,
                                dst,
                                Msg::Suspect {
                                    suspect: owner,
                                    epochs: epochs.clone(),
                                },
                            );
                        }
                    }
                    self.send_all(repl);
                }
                Err(e) => return Err(e),
            }
        }
        Err(MemoryError::Timeout { owner: last_owner })
    }

    /// Performs a write and reports whether it survived concurrent-write
    /// resolution (always applied under [`crate::WritePolicy::LastArrival`];
    /// may be rejected under [`crate::WritePolicy::OwnerFavored`], §4.2).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Shutdown`] if the cluster has stopped, or
    /// [`MemoryError::OutOfRange`] for locations outside the namespace.
    pub fn write_resolved(&self, loc: Location, value: V) -> Result<WriteDone, MemoryError> {
        self.check_bounds(loc)?;
        let node = &self.inner.nodes[self.node.index()];
        // One Arc wraps the value; the protocol moves pointers from here
        // on (install, request, reply repair) — no deep copies.
        let value = Arc::new(value);
        // Fast path: an owner-local write is one atomic Figure-4 step
        // under the state lock — no message, no outstanding reply — so the
        // per-node operation lock adds nothing. Ownership is static, so
        // this is decidable before touching any lock. Skipped when a
        // recorder is installed (the recorder flattens a node's handles
        // into one program order, which only the operation lock provides)
        // and while the write pipeline is active (a local write must not
        // stamp its page with in-flight increments; see below). The
        // idleness check must hold *across* the state mutation:
        // `write_pipelined` ticks `VT_i` with the pipeline lock held, so
        // the fast path keeps that lock from the `in_flight` check through
        // `begin_write_shared` — releasing it in between would let a
        // concurrent pipelined write (which skips `op_lock` contention by
        // running on another handle) slip an uncertified increment into
        // the stamp this write later exports via R_REPLY.
        if self.inner.recorder.is_none() && self.owns_locally(loc) {
            let pipeline = (self.inner.config.pipeline_window() > 0).then(|| node.pipeline.lock());
            if pipeline.as_ref().is_none_or(|p| p.in_flight == 0) {
                // `value` moves here; fine, because both arms below
                // diverge — the non-idle fall-through never reaches this.
                let step = node.mutate(|st| st.begin_write_shared(loc, value));
                drop(pipeline);
                match step {
                    WriteStep::Done { wid } => {
                        self.drain_side_traffic(node);
                        return Ok(WriteDone::Applied { wid });
                    }
                    WriteStep::Remote { .. } => {
                        unreachable!("owner-local write cannot go remote")
                    }
                }
            }
            // Pipeline non-idle: fall through to the slow path, which
            // drains under the operation lock.
        }
        let _op = node.op_lock.lock();
        if self.inner.config.pipeline_window() > 0 {
            let mut p = node.pipeline.lock();
            if p.in_flight > 0 {
                if self.owns_locally(loc) || p.owner != Some(self.owner_of(loc)) {
                    // An owner-local write would embed the in-flight
                    // increments in the page stamp it later exports via
                    // R_REPLY, and a write to a *different* owner would
                    // carry them in its VT — either way a third party
                    // could observe our pipelined writes before the owner
                    // has installed them. Drain first.
                    drop(self.drain_pipeline_locked(node, p)?);
                } else {
                    // Same owner: per-link FIFO already orders this write
                    // after the pipelined ones; just make sure nothing
                    // buffered overtakes it.
                    self.flush_batcher(node, &mut p)?;
                }
            }
        }
        let step = node.mutate(|st| st.begin_write_shared(loc, Arc::clone(&value)));
        let done = match step {
            WriteStep::Done { wid } => {
                self.drain_side_traffic(node);
                WriteDone::Applied { wid }
            }
            WriteStep::Remote {
                owner,
                wid,
                request,
            } => {
                let want = Want::Write { wid };
                let reply = match self.inner.config.failover() {
                    Some(fo) => {
                        let page = loc.page(self.inner.config.page_size());
                        self.failover_round_trip(node, &fo, page, &request, want)?
                    }
                    None => {
                        self.inner
                            .net
                            .send(self.node, owner, request)
                            .map_err(|_| MemoryError::Shutdown)?;
                        self.await_reply(node, owner, &Expected { op: None, want })?
                    }
                };
                let done = node
                    .state
                    .write()
                    .finish_write(Arc::clone(&value), wid, reply);
                self.drain_side_traffic(node);
                done
            }
        };
        self.record_with(|| OpRecord::write(loc, (*value).clone(), done.wid()));
        Ok(done)
    }

    /// Performs a **non-blocking** write: the paper's "reducing the
    /// blocking of processors" enhancement. Owner-local writes complete
    /// immediately as usual; remote writes return as soon as the request
    /// is sent, with the value optimistically visible to this node's own
    /// subsequent reads. The owner's reply is absorbed in the background.
    ///
    /// **Correctness boundary**: full Definition-2 causal correctness is
    /// forfeited — a third party that causally learns of the in-flight
    /// write can be served the pre-write value by the owner (exhaustive
    /// witness in `tests/nonblocking_limits.rs`). Use only where the
    /// written location is not read through faster causal channels;
    /// blocking [`SharedMemory::write`] is the paper's protocol.
    ///
    /// Under [`crate::WritePolicy::OwnerFavored`] a rejection is repaired
    /// in the cache asynchronously; callers needing the verdict must use
    /// [`CausalHandle::write_resolved`].
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Shutdown`] if the cluster has stopped, or
    /// [`MemoryError::OutOfRange`] for locations outside the namespace.
    pub fn write_nonblocking(
        &self,
        loc: Location,
        value: V,
    ) -> Result<memcore::WriteId, MemoryError> {
        self.check_bounds(loc)?;
        if self.inner.config.failover().is_some() {
            // Raw non-blocking writes carry no epoch stamp; under
            // failover they go through the protected blocking path.
            return self.write_resolved(loc, value).map(|done| done.wid());
        }
        let node = &self.inner.nodes[self.node.index()];
        let value = Arc::new(value);
        let _op = node.op_lock.lock();
        let step = node.mutate(|st| st.begin_write_nonblocking_shared(loc, Arc::clone(&value)));
        let wid = match step {
            WriteStep::Done { wid } => wid,
            WriteStep::Remote {
                owner,
                wid,
                request,
            } => {
                // Register before sending so the server thread always
                // recognizes the reply; the channel send/recv below this
                // in the causal chain is what publishes the counter.
                node.nonblocking.lock().insert(wid, false);
                node.nonblocking_count.fetch_add(1, Ordering::Release);
                if self.inner.net.send(self.node, owner, request).is_err() {
                    if node.nonblocking.lock().remove(&wid).is_some() {
                        node.nonblocking_count.fetch_sub(1, Ordering::Release);
                    }
                    return Err(MemoryError::Shutdown);
                }
                wid
            }
        };
        self.drain_side_traffic(node);
        self.record_with(|| OpRecord::write(loc, (*value).clone(), wid));
        Ok(wid)
    }

    /// Performs a write through the **bounded write pipeline**: up to
    /// [`pipeline_window`](crate::CausalConfigBuilder::pipeline_window)
    /// writes to the same owner may be in flight at once, the window
    /// exerting backpressure when full. Unlike the raw
    /// [`CausalHandle::write_nonblocking`], pipelined writes preserve
    /// Definition-2 causal correctness: the pipeline drains automatically
    /// before any operation that could export or observe the in-flight
    /// increments — an owner-local write, a remote write to a *different*
    /// owner, or a read miss on a page the pipeline's owner serves (the
    /// read-your-own-write case). Operations proven safe to overlap —
    /// further pipelined writes to the same owner, cache-hit reads, and
    /// read misses toward other owners — proceed without waiting.
    ///
    /// With a window of `0` this is exactly the blocking protocol write.
    /// With [`batching`](crate::CausalConfigBuilder::batching) enabled,
    /// consecutive pipelined writes coalesce into [`Msg::Batch`]
    /// envelopes, the owner sweeps its cache once per batch, and the
    /// write acks ride back in a single reply envelope.
    ///
    /// Call [`CausalHandle::flush`] to wait for all in-flight writes.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Shutdown`] if the cluster has stopped,
    /// [`MemoryError::OutOfRange`] for locations outside the namespace,
    /// or [`MemoryError::Timeout`] if a configured
    /// [`owner_timeout`](crate::CausalConfigBuilder::owner_timeout) budget
    /// expires while waiting for window space.
    pub fn write_pipelined(
        &self,
        loc: Location,
        value: V,
    ) -> Result<memcore::WriteId, MemoryError> {
        self.check_bounds(loc)?;
        let window = self.inner.config.pipeline_window() as usize;
        if window == 0 || self.owns_locally(loc) || self.inner.config.failover().is_some() {
            // Window 0 is the paper's blocking protocol; owner-local
            // writes are message-free and must drain the pipeline anyway,
            // which write_resolved's own hook does. Under failover the
            // threaded engine degrades pipelined writes to blocking ones —
            // only the blocking round-trip carries the epoch stamp and
            // retry machinery (the deterministic simulator supports the
            // combination; see `dsm-sim`).
            return self.write_resolved(loc, value).map(|done| done.wid());
        }
        let node = &self.inner.nodes[self.node.index()];
        let value = Arc::new(value);
        let owner = self.owner_of(loc);
        let _op = node.op_lock.lock();
        let mut p = node.pipeline.lock();
        loop {
            if p.in_flight == 0 {
                break;
            }
            if p.owner != Some(owner) {
                // Owner switch: this write's VT would carry the old
                // owner's in-flight increments, so the old window must
                // drain completely first.
                p = self.drain_pipeline_locked(node, p)?;
                break;
            }
            if p.in_flight < window {
                break;
            }
            // Window full: put any buffered run on the wire (its replies
            // are what free the window) and wait for the server thread.
            self.flush_batcher(node, &mut p)?;
            p = self.pipeline_wait(node, p)?;
        }
        let step = node.mutate(|st| st.begin_write_nonblocking_shared(loc, Arc::clone(&value)));
        let wid = match step {
            WriteStep::Done { .. } => unreachable!("remote page cannot complete locally"),
            WriteStep::Remote { wid, request, .. } => {
                node.nonblocking.lock().insert(wid, true);
                node.nonblocking_count.fetch_add(1, Ordering::Release);
                p.owner = Some(owner);
                p.in_flight += 1;
                if self.inner.config.batching() {
                    if let Some(run) = p.batcher.push(request) {
                        self.send_run(node, &mut p, owner, run)?;
                    } else if p.in_flight == p.batcher.len() {
                        // Nothing on the wire: buffering now would idle
                        // the owner for no gain, so ship immediately.
                        // Writes issued during this run's round trip
                        // accumulate in the batcher and go out as one
                        // envelope when the wire drains (see the absorb
                        // path) — batching adapts to the round-trip time
                        // instead of imposing a fixed-size wait.
                        let run = p.batcher.take();
                        self.send_run(node, &mut p, owner, run)?;
                    }
                } else {
                    self.send_run(node, &mut p, owner, vec![request])?;
                }
                wid
            }
        };
        drop(p);
        self.drain_side_traffic(node);
        self.record_with(|| OpRecord::write(loc, (*value).clone(), wid));
        Ok(wid)
    }

    /// Write barrier: sends anything still buffered and blocks until the
    /// reply to every outstanding asynchronous write — pipelined *and*
    /// raw [`CausalHandle::write_nonblocking`] — has been received and
    /// absorbed into `VT_i`. Works whether or not pipelining is enabled
    /// (raw non-blocking writes need no window); a no-op when nothing is
    /// outstanding.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Shutdown`] if the cluster has stopped, or
    /// [`MemoryError::Timeout`] if a configured
    /// [`owner_timeout`](crate::CausalConfigBuilder::owner_timeout) budget
    /// expires first (fatal for the handle's session, as with any other
    /// timed-out operation).
    pub fn flush(&self) -> Result<(), MemoryError> {
        let node = &self.inner.nodes[self.node.index()];
        let _op = node.op_lock.lock();
        let p = node.pipeline.lock();
        let mut p = self.drain_pipeline_locked(node, p)?;
        // Raw non-blocking writes live in the registry but not the
        // window; the server's pipeline-lock touch before notifying (see
        // the absorb path) makes this wait lost-wakeup-free.
        while node.nonblocking_count.load(Ordering::Acquire) > 0 {
            p = self.pipeline_wait(node, p)?;
        }
        drop(p);
        Ok(())
    }

    /// A read that returns the value **shared** with local memory
    /// (`Arc<V>`), never deep-copying it. [`SharedMemory::read`] is this
    /// plus one clone to meet its by-value signature.
    ///
    /// Cache hits are the protocol's steady state and take only the
    /// node's shared state lock — concurrent readers of a node proceed in
    /// parallel, and no hit ever contends with the `op_lock` of a blocked
    /// remote operation. (With a recorder installed, hits take the
    /// `op_lock` too: recording flattens a node's threads into a single
    /// program order, which needs the total order the lock provides.)
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Shutdown`] if the cluster has stopped, or
    /// [`MemoryError::OutOfRange`] for locations outside the namespace.
    pub fn read_shared(&self, loc: Location) -> Result<Arc<V>, MemoryError> {
        self.read_full(loc).map(|(value, _)| value)
    }

    fn read_full(&self, loc: Location) -> Result<(Arc<V>, memcore::WriteId), MemoryError> {
        self.check_bounds(loc)?;
        let node = &self.inner.nodes[self.node.index()];
        if self.inner.recorder.is_none() {
            if let Some(hit) = node.state.read().read_hit(loc) {
                return Ok(hit);
            }
        }
        let _op = node.op_lock.lock();
        // Read-your-own-write guard: a miss on a page served by the
        // pipeline's owner could fetch a copy predating our in-flight
        // writes, or send a READ that overtakes WRITEs still buffered in
        // the batcher (program-order violation either way). The decision
        // must be atomic with the miss itself — checking validity *before*
        // `begin_read` leaves a window in which the server thread (serving
        // another node's WRITE, or absorbing a reply under
        // WriterInvalidate) invalidates the copy — so classify first, and
        // on a miss toward the pipeline's owner drain under the pipeline
        // lock and re-run the read (absorbed replies may have repaired the
        // copy into a hit). `in_flight` cannot grow back while we hold the
        // operation lock, so the loop runs at most twice. Misses toward
        // *other* owners overlap safely: the READ carries no timestamp,
        // and any copy stamped with our increments must postdate the owner
        // installing our write.
        let step = loop {
            let step = node.state.write().begin_read(loc);
            if self.inner.config.pipeline_window() > 0 {
                if let ReadStep::Miss { owner, .. } = &step {
                    let p = node.pipeline.lock();
                    if p.in_flight > 0 && p.owner == Some(*owner) {
                        drop(self.drain_pipeline_locked(node, p)?);
                        continue;
                    }
                }
            }
            break step;
        };
        let (value, wid) = match step {
            ReadStep::Hit { value, wid } => (value, wid),
            ReadStep::Miss { owner, request } => {
                let page = loc.page(self.inner.config.page_size());
                let want = Want::Read { page };
                let reply = match self.inner.config.failover() {
                    Some(fo) => self.failover_round_trip(node, &fo, page, &request, want)?,
                    None => {
                        self.inner
                            .net
                            .send(self.node, owner, request)
                            .map_err(|_| MemoryError::Shutdown)?;
                        self.await_reply(node, owner, &Expected { op: None, want })?
                    }
                };
                let hit = node.state.write().finish_read(loc, reply);
                self.drain_side_traffic(node);
                hit
            }
        };
        self.record_with(|| OpRecord::read(loc, (*value).clone(), wid));
        Ok((value, wid))
    }
}

impl<V: Value> SharedMemory<V> for CausalHandle<V> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn read(&self, loc: Location) -> Result<V, MemoryError> {
        self.read_full(loc).map(|(value, _)| (*value).clone())
    }

    fn write(&self, loc: Location, value: V) -> Result<(), MemoryError> {
        self.write_resolved(loc, value).map(|_| ())
    }

    fn discard(&self, loc: Location) {
        if loc.index() >= self.inner.config.locations() as usize {
            return;
        }
        let node = &self.inner.nodes[self.node.index()];
        let _op = node.op_lock.lock();
        node.state.write().discard(loc);
        self.drain_side_traffic(node);
    }

    fn read_tagged(&self, loc: Location) -> Result<(V, Option<memcore::WriteId>), MemoryError> {
        self.read_full(loc)
            .map(|(value, wid)| ((*value).clone(), Some(wid)))
    }

    fn write_tagged(
        &self,
        loc: Location,
        value: V,
    ) -> Result<Option<memcore::WriteId>, MemoryError> {
        self.write_resolved(loc, value).map(|done| Some(done.wid()))
    }
}
