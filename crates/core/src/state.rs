//! The Figure-4 owner protocol as a pure state machine.
//!
//! [`CausalState`] is one processor's entire protocol state: its vector
//! timestamp `VT_i`, its local memory `M_i` (owned pages plus cache `C_i`),
//! and the five procedures of the paper's Figure 4 — local read, local
//! write, servicing `READ`, servicing `WRITE`, and `discard`. The state
//! machine performs no I/O: operations either complete locally or return
//! the message that must be sent, and the caller (the threaded engine in
//! [`crate::engine`] or the deterministic simulator in `dsm-sim`) moves
//! messages and feeds replies back in. This is what lets one implementation
//! be driven by real threads *and* replayed under controlled schedules.
//!
//! Each transition is annotated with the corresponding line of Figure 4.

use std::sync::Arc;

use memcore::{Location, NodeId, OwnerEpoch, OwnerMap, PageId, Value, WriteId};
use vclock::VectorClock;

use dsm_durable::WalRecord;

use crate::config::{CausalConfig, FailoverConfig, InvalidationMode, WritePolicy};
use crate::failover::{owner_at, FailoverState, ShadowPage};
use crate::fxmap::FastMap;
use crate::msg::{Msg, SlotData, Stamp, WriteVerdict};

/// One location's content in local memory: the value, the unique tag of
/// the write that produced it, and that write's *origin* stamp (the
/// writer's timestamp as sent, used only by the owner to detect concurrent
/// writes for the §4.2 resolution policy — Figure 4 itself stores the
/// merged stamp, which lives on the page).
///
/// Both the value and the origin stamp are behind `Arc`: a value is deep-
/// copied at most once per write (when the application hands it over), and
/// one origin stamp is shared by every slot a page install touches, so
/// reads, page serves and cache installs move pointers, not payloads.
#[derive(Clone, Debug)]
struct Slot<V> {
    value: Arc<V>,
    wid: WriteId,
    origin: Arc<VectorClock>,
}

/// A page of local memory `M_i`: per-location slots plus the page's
/// writestamp (`M_i[x].VT` in the paper).
#[derive(Clone, Debug)]
struct PageEntry<V> {
    vt: VectorClock,
    slots: Vec<Slot<V>>,
    /// Monotone installation tick, used by the bounded-cache replacement
    /// policy (`discard` as eviction).
    installed_at: u64,
}

/// Result of starting a read: either a local hit or the `[READ, x]`
/// message that must be sent to the owner.
#[derive(Clone, Debug)]
pub enum ReadStep<V> {
    /// The location is owned or validly cached; the read completes
    /// immediately.
    Hit {
        /// The value read, shared with local memory (cheap to clone).
        value: Arc<V>,
        /// The write the value was produced by (reads-from).
        wid: WriteId,
    },
    /// A read miss: send `request` to `owner` and feed the reply to
    /// [`CausalState::finish_read`].
    Miss {
        /// The owner of the missing page.
        owner: NodeId,
        /// The `[READ, x]` request.
        request: Msg<V>,
    },
}

/// Result of starting a write: done locally (writer owns the location) or
/// the `[WRITE, x, v, VT]` message that must be certified by the owner.
// The size gap between `Done` and `Remote` is deliberate: boxing the
// request would put a heap allocation on the remote-write path, which
// the perf harness counts per op and gates. The enum lives for exactly
// one dispatch, never in a collection.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum WriteStep<V> {
    /// The writer owns the location; the write is installed.
    Done {
        /// The unique tag assigned to this write.
        wid: WriteId,
    },
    /// Send `request` to `owner` and feed the reply to
    /// [`CausalState::finish_write`].
    Remote {
        /// The owner of the written page.
        owner: NodeId,
        /// The unique tag assigned to this write.
        wid: WriteId,
        /// The `[WRITE, x, v, VT]` request.
        request: Msg<V>,
    },
}

/// Outcome of a completed write, after any owner round-trip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteDone {
    /// The write is installed at the owner (and, for remote writes, cached
    /// at the writer).
    Applied {
        /// The unique tag assigned to this write.
        wid: WriteId,
    },
    /// The write lost to a concurrent owner write under
    /// [`WritePolicy::OwnerFavored`]; the surviving write's tag is given.
    Rejected {
        /// The tag this write would have carried.
        wid: WriteId,
        /// The surviving write at the owner.
        winner: WriteId,
    },
}

impl WriteDone {
    /// The unique tag assigned to the attempted write.
    #[must_use]
    pub fn wid(&self) -> WriteId {
        match self {
            WriteDone::Applied { wid } | WriteDone::Rejected { wid, .. } => *wid,
        }
    }

    /// `true` iff the write was installed.
    #[must_use]
    pub fn is_applied(&self) -> bool {
        matches!(self, WriteDone::Applied { .. })
    }
}

/// One processor's protocol state (Figure 4).
///
/// # Examples
///
/// A two-node system where `P0` owns everything; `P1`'s read misses and is
/// completed by feeding the owner's reply back in:
///
/// ```
/// use causal_dsm::{CausalConfig, CausalState, ReadStep, WriteStep};
/// use memcore::{ExplicitOwners, Location, NodeId, Word};
///
/// let config = CausalConfig::<Word>::builder(2, 1)
///     .owners(ExplicitOwners::new(2, 1, vec![NodeId::new(0)]))
///     .build();
/// let mut p0 = CausalState::new(NodeId::new(0), config.clone());
/// let mut p1 = CausalState::new(NodeId::new(1), config);
///
/// // P0 owns x0: its write completes locally.
/// assert!(matches!(p0.begin_write(Location::new(0), Word::Int(9)), WriteStep::Done { .. }));
///
/// // P1 misses; the owner serves the READ; P1 finishes the read.
/// let ReadStep::Miss { owner, request } = p1.begin_read(Location::new(0)) else {
///     unreachable!()
/// };
/// assert_eq!(owner, NodeId::new(0));
/// let reply = p0.serve(NodeId::new(1), request).unwrap();
/// let (value, _wid) = p1.finish_read(Location::new(0), reply);
/// assert_eq!(*value, Word::Int(9));
/// ```
#[derive(Clone, Debug)]
pub struct CausalState<V> {
    id: NodeId,
    config: CausalConfig<V>,
    /// `VT_i` — this processor's vector timestamp.
    vt: VectorClock,
    /// `M_i` — owned pages (always present) plus the cache `C_i`.
    pages: FastMap<PageId, PageEntry<V>>,
    /// Next write sequence number (write uniqueness).
    write_seq: u64,
    /// Monotone tick for cache replacement.
    tick: u64,
    /// Cumulative count of cache invalidations performed (ablation metric).
    invalidations: u64,
    /// Cumulative count of cache sweep passes (coalescing merges the
    /// per-write sweeps of a batch into one pass).
    sweeps: u64,
    /// `VT_i` as of the start of the (single) outstanding remote
    /// operation — used to detect knowledge absorbed while a reply was in
    /// flight (see the in-flight-reply guards in `finish_read` /
    /// `finish_write`).
    op_begin_vt: VectorClock,
    /// Failover bookkeeping (epochs, shadows, liveness); `None` unless a
    /// [`FailoverConfig`] is attached — in which case nothing here ever
    /// touches the wire.
    failover: Option<FailoverState<V>>,
    /// Owner-side interest sets: which peers cache (or once cached and
    /// have not dropped) each page this node serves. Populated only under
    /// [`CausalConfig::interest_scoping`]; membership is a safe
    /// over-approximation — a stale entry costs scoping precision, never
    /// correctness.
    interest: FastMap<PageId, Vec<NodeId>>,
    /// Outgoing `[INTEREST]` drops queued by cache evictions, drained by
    /// the engine alongside replications.
    pending_interest: Vec<(NodeId, Msg<V>)>,
    /// Durability journal: records queued since the last
    /// [`CausalState::take_journal`] drain. Always empty unless
    /// [`CausalConfig::durability`] is set — the gate every hook below
    /// checks before allocating anything.
    journal: Vec<WalRecord<V>>,
    /// Process incarnation: 0 for a first life, `persisted + 1` after
    /// every crash recovery. Session layers stamp frames with it so a
    /// previous life's traffic can be fenced.
    incarnation: u32,
}

impl<V: Value> CausalState<V> {
    /// Creates processor `id`'s state with every owned page initialized to
    /// the distinguished initial value (the paper's "initial writes ...
    /// that precede all operations").
    #[must_use]
    pub fn new(id: NodeId, config: CausalConfig<V>) -> Self {
        let mut pages = FastMap::default();
        let n = config.nodes() as usize;
        for page_index in 0..config.page_count() {
            let page = PageId::new(page_index);
            if config.owners().owner_of_page(page) == id {
                pages.insert(page, Self::initial_page(&config, page, n));
            }
        }
        let failover = config.failover().map(|fo| FailoverState::new(fo, n));
        let mut state = CausalState {
            id,
            config,
            vt: VectorClock::new(n),
            pages,
            write_seq: 0,
            tick: 0,
            invalidations: 0,
            sweeps: 0,
            op_begin_vt: VectorClock::new(n),
            failover,
            interest: FastMap::default(),
            pending_interest: Vec::new(),
            journal: Vec::new(),
            incarnation: 0,
        };
        if state.journaling() {
            // Baseline watermark: even a life that never writes leaves
            // proof it existed, so the next life's incarnation is larger.
            state.journal.push(WalRecord::Node {
                vt: state.vt.clone(),
                write_seq: 0,
                incarnation: 0,
            });
        }
        state
    }

    fn initial_page(config: &CausalConfig<V>, page: PageId, n: usize) -> PageEntry<V> {
        let _ = n;
        let initial = Arc::new(config.initial().clone());
        let origin = Arc::new(VectorClock::new(config.nodes() as usize));
        let slots = page
            .locations(config.page_size())
            .map(|loc| Slot {
                value: Arc::clone(&initial),
                wid: WriteId::initial(loc),
                origin: Arc::clone(&origin),
            })
            .collect();
        PageEntry {
            vt: VectorClock::new(config.nodes() as usize),
            slots,
            installed_at: 0,
        }
    }

    /// This processor's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This processor's current vector timestamp `VT_i`.
    #[must_use]
    pub fn vt(&self) -> &VectorClock {
        &self.vt
    }

    /// The configuration this state was built with.
    #[must_use]
    pub fn config(&self) -> &CausalConfig<V> {
        &self.config
    }

    /// Number of cached (non-owned) pages currently valid — `|C_i|`.
    #[must_use]
    pub fn cached_pages(&self) -> usize {
        self.pages
            .keys()
            .filter(|p| self.current_owner(**p) != self.id)
            .count()
    }

    /// Cumulative count of cache invalidations this node has performed.
    #[must_use]
    pub fn invalidation_count(&self) -> u64 {
        self.invalidations
    }

    /// Cumulative count of cache sweep passes. With invalidation
    /// coalescing, a batch of `k` writes costs one pass instead of `k`;
    /// the invalidation *count* (pages dropped) is unaffected.
    #[must_use]
    pub fn sweep_count(&self) -> u64 {
        self.sweeps
    }

    /// `true` iff this node currently owns `loc` — under failover, the
    /// page's epoch decides; without it, the static map.
    #[must_use]
    pub fn owns(&self, loc: Location) -> bool {
        self.current_owner(self.page_of(loc)) == self.id
    }

    /// The node currently serving `page`: the static owner rotated by the
    /// page's [`OwnerEpoch`] (identical to the static owner when failover
    /// is disabled — every epoch is zero).
    #[must_use]
    pub fn current_owner(&self, page: PageId) -> NodeId {
        match &self.failover {
            Some(fo) => owner_at(self.config.owners().as_ref(), page, fo.epoch_of(page)),
            None => self.config.owners().owner_of_page(page),
        }
    }

    /// The ownership epoch this node believes `page` is at.
    #[must_use]
    pub fn epoch_of(&self, page: PageId) -> OwnerEpoch {
        self.failover
            .as_ref()
            .map_or(OwnerEpoch::ZERO, |fo| fo.epoch_of(page))
    }

    /// `true` iff the owner-failover layer is active on this node.
    #[must_use]
    pub fn failover_enabled(&self) -> bool {
        self.failover.is_some()
    }

    /// `true` iff `loc` is readable locally (owned or cached) —
    /// `M_i[x] ≠ ⊥`.
    #[must_use]
    pub fn has_valid_copy(&self, loc: Location) -> bool {
        self.pages.contains_key(&self.page_of(loc))
    }

    fn page_of(&self, loc: Location) -> PageId {
        loc.page(self.config.page_size())
    }

    fn offset_of(&self, loc: Location) -> usize {
        loc.page_offset(self.config.page_size())
    }

    /// Peeks at the locally visible value of `loc` without performing a
    /// read (no protocol side effects). Used by the simulator's
    /// ideal-signaling waits and by tests.
    #[must_use]
    pub fn peek(&self, loc: Location) -> Option<(&V, WriteId)> {
        let entry = self.pages.get(&self.page_of(loc))?;
        let slot = &entry.slots[self.offset_of(loc)];
        Some((slot.value.as_ref(), slot.wid))
    }

    /// A read of `loc` that completes only if it hits locally — the
    /// non-mutating half of [`CausalState::begin_read`].
    ///
    /// Figure 4's read procedure touches no protocol state on a hit
    /// (`M_i[x] ≠ ⊥ → v := M_i[x].value`), so a hit needs only `&self`:
    /// the threaded engine uses this to serve cached reads under a shared
    /// (read) lock, concurrently with other readers. Returns `None` on a
    /// miss — the caller then takes the write lock and runs `begin_read`.
    #[must_use]
    pub fn read_hit(&self, loc: Location) -> Option<(Arc<V>, WriteId)> {
        let entry = self.pages.get(&self.page_of(loc))?;
        let slot = &entry.slots[self.offset_of(loc)];
        Some((Arc::clone(&slot.value), slot.wid))
    }

    // ------------------------------------------------------------------
    // r_i(x)v  — Figure 4, first procedure
    // ------------------------------------------------------------------

    /// Starts a read of `loc`.
    ///
    /// Figure 4: `if M_i[x] = ⊥` the read misses and a `[READ, x]` is sent
    /// to `owner(x)`; otherwise `v := M_i[x].value`.
    pub fn begin_read(&mut self, loc: Location) -> ReadStep<V> {
        let page = self.page_of(loc);
        if let Some(entry) = self.pages.get(&page) {
            let slot = &entry.slots[self.offset_of(loc)];
            ReadStep::Hit {
                value: Arc::clone(&slot.value),
                wid: slot.wid,
            }
        } else {
            self.op_begin_vt = self.vt.clone();
            ReadStep::Miss {
                owner: self.current_owner(page),
                request: Msg::Read { page },
            }
        }
    }

    /// Completes a read miss with the owner's `[R_REPLY, x, v', VT']`.
    ///
    /// Figure 4: `VT_i := update(VT_i, VT')`; `M_i[x] := (v', VT')`;
    /// `∀y ∈ C_i : M_i[y].VT < VT' → M_i[y] := ⊥`; `v := M_i[x].value`.
    ///
    /// One guard beyond the figure's text: if, while the fetch was in
    /// flight, this node absorbed knowledge (by servicing requests) whose
    /// merged stamp *strictly dominates* the reply's page stamp, the page
    /// is **not cached** — the read still completes with the fetched
    /// value (legal: no operation of this process can yet causally follow
    /// the newer accesses), but caching it would let later reads return a
    /// provably overwritten value. The figure's sweep cannot catch this
    /// because the page arrives *after* the knowledge; see
    /// `late_reply_is_not_cached_over_fresher_knowledge` and
    /// `docs/PROTOCOL.md`.
    ///
    /// # Panics
    ///
    /// Panics if `reply` is not a `ReadReply` for `loc`'s page (engine
    /// invariant: one outstanding operation per node).
    pub fn finish_read(&mut self, loc: Location, reply: Msg<V>) -> (Arc<V>, WriteId) {
        let Msg::ReadReply { page, vt, slots } = reply else {
            panic!("finish_read fed a non-ReadReply message");
        };
        let vt = vt.into_inner();
        assert_eq!(page, self.page_of(loc), "reply for wrong page");

        // Staleness check BEFORE the merge: dangerous only if knowledge
        // arrived *while this reply was in flight* (the clock moved since
        // the request) and that knowledge strictly dominates the fetched
        // page. A page merely older than what we knew at request time is
        // the paper's sanctioned "wide range of writestamps" case and
        // caches normally.
        let overtaken = self.vt != self.op_begin_vt && vt.dominated_by(&self.vt);

        // VT_i := update(VT_i, VT')
        self.vt.update(&vt);

        // ∀y ∈ C_i: M_i[y].VT < VT' → invalidate. This must run even for
        // an overtaken reply: the fetched values are real knowledge, and
        // cached entries the page stamp dominates may include this node's
        // own stale copy of the very page being read.
        self.sweep_cache(&vt);

        if overtaken {
            let offset = self.offset_of(loc);
            let (value, wid) = slots
                .into_iter()
                .nth(offset)
                .expect("reply carries the full page");
            return (value, wid);
        }

        // M_i[x] := (v', VT')  — note: the *sent* stamp VT', not VT_i.
        // One origin stamp is interned per install and shared by every
        // slot on the page.
        self.tick += 1;
        let origin = Arc::new(vt.clone());
        let entry = PageEntry {
            vt,
            slots: slots
                .into_iter()
                .map(|(value, wid)| Slot {
                    value,
                    wid,
                    origin: Arc::clone(&origin),
                })
                .collect(),
            installed_at: self.tick,
        };
        self.pages.insert(page, entry);
        self.enforce_cache_capacity(page);

        let slot = &self.pages[&page].slots[self.offset_of(loc)];
        (Arc::clone(&slot.value), slot.wid)
    }

    // ------------------------------------------------------------------
    // w_i(x)v  — Figure 4, second procedure
    // ------------------------------------------------------------------

    /// Starts a write of `value` to `loc`.
    ///
    /// Figure 4: `VT_i := increment(VT_i)`; if the writer owns `x` the
    /// write installs locally (`M_i[x] := (v, VT_i)`), otherwise a
    /// `[WRITE, x, v, VT_i]` is sent to the owner.
    pub fn begin_write(&mut self, loc: Location, value: V) -> WriteStep<V> {
        self.begin_write_shared(loc, Arc::new(value))
    }

    /// [`CausalState::begin_write`] with a value already behind an `Arc`.
    ///
    /// Callers that also need the value afterwards (to record it, or to
    /// feed [`CausalState::finish_write`]) wrap it once and clone the
    /// pointer — the value itself is never deep-copied by the protocol.
    pub fn begin_write_shared(&mut self, loc: Location, value: Arc<V>) -> WriteStep<V> {
        // VT_i := increment(VT_i)
        self.vt.increment(self.id.index());
        let wid = WriteId::new(self.id, self.write_seq);
        self.write_seq += 1;

        let page = self.page_of(loc);
        let owner = self.current_owner(page);
        if owner == self.id {
            let offset = self.offset_of(loc);
            let vt = self.vt.clone();
            let origin = Arc::new(vt.clone());
            if self.journaling() {
                self.journal.push(WalRecord::Write {
                    loc,
                    value: Arc::clone(&value),
                    wid,
                    origin: vt.clone(),
                    node_vt: vt.clone(),
                    applied: true,
                });
            }
            let entry = self
                .pages
                .get_mut(&page)
                .expect("owned pages are always present");
            entry.slots[offset] = Slot { value, wid, origin };
            entry.vt = vt;
            self.note_owned_write(page);
            WriteStep::Done { wid }
        } else {
            if self.journaling() {
                // Watermark the minted WriteId: a recovered node must
                // never reuse a sequence number, even for writes served
                // (and journaled) elsewhere.
                self.journal.push(WalRecord::Node {
                    vt: self.vt.clone(),
                    write_seq: self.write_seq,
                    incarnation: self.incarnation,
                });
            }
            self.op_begin_vt = self.vt.clone();
            let vt = self.stamp(self.vt.clone());
            WriteStep::Remote {
                owner,
                wid,
                request: Msg::Write {
                    loc,
                    value,
                    wid,
                    vt,
                },
            }
        }
    }

    /// Completes a remote write with the owner's `[W_REPLY, x, v, VT']`.
    ///
    /// Figure 4: `VT_i := update(VT_i, VT')`; the figure then caches under
    /// the merged clock, `M_i[x] := (v, VT_i)`. This implementation caches
    /// under the **sent** stamp instead — `M_i[x] := (v, VT')` — the same
    /// deviation [`CausalState::finish_read`] makes, and for the same
    /// reason: a writer that owns pages can absorb third-party knowledge
    /// (by certifying peers' writes) while its own W_REPLY is in flight.
    /// Caching under the merged clock would fold that unrelated knowledge
    /// into the entry's stamp, and a later page stamp from the owner —
    /// which causally dominates every overwrite of this value — could no
    /// longer dominate the inflated entry, leaving a provably overwritten
    /// value unsweepable. Caching under VT' keeps the entry exactly as
    /// sweepable as the owner's history requires (the ring-ownership scale
    /// sims hit this with concurrent writer/owner roles; see
    /// `writer_owner_race_keeps_cache_sweepable`).
    ///
    /// Under [`InvalidationMode::WriterInvalidate`] the cache sweep the
    /// paper's prose implies is also applied here (ablation A1).
    ///
    /// # Panics
    ///
    /// Panics if `reply` is not a `WriteReply` for `loc`.
    pub fn finish_write(&mut self, value: Arc<V>, wid: WriteId, reply: Msg<V>) -> WriteDone {
        let Msg::WriteReply {
            loc, vt, verdict, ..
        } = reply
        else {
            panic!("finish_write fed a non-WriteReply message");
        };
        let vt = vt.into_inner();

        // Same in-flight-reply guard as finish_read: if knowledge absorbed
        // while this reply travelled strictly dominates the owner's clock
        // at certification time, the certified value may already be
        // overwritten by something this node knows — and caching it (even
        // under the sent stamp) could serve a provably overwritten value
        // until the next sweep. Complete the write without caching.
        let overtaken = self.vt != self.op_begin_vt && vt.dominated_by(&self.vt);

        // VT_i := update(VT_i, VT')
        self.vt.update(&vt);

        if self.config.invalidation() == InvalidationMode::WriterInvalidate {
            self.sweep_cache(&self.vt.clone());
        }

        if overtaken {
            return match verdict {
                WriteVerdict::Applied => WriteDone::Applied { wid },
                WriteVerdict::Rejected { wid: winner, .. } => WriteDone::Rejected { wid, winner },
            };
        }

        // M_i[x] := (v, VT') — cache the surviving value under the owner's
        // certification stamp (see the method docs for why not VT_i). At
        // page granularity > 1 we cannot fabricate the rest of the page, so
        // the update only applies if the page is already cached (the next
        // read of an uncached page will fetch it whole).
        let (install_value, install_wid) = match &verdict {
            WriteVerdict::Applied => (value, wid),
            WriteVerdict::Rejected {
                value: winner_value,
                wid: winner_wid,
            } => (Arc::clone(winner_value), *winner_wid),
        };
        let page = self.page_of(loc);
        let offset = self.offset_of(loc);
        let vt_now = vt;
        let origin = Arc::new(vt_now.clone());
        if let Some(entry) = self.pages.get_mut(&page) {
            entry.slots[offset] = Slot {
                value: install_value,
                wid: install_wid,
                origin,
            };
            entry.vt = vt_now;
        } else if self.config.page_size() == 1 {
            self.tick += 1;
            let entry = PageEntry {
                vt: vt_now,
                slots: vec![Slot {
                    value: install_value,
                    wid: install_wid,
                    origin,
                }],
                installed_at: self.tick,
            };
            self.pages.insert(page, entry);
            self.enforce_cache_capacity(page);
        }

        match verdict {
            WriteVerdict::Applied => WriteDone::Applied { wid },
            WriteVerdict::Rejected { wid: winner, .. } => WriteDone::Rejected { wid, winner },
        }
    }

    /// Starts a **non-blocking** write — the "reducing the blocking of
    /// processors" enhancement the paper defers to its technical report.
    ///
    /// Like [`CausalState::begin_write`], but a remote write additionally
    /// installs the value into the local cache *optimistically* (so the
    /// writer reads its own write immediately) and the caller need not
    /// block: feed the owner's eventual reply to
    /// [`CausalState::absorb_write_reply`] whenever it arrives.
    ///
    /// **Correctness boundary**: this node's own view stays consistent
    /// (per-link FIFO orders the write before this node's later requests
    /// to the same owner), but third parties that causally learn of the
    /// in-flight write can be served the pre-write value — full
    /// Definition-2 correctness requires blocking writes. See
    /// `tests/nonblocking_limits.rs` and `docs/PROTOCOL.md`.
    pub fn begin_write_nonblocking(&mut self, loc: Location, value: V) -> WriteStep<V> {
        self.begin_write_nonblocking_shared(loc, Arc::new(value))
    }

    /// [`CausalState::begin_write_nonblocking`] with a value already
    /// behind an `Arc` (see [`CausalState::begin_write_shared`]).
    pub fn begin_write_nonblocking_shared(&mut self, loc: Location, value: Arc<V>) -> WriteStep<V> {
        let step = self.begin_write_shared(loc, Arc::clone(&value));
        if let WriteStep::Remote { wid, .. } = step {
            // M_i[x] := (v, VT_i) now instead of at reply time.
            let page = self.page_of(loc);
            let offset = self.offset_of(loc);
            let vt_now = self.vt.clone();
            let origin = Arc::new(vt_now.clone());
            if let Some(entry) = self.pages.get_mut(&page) {
                entry.slots[offset] = Slot { value, wid, origin };
                entry.vt = vt_now;
            } else if self.config.page_size() == 1 {
                self.tick += 1;
                let entry = PageEntry {
                    vt: vt_now,
                    slots: vec![Slot { value, wid, origin }],
                    installed_at: self.tick,
                };
                self.pages.insert(page, entry);
                self.enforce_cache_capacity(page);
            }
        }
        step
    }

    /// Absorbs the owner's reply to a non-blocking write: merges the
    /// timestamp and, if the owner-favored policy rejected the write,
    /// repairs the optimistic cache entry with the surviving value.
    ///
    /// # Panics
    ///
    /// Panics if `reply` is not a `WriteReply`.
    pub fn absorb_write_reply(&mut self, reply: Msg<V>) -> WriteDone {
        let Msg::WriteReply {
            loc,
            wid,
            vt,
            verdict,
        } = reply
        else {
            panic!("absorb_write_reply fed a non-WriteReply message");
        };
        // Same in-flight-reply guard as finish_write: an overtaken reply
        // must not repair the cache with a value older than knowledge
        // already absorbed.
        let overtaken = vt.dominated_by(&self.vt);
        self.vt.update(&vt);
        if self.config.invalidation() == InvalidationMode::WriterInvalidate {
            self.sweep_cache(&self.vt.clone());
        }
        match verdict {
            WriteVerdict::Applied => WriteDone::Applied { wid },
            WriteVerdict::Rejected { .. } if overtaken => {
                let WriteVerdict::Rejected { wid: winner, .. } = verdict else {
                    unreachable!()
                };
                WriteDone::Rejected { wid, winner }
            }
            WriteVerdict::Rejected {
                value: winner_value,
                wid: winner,
            } => {
                // Repair: only overwrite if our optimistic value is still
                // the one installed (a later write may have superseded it).
                let page = self.page_of(loc);
                let offset = self.offset_of(loc);
                let vt_now = self.vt.clone();
                if let Some(entry) = self.pages.get_mut(&page) {
                    if entry.slots[offset].wid == wid {
                        entry.slots[offset] = Slot {
                            value: winner_value,
                            wid: winner,
                            origin: Arc::new(vt_now.clone()),
                        };
                        entry.vt = vt_now;
                    }
                }
                WriteDone::Rejected { wid, winner }
            }
        }
    }

    // ------------------------------------------------------------------
    // Owner service — Figure 4, third and fourth procedures
    // ------------------------------------------------------------------

    /// Services an incoming request, returning the reply to send back.
    ///
    /// Returns `None` for non-request messages (`Halt`, stray replies).
    pub fn serve(&mut self, from: NodeId, request: Msg<V>) -> Option<Msg<V>> {
        match request {
            Msg::Read { page } => Some(self.serve_read(from, page)),
            Msg::Write {
                loc,
                value,
                wid,
                vt,
            } => Some(self.serve_write(from, loc, value, wid, vt.into_inner())),
            Msg::Interest { page } => {
                self.handle_interest_drop(page, from);
                None
            }
            _ => None,
        }
    }

    /// Services a batched run of requests from one peer, coalescing the
    /// owner-side invalidation sweeps.
    ///
    /// Each write merges timestamps and installs exactly as
    /// [`serve`](CausalState::serve) would, but the Figure-4 cache sweep
    /// `∀y ∈ C_i : M_i[y].VT < VT_i → M_i[y] := ⊥` runs once, after the
    /// run, with the final merged timestamp. Every per-write threshold is
    /// dominated by the final one, so the surviving cache set is identical
    /// — the batch only saves the intermediate sweep passes. Replies come
    /// back in request order, one per request, ready to ride a single
    /// envelope (the acks are piggybacked on the batch reply).
    pub fn serve_batch(&mut self, from: NodeId, parts: Vec<Msg<V>>) -> Vec<Msg<V>> {
        let mut replies = Vec::with_capacity(parts.len());
        let mut wrote = false;
        for part in parts {
            match part {
                Msg::Read { page } => replies.push(self.serve_read(from, page)),
                Msg::Write {
                    loc,
                    value,
                    wid,
                    vt,
                } => {
                    wrote = true;
                    replies.push(self.serve_write_unswept(from, loc, value, wid, vt.into_inner()));
                }
                _ => {}
            }
        }
        if wrote {
            self.sweep_cache(&self.vt.clone());
        }
        replies
    }

    /// Services `[READ, x]`: replies with the owned page and its
    /// writestamp. Figure 4: `send [R_REPLY, x, M_i[x].value, M_i[x].VT]`.
    ///
    /// # Panics
    ///
    /// Panics if this node does not own `page` (a routing bug).
    fn serve_read(&mut self, from: NodeId, page: PageId) -> Msg<V> {
        assert_eq!(
            self.current_owner(page),
            self.id,
            "READ routed to non-owner"
        );
        self.register_interest(page, from);
        let entry = &self.pages[&page];
        Msg::ReadReply {
            page,
            vt: self.stamp(entry.vt.clone()),
            slots: entry
                .slots
                .iter()
                .map(|s| (Arc::clone(&s.value), s.wid))
                .collect(),
        }
    }

    /// Services `[WRITE, x, v, VT]`.
    ///
    /// Figure 4: `VT_i := update(VT_i, VT)`; `M_i[x] := (v, VT_i)`;
    /// `∀y ∈ C_i : M_i[y].VT < VT_i → M_i[y] := ⊥`; reply
    /// `[W_REPLY, x, v, VT_i]`.
    ///
    /// Under [`WritePolicy::OwnerFavored`], an incoming write whose origin
    /// stamp is *concurrent* with the currently installed slot's origin
    /// stamp loses if the current value was written by the owner itself
    /// (§4.2); the reply then carries the surviving value.
    ///
    /// # Panics
    ///
    /// Panics if this node does not own `loc` (a routing bug).
    fn serve_write(
        &mut self,
        from: NodeId,
        loc: Location,
        value: Arc<V>,
        wid: WriteId,
        vt: VectorClock,
    ) -> Msg<V> {
        let reply = self.serve_write_unswept(from, loc, value, wid, vt);
        // ∀y ∈ C_i : M_i[y].VT < VT_i → M_i[y] := ⊥
        // (A potential causal interaction with the writer occurred, applied
        // or not — the owner's timestamp already merged the writer's.)
        let threshold = self.vt.clone();
        self.sweep_cache(&threshold);
        reply
    }

    /// [`serve_write`](CausalState::serve_write) minus the trailing cache
    /// sweep — the caller must sweep with the final merged timestamp before
    /// yielding control (see [`serve_batch`](CausalState::serve_batch)).
    fn serve_write_unswept(
        &mut self,
        from: NodeId,
        loc: Location,
        value: Arc<V>,
        wid: WriteId,
        vt: VectorClock,
    ) -> Msg<V> {
        let page = self.page_of(loc);
        assert_eq!(
            self.current_owner(page),
            self.id,
            "WRITE routed to non-owner"
        );
        self.register_interest(page, from);

        // VT_i := update(VT_i, VT)
        self.vt.update(&vt);

        let offset = self.offset_of(loc);
        // A write whose origin stamp is strictly dominated by the
        // installed value's origin is *already overwritten on arrival*:
        // the current value was written with knowledge of this one. This
        // can only happen with non-blocking writes (a blocking writer's
        // increment cannot be known anywhere before the owner sees it);
        // installing it would let readers regress to an overwritten value.
        // It counts as applied — applied and instantly overwritten.
        let (reject, stale) = {
            let slot = &self.pages[&page].slots[offset];
            (
                self.config.policy() == WritePolicy::OwnerFavored
                    && slot.wid.writer() == Some(self.id)
                    && slot.origin.concurrent(&vt),
                vt.dominated_by(&slot.origin),
            )
        };

        if self.journaling() {
            // Append before the install (and the caller syncs before the
            // reply leaves): a certified write is on disk first. Verdicts
            // that install nothing still journal the clock merge.
            self.journal.push(WalRecord::Write {
                loc,
                value: Arc::clone(&value),
                wid,
                origin: vt.clone(),
                node_vt: self.vt.clone(),
                applied: !reject && !stale,
            });
        }

        let verdict = if reject {
            let slot = &self.pages[&page].slots[offset];
            WriteVerdict::Rejected {
                value: Arc::clone(&slot.value),
                wid: slot.wid,
            }
        } else if stale {
            WriteVerdict::Applied
        } else {
            // M_i[x] := (v, VT_i)
            let vt_now = self.vt.clone();
            let entry = self
                .pages
                .get_mut(&page)
                .expect("owned pages are always present");
            entry.slots[offset] = Slot {
                value,
                wid,
                origin: Arc::new(vt),
            };
            entry.vt = vt_now;
            self.note_owned_write(page);
            WriteVerdict::Applied
        };

        Msg::WriteReply {
            loc,
            wid,
            vt: self.stamp(self.vt.clone()),
            verdict,
        }
    }

    // ------------------------------------------------------------------
    // discard — Figure 4, fifth procedure
    // ------------------------------------------------------------------

    /// Discards the cached copy of the page containing `loc`, if any.
    ///
    /// Owned and constant pages are never discarded. Returns `true` if a
    /// copy was dropped.
    pub fn discard(&mut self, loc: Location) -> bool {
        let page = self.page_of(loc);
        if self.current_owner(page) == self.id || self.config.is_const_page(page) {
            return false;
        }
        let dropped = self.pages.remove(&page).is_some();
        if dropped {
            self.note_dropped(page);
        }
        dropped
    }

    /// Discards an arbitrary cached page (the paper's nondeterministic
    /// `discard :: M_i[y] := ⊥ : ∃y ∈ C_i`), choosing the least recently
    /// installed. Returns the discarded page, if any.
    pub fn discard_any(&mut self) -> Option<PageId> {
        let victim = self
            .pages
            .iter()
            .filter(|(p, _)| self.current_owner(**p) != self.id && !self.config.is_const_page(**p))
            .min_by_key(|(_, e)| e.installed_at)
            .map(|(p, _)| *p)?;
        self.pages.remove(&victim);
        self.note_dropped(victim);
        Some(victim)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Invalidate every cached page strictly older than `threshold` —
    /// the Figure-4 sweep `∀y ∈ C_i : M_i[y].VT < VT → M_i[y] := ⊥`.
    fn sweep_cache(&mut self, threshold: &VectorClock) {
        self.sweeps += 1;
        let id = self.id;
        let owners = self.config.owners().clone();
        let before = self.pages.len();
        let config = &self.config;
        let failover = &self.failover;
        self.pages.retain(|page, entry| {
            let owner = match failover {
                Some(fo) => owner_at(owners.as_ref(), *page, fo.epoch_of(*page)),
                None => owners.owner_of_page(*page),
            };
            owner == id || config.is_const_page(*page) || !entry.vt.dominated_by(threshold)
        });
        self.invalidations += (before - self.pages.len()) as u64;
    }

    /// Evict oldest cached pages until within the configured capacity,
    /// never evicting `keep` (the page just installed).
    fn enforce_cache_capacity(&mut self, keep: PageId) {
        let Some(cap) = self.config.cache_capacity() else {
            return;
        };
        while self.cached_pages() > cap {
            let victim = self
                .pages
                .iter()
                .filter(|(p, _)| {
                    **p != keep
                        && self.current_owner(**p) != self.id
                        && !self.config.is_const_page(**p)
                })
                .min_by_key(|(_, e)| e.installed_at)
                .map(|(p, _)| *p);
            match victim {
                Some(page) => {
                    self.pages.remove(&page);
                    self.note_dropped(page);
                }
                None => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // Interest scoping (inert unless `interest_scoping` is configured)
    // ------------------------------------------------------------------

    /// Wraps a timestamp for the wire: sparse under interest scoping,
    /// dense (the Figure-4 byte-identical shape) otherwise.
    fn stamp(&self, vt: VectorClock) -> Stamp {
        Stamp::new(vt, self.config.interest_scoping())
    }

    /// Records that `peer` holds a copy of `page` — it was just served
    /// one, or certified a write it will cache. Registration is implicit
    /// in the request; no extra message exists for it.
    fn register_interest(&mut self, page: PageId, peer: NodeId) {
        if !self.config.interest_scoping() || peer == self.id {
            return;
        }
        let set = self.interest.entry(page).or_default();
        let newly = !set.contains(&peer);
        if newly {
            set.push(peer);
        }
        if newly && self.journaling() {
            self.journal.push(WalRecord::Interest {
                page,
                node: peer,
                registered: true,
            });
        }
    }

    /// Absorbs a peer's `[INTEREST]` drop: it evicted its copy of `page`
    /// and no longer needs this node's scoped shipments for it.
    pub fn handle_interest_drop(&mut self, page: PageId, peer: NodeId) {
        let mut removed = false;
        if let Some(set) = self.interest.get_mut(&page) {
            let before = set.len();
            set.retain(|p| *p != peer);
            removed = set.len() != before;
            if set.is_empty() {
                self.interest.remove(&page);
            }
        }
        if removed && self.journaling() {
            self.journal.push(WalRecord::Interest {
                page,
                node: peer,
                registered: false,
            });
        }
    }

    /// The peers registered as caching `page` (always empty unless this
    /// node serves the page under interest scoping).
    #[must_use]
    pub fn interested(&self, page: PageId) -> &[NodeId] {
        self.interest.get(&page).map_or(&[], |set| set.as_slice())
    }

    /// Queues an `[INTEREST]` drop to `page`'s owner after evicting the
    /// cached copy. Invalidation sweeps do not send drops: a swept page
    /// is typically re-fetched promptly, and an over-full interest set is
    /// a safe over-approximation.
    fn note_dropped(&mut self, page: PageId) {
        if !self.config.interest_scoping() {
            return;
        }
        let owner = self.current_owner(page);
        if owner != self.id {
            self.pending_interest.push((owner, Msg::Interest { page }));
        }
    }

    /// Drains the queued `[INTEREST]` drops; the engine sends each to the
    /// page's owner.
    pub fn take_interest_msgs(&mut self) -> Vec<(NodeId, Msg<V>)> {
        std::mem::take(&mut self.pending_interest)
    }

    // ------------------------------------------------------------------
    // Owner failover (inert unless a FailoverConfig is attached)
    // ------------------------------------------------------------------

    /// The attached failover configuration, if any.
    #[must_use]
    pub fn failover_config(&self) -> Option<FailoverConfig> {
        self.failover.as_ref().map(|fo| fo.config)
    }

    /// Hands out the next operation id for stamping a remote request.
    /// Ids are monotone per node, so a late reply to an abandoned attempt
    /// can never be mistaken for the current one.
    pub fn next_op_id(&mut self) -> u64 {
        match &mut self.failover {
            Some(fo) => {
                let op = fo.next_op;
                fo.next_op += 1;
                op
            }
            None => 0,
        }
    }

    /// Adopts `epoch` for `page` if it is newer than what this node
    /// believes (epochs only ever grow — a max-merge). If the adoption
    /// makes this node the page's owner, the page is promoted: the shadow
    /// copy (or, failing that, a cached or fabricated initial copy)
    /// becomes the authoritative owned page.
    pub fn observe_epoch(&mut self, page: PageId, epoch: OwnerEpoch) {
        let Some(fo) = &self.failover else { return };
        if epoch <= fo.epoch_of(page) {
            return;
        }
        let was_owner = self.current_owner(page) == self.id;
        self.failover
            .as_mut()
            .expect("checked above")
            .epochs
            .insert(page, epoch);
        if self.journaling() {
            self.journal.push(WalRecord::Epoch { page, epoch });
        }
        if !was_owner && self.current_owner(page) == self.id {
            self.promote(page);
        }
        // If this node *lost* ownership (it is the crashed ex-owner,
        // rejoining), nothing needs doing: its copy of the page simply
        // becomes a cache entry, sweepable and discardable like any other.
    }

    /// Installs the best available copy of a page this node just became
    /// owner of. Preference order: the certified shadow (unless a local
    /// copy is strictly fresher), then an existing cached copy, then the
    /// distinguished initial page (possible only if no write to the page
    /// was ever certified — certification replicates).
    fn promote(&mut self, page: PageId) {
        let shadow = self
            .failover
            .as_mut()
            .expect("promote requires failover")
            .shadows
            .remove(&page);
        if let Some(shadow) = shadow {
            let stale = self
                .pages
                .get(&page)
                .is_some_and(|e| shadow.vt.dominated_by(&e.vt));
            if !stale {
                // Installing the shadow introduces its knowledge: merge
                // the clock and run the Figure-4 sweep, exactly as a
                // read-miss install would.
                self.vt.update(&shadow.vt);
                let threshold = shadow.vt.clone();
                self.sweep_cache(&threshold);
                self.tick += 1;
                let entry = PageEntry {
                    vt: shadow.vt,
                    slots: shadow
                        .slots
                        .into_iter()
                        .zip(shadow.origins)
                        .map(|((value, wid), origin)| Slot {
                            value,
                            wid,
                            origin: Arc::new(origin),
                        })
                        .collect(),
                    installed_at: self.tick,
                };
                self.pages.insert(page, entry);
            }
        } else if !self.pages.contains_key(&page) {
            let n = self.config.nodes() as usize;
            let entry = Self::initial_page(&self.config, page, n);
            self.pages.insert(page, entry);
        }
        if self.journaling() {
            // Journal the authoritative copy this promotion settled on —
            // shadow, surviving local copy, or fabricated initial page —
            // so recovery rebuilds exactly what this owner now serves.
            if let Some(entry) = self.pages.get(&page) {
                let record = WalRecord::PageInstall {
                    page,
                    vt: entry.vt.clone(),
                    slots: entry
                        .slots
                        .iter()
                        .map(|s| (Arc::clone(&s.value), s.wid))
                        .collect(),
                    origins: entry.slots.iter().map(|s| (*s.origin).clone()).collect(),
                    shadow: false,
                };
                self.journal.push(record);
            }
        }
    }

    /// Services an epoch-stamped request (the failover envelope).
    ///
    /// * Request epoch behind ours, or we are not the owner → `[NACK]`
    ///   carrying our epoch and a redirect to the node we believe serves
    ///   the page.
    /// * Request epoch ahead of ours → adopt it (promoting ourselves if
    ///   we are the successor the sender migrated to), then serve.
    /// * Otherwise → serve `inner` exactly as Figure 4 would and wrap the
    ///   reply in the same `(epoch, op)` stamp so the client can match it.
    pub fn serve_stamped(
        &mut self,
        from: NodeId,
        epoch: OwnerEpoch,
        op: u64,
        inner: Msg<V>,
    ) -> Option<Msg<V>> {
        self.failover.as_ref()?;
        let page = match &inner {
            Msg::Read { page } => *page,
            Msg::Write { loc, .. } => self.page_of(*loc),
            _ => return None,
        };
        self.observe_epoch(page, epoch);
        let mine = self.epoch_of(page);
        if epoch < mine || self.current_owner(page) != self.id {
            return Some(Msg::Nack {
                page,
                op,
                epoch: mine,
                redirect: self.current_owner(page),
            });
        }
        let reply = self.serve(from, inner)?;
        Some(Msg::Stamped {
            epoch: mine,
            op,
            inner: Box::new(reply),
        })
    }

    /// Declares `node` crashed: every page it currently serves migrates
    /// to its successor (epoch + 1), promoting this node wherever it is
    /// that successor. Returns the migrated pages with their new epochs —
    /// the payload of the `[SUSPECT]` broadcast that spreads the decision
    /// (and, retransmitted by the session layer, eventually re-educates
    /// the crashed node itself when it comes back).
    pub fn suspect(&mut self, node: NodeId) -> Vec<(PageId, OwnerEpoch)> {
        if self.failover.is_none() || node == self.id {
            return Vec::new();
        }
        let mut migrated = Vec::new();
        for page_index in 0..self.config.page_count() {
            let page = PageId::new(page_index);
            if self.current_owner(page) == node {
                let next = self.epoch_of(page).next();
                self.observe_epoch(page, next);
                migrated.push((page, next));
            }
        }
        if let Some(fo) = &mut self.failover {
            if let Some(s) = fo.suspected.get_mut(node.index()) {
                *s = true;
            }
        }
        migrated
    }

    /// Absorbs a peer's `[SUSPECT]` broadcast, adopting each migrated
    /// epoch. When this node *is* the suspect — it crashed, recovered,
    /// and is now being told the cluster moved on — it thereby learns its
    /// former pages migrated and rejoins as a cache-only peer for them.
    pub fn absorb_suspect(&mut self, suspect: NodeId, epochs: &[(PageId, OwnerEpoch)]) {
        if self.failover.is_none() {
            return;
        }
        for (page, epoch) in epochs {
            self.observe_epoch(*page, *epoch);
        }
        if suspect != self.id {
            if let Some(fo) = &mut self.failover {
                if let Some(s) = fo.suspected.get_mut(suspect.index()) {
                    *s = true;
                }
            }
        }
    }

    /// Stores a `[REPL]` shadow from the page's current owner, unless a
    /// strictly fresher shadow is already held.
    pub fn apply_replicate(
        &mut self,
        page: PageId,
        vt: VectorClock,
        slots: Vec<SlotData<V>>,
        origins: Vec<VectorClock>,
    ) {
        let Some(fo) = &self.failover else { return };
        let newer = match fo.shadows.get(&page) {
            Some(s) => !vt.dominated_by(&s.vt),
            None => true,
        };
        if !newer {
            return;
        }
        if self.journaling() {
            self.journal.push(WalRecord::PageInstall {
                page,
                vt: vt.clone(),
                slots: slots.clone(),
                origins: origins.clone(),
                shadow: true,
            });
        }
        self.failover
            .as_mut()
            .expect("checked above")
            .shadows
            .insert(page, ShadowPage { vt, slots, origins });
    }

    /// Drains the owned pages written since the last drain into one
    /// `[REPL]` per page, addressed to its successor. Engines call this
    /// whenever the node yields control (after an operation or a service
    /// round), so the successor's shadow lags the owner by at most the
    /// in-flight window.
    pub fn take_replications(&mut self) -> Vec<(NodeId, Msg<V>)> {
        let dirty = match &mut self.failover {
            Some(fo) => std::mem::take(&mut fo.pending_repl),
            None => return Vec::new(),
        };
        if self.config.nodes() < 2 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(dirty.len());
        for page in dirty {
            // Migrated away since the write: the new owner replicates.
            if self.current_owner(page) != self.id {
                continue;
            }
            let successor = owner_at(
                self.config.owners().as_ref(),
                page,
                self.epoch_of(page).next(),
            );
            if successor == self.id {
                continue;
            }
            let Some(entry) = self.pages.get(&page) else {
                continue;
            };
            out.push((
                successor,
                Msg::Replicate {
                    page,
                    vt: self.stamp(entry.vt.clone()),
                    slots: entry
                        .slots
                        .iter()
                        .map(|s| (Arc::clone(&s.value), s.wid))
                        .collect(),
                    origins: entry.slots.iter().map(|s| (*s.origin).clone()).collect(),
                },
            ));
        }
        out
    }

    // ------------------------------------------------------------------
    // Durability (config-gated; see `dsm_durable`)
    // ------------------------------------------------------------------

    /// `true` iff a [`dsm_durable::DurableConfig`] is attached — the gate
    /// every journal emission checks before allocating anything.
    fn journaling(&self) -> bool {
        self.config.durability().is_some()
    }

    /// This life's incarnation number (0 for a first life; recovered
    /// lives get the persisted maximum plus one). Session layers stamp
    /// frames with it to fence a previous life's traffic.
    #[must_use]
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Drains the records journaled since the last drain. Engines call
    /// this inside the same lock scope as the mutation that produced
    /// them and append the batch to the WAL *before* releasing any
    /// reply — certification implies durability (to the extent the sync
    /// policy promises). Always empty when durability is off.
    pub fn take_journal(&mut self) -> Vec<WalRecord<V>> {
        std::mem::take(&mut self.journal)
    }

    /// A self-contained record sequence reproducing this node's durable
    /// state — what checkpoint compaction writes. Replaying it through
    /// [`CausalState::recover`] on an empty state yields this state
    /// minus the (always discardable) cache.
    #[must_use]
    pub fn durable_image(&self) -> Vec<WalRecord<V>> {
        let mut out = vec![WalRecord::Node {
            vt: self.vt.clone(),
            write_seq: self.write_seq,
            incarnation: self.incarnation,
        }];
        if let Some(fo) = &self.failover {
            let mut epochs: Vec<_> = fo.epochs.iter().map(|(p, e)| (*p, *e)).collect();
            epochs.sort_unstable_by_key(|(p, _)| *p);
            for (page, epoch) in epochs {
                out.push(WalRecord::Epoch { page, epoch });
            }
        }
        let mut owned: Vec<_> = self
            .pages
            .iter()
            .filter(|(p, _)| self.current_owner(**p) == self.id)
            .collect();
        owned.sort_unstable_by_key(|(p, _)| **p);
        for (page, entry) in owned {
            out.push(WalRecord::PageInstall {
                page: *page,
                vt: entry.vt.clone(),
                slots: entry
                    .slots
                    .iter()
                    .map(|s| (Arc::clone(&s.value), s.wid))
                    .collect(),
                origins: entry.slots.iter().map(|s| (*s.origin).clone()).collect(),
                shadow: false,
            });
        }
        if let Some(fo) = &self.failover {
            let mut shadows: Vec<_> = fo.shadows.iter().collect();
            shadows.sort_unstable_by_key(|(p, _)| **p);
            for (page, sh) in shadows {
                out.push(WalRecord::PageInstall {
                    page: *page,
                    vt: sh.vt.clone(),
                    slots: sh.slots.clone(),
                    origins: sh.origins.clone(),
                    shadow: true,
                });
            }
        }
        let mut interest: Vec<_> = self.interest.iter().collect();
        interest.sort_unstable_by_key(|(p, _)| **p);
        for (page, peers) in interest {
            for peer in peers {
                out.push(WalRecord::Interest {
                    page: *page,
                    node: *peer,
                    registered: true,
                });
            }
        }
        out
    }

    /// Rebuilds processor `id` from a recovered record stream
    /// (checkpoint image followed by the surviving log tail, in append
    /// order) as incarnation `incarnation`.
    ///
    /// Recovery is deliberately conservative: the cache is *not*
    /// restored (a cold cache is always causally safe — refetching from
    /// owners is monotone), and any owned page with no durable record
    /// comes back as the initial page (possible only for pages never
    /// written under a certifying sync policy). Replay is idempotent,
    /// so records duplicated across a checkpoint image and the log tail
    /// (the benign checkpoint race) are harmless.
    #[must_use]
    pub fn recover(
        id: NodeId,
        config: CausalConfig<V>,
        records: Vec<WalRecord<V>>,
        incarnation: u32,
    ) -> Self {
        let mut state = Self::new(id, config);
        state.incarnation = incarnation;
        for record in records {
            state.replay(record);
        }
        // Drop everything this node does not currently own: cached
        // copies may be stale relative to writes certified elsewhere
        // while we were down, and shadow-promoted pages belong to the
        // epoch table rebuilt above.
        let owned: Vec<PageId> = state
            .pages
            .keys()
            .filter(|p| state.current_owner(**p) == state.id)
            .copied()
            .collect();
        state.pages.retain(|p, _| owned.contains(p));
        // Safety net: an owned page with no durable record at all (never
        // certified a write under `every_op`, or lost under a weaker
        // policy) restarts from the initial image.
        let n = state.config.nodes() as usize;
        for page_index in 0..state.config.page_count() {
            let page = PageId::new(page_index);
            if state.current_owner(page) == state.id && !state.pages.contains_key(&page) {
                let entry = Self::initial_page(&state.config, page, n);
                state.pages.insert(page, entry);
            }
        }
        state.op_begin_vt = state.vt.clone();
        // The replay helpers above re-journal what they install; none of
        // it is new information. Start this life's journal with a single
        // rejoin watermark carrying the bumped incarnation.
        state.journal.clear();
        if state.journaling() {
            state.journal.push(WalRecord::Node {
                vt: state.vt.clone(),
                write_seq: state.write_seq,
                incarnation,
            });
        }
        state
    }

    /// Applies one WAL record during [`CausalState::recover`].
    fn replay(&mut self, record: WalRecord<V>) {
        match record {
            WalRecord::Node {
                vt,
                write_seq,
                incarnation: _,
            } => {
                self.vt.update(&vt);
                self.write_seq = self.write_seq.max(write_seq);
            }
            WalRecord::Write {
                loc,
                value,
                wid,
                origin,
                node_vt,
                applied,
            } => {
                self.vt.update(&node_vt);
                if wid.writer() == Some(self.id) {
                    self.write_seq = self.write_seq.max(wid.seq() + 1);
                }
                if !applied {
                    return;
                }
                let page = self.page_of(loc);
                let offset = self.offset_of(loc);
                let n = self.config.nodes() as usize;
                let entry = self
                    .pages
                    .entry(page)
                    .or_insert_with(|| Self::initial_page(&self.config, page, n));
                entry.slots[offset] = Slot {
                    value,
                    wid,
                    origin: Arc::new(origin),
                };
                entry.vt.update(&node_vt);
                self.note_owned_write(page);
            }
            WalRecord::PageInstall {
                page,
                vt,
                slots,
                origins,
                shadow,
            } => {
                if shadow {
                    self.apply_replicate(page, vt, slots, origins);
                } else {
                    let slots = slots
                        .into_iter()
                        .zip(origins)
                        .map(|((value, wid), origin)| Slot {
                            value,
                            wid,
                            origin: Arc::new(origin),
                        })
                        .collect();
                    let installed_at = self.tick;
                    self.pages.insert(
                        page,
                        PageEntry {
                            vt,
                            slots,
                            installed_at,
                        },
                    );
                    self.note_owned_write(page);
                }
            }
            WalRecord::Epoch { page, epoch } => {
                if let Some(fo) = &mut self.failover {
                    let merged = fo.epoch_of(page).max(epoch);
                    fo.epochs.insert(page, merged);
                }
            }
            WalRecord::Interest {
                page,
                node,
                registered,
            } => {
                if registered {
                    self.register_interest(page, node);
                } else {
                    self.handle_interest_drop(page, node);
                }
            }
        }
    }

    fn note_owned_write(&mut self, page: PageId) {
        if let Some(fo) = &mut self.failover {
            fo.mark_dirty(page);
        }
    }

    /// Records that `peer` was heard from at transport time `now` (any
    /// message counts as life, not just heartbeats).
    pub fn record_alive(&mut self, peer: NodeId, now: u64) {
        if let Some(fo) = &mut self.failover {
            fo.record_alive(peer, now);
        }
    }

    /// The next outgoing `[HEARTBEAT]`, or `None` with failover disabled.
    pub fn heartbeat_msg(&mut self) -> Option<Msg<V>> {
        let fo = self.failover.as_mut()?;
        let seq = fo.heartbeat_seq;
        fo.heartbeat_seq += 1;
        Some(Msg::Heartbeat { seq })
    }

    /// The peers this node probes with heartbeats: every peer under the
    /// default all-pairs detector (`heartbeat_fanout == 0`, O(n²)
    /// heartbeats per interval cluster-wide), or the `k` ring successors
    /// when the fanout is scoped (O(n·k)). Empty with failover disabled.
    #[must_use]
    pub fn heartbeat_targets(&self) -> Vec<NodeId> {
        let Some(fo) = self.failover_config() else {
            return Vec::new();
        };
        if fo.heartbeat_fanout == 0 {
            (0..self.config.nodes())
                .map(NodeId::new)
                .filter(|p| *p != self.id)
                .collect()
        } else {
            self.config.owners().neighbors(self.id, fo.heartbeat_fanout)
        }
    }

    /// The peers whose probe silence this node is entitled to judge:
    /// `None` (everyone) under all-pairs probing, or the `k` ring
    /// predecessors — exactly the nodes that probe *us* — when the
    /// fanout is scoped.
    fn monitored_peers(&self) -> Option<Vec<NodeId>> {
        let fo = self.failover_config()?;
        if fo.heartbeat_fanout == 0 {
            None
        } else {
            Some(
                self.config
                    .owners()
                    .predecessors(self.id, fo.heartbeat_fanout),
            )
        }
    }

    /// The peers that must hear this node's `[SUSPECT]` broadcast for
    /// `suspect`, given the pages it migrated: `None` means broadcast to
    /// every peer (the default all-pairs detector). Under a scoped
    /// heartbeat fanout the set shrinks to the nodes that serve the
    /// migrated pages at their new epochs, both ring neighborhoods, and
    /// the suspect itself — everyone else learns the epochs lazily, via
    /// NACK redirects or their own timeout-driven suspicion.
    #[must_use]
    pub fn suspect_targets(
        &self,
        suspect: NodeId,
        migrated: &[(PageId, OwnerEpoch)],
    ) -> Option<Vec<NodeId>> {
        let fo = self.failover_config()?;
        if fo.heartbeat_fanout == 0 {
            return None;
        }
        let owners = self.config.owners();
        let mut targets: Vec<NodeId> = migrated
            .iter()
            .map(|(page, epoch)| owner_at(owners.as_ref(), *page, *epoch))
            .collect();
        targets.extend(owners.neighbors(self.id, fo.heartbeat_fanout));
        targets.extend(owners.neighbors(suspect, fo.heartbeat_fanout));
        targets.push(suspect);
        targets.sort_unstable();
        targets.dedup();
        targets.retain(|p| *p != self.id);
        Some(targets)
    }

    /// Peers whose silence now exceeds the suspicion budget
    /// (`heartbeat_interval × suspicion_threshold`); each is returned at
    /// most once. The caller follows up with [`CausalState::suspect`] and
    /// broadcasts the result. With a scoped heartbeat fanout only the
    /// ring predecessors this node monitors are judged — other peers'
    /// probes never come here, so their silence means nothing.
    pub fn check_suspicions(&mut self, now: u64) -> Vec<NodeId> {
        let id = self.id;
        let monitored = self.monitored_peers();
        match &mut self.failover {
            Some(fo) => fo.check_suspicions(id, now, monitored.as_deref()),
            None => Vec::new(),
        }
    }

    /// `true` iff this node currently believes `node` has crashed.
    #[must_use]
    pub fn is_suspected(&self, node: NodeId) -> bool {
        self.failover
            .as_ref()
            .is_some_and(|fo| fo.is_suspected(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcore::Word;

    fn p(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn loc(i: u32) -> Location {
        Location::new(i)
    }

    /// Two nodes; P0 owns even locations, P1 owns odd (round-robin,
    /// page size 1, 4 locations).
    fn pair() -> (CausalState<Word>, CausalState<Word>) {
        let config = CausalConfig::<Word>::builder(2, 4).build();
        (
            CausalState::new(p(0), config.clone()),
            CausalState::new(p(1), config),
        )
    }

    /// Drives a full remote write from `writer` certified by `owner`.
    fn remote_write(
        writer: &mut CausalState<Word>,
        owner: &mut CausalState<Word>,
        l: Location,
        v: Word,
    ) -> WriteDone {
        match writer.begin_write(l, v) {
            WriteStep::Remote {
                owner: dst,
                wid,
                request,
            } => {
                assert_eq!(dst, owner.id());
                let reply = owner.serve(writer.id(), request).unwrap();
                writer.finish_write(Arc::new(v), wid, reply)
            }
            WriteStep::Done { .. } => panic!("expected remote write"),
        }
    }

    /// Drives a full remote read from `reader` served by `owner`.
    fn remote_read(
        reader: &mut CausalState<Word>,
        owner: &mut CausalState<Word>,
        l: Location,
    ) -> (Word, WriteId) {
        match reader.begin_read(l) {
            ReadStep::Miss {
                owner: dst,
                request,
            } => {
                assert_eq!(dst, owner.id());
                let reply = owner.serve(reader.id(), request).unwrap();
                let (value, wid) = reader.finish_read(l, reply);
                (*value, wid)
            }
            ReadStep::Hit { value, wid } => (*value, wid),
        }
    }

    #[test]
    fn initial_reads_of_owned_locations_return_initial_value() {
        let (mut p0, _) = pair();
        match p0.begin_read(loc(0)) {
            ReadStep::Hit { value, wid } => {
                assert_eq!(*value, Word::Zero);
                assert!(wid.is_initial());
            }
            ReadStep::Miss { .. } => panic!("owned location must hit"),
        }
    }

    #[test]
    fn owned_write_completes_locally_and_bumps_vt() {
        let (mut p0, _) = pair();
        let step = p0.begin_write(loc(0), Word::Int(5));
        assert!(matches!(step, WriteStep::Done { .. }));
        assert_eq!(p0.vt().get(0), 1);
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(5));
    }

    #[test]
    fn read_miss_fetches_from_owner_and_caches() {
        let (mut p0, mut p1) = pair();
        p0.begin_write(loc(0), Word::Int(7));
        let (v, wid) = remote_read(&mut p1, &mut p0, loc(0));
        assert_eq!(v, Word::Int(7));
        assert_eq!(wid.writer(), Some(p(0)));
        // Cached: second read hits locally.
        assert!(matches!(p1.begin_read(loc(0)), ReadStep::Hit { .. }));
        assert_eq!(p1.cached_pages(), 1);
        // Reader's VT picked up the owner's page stamp.
        assert_eq!(p1.vt().get(0), 1);
    }

    #[test]
    fn remote_write_round_trip_updates_both_timestamps() {
        let (mut p0, mut p1) = pair();
        let done = remote_write(&mut p1, &mut p0, loc(0), Word::Int(3));
        assert!(done.is_applied());
        // Writer incremented its own component; owner merged it.
        assert_eq!(p1.vt().get(1), 1);
        assert_eq!(p0.vt().get(1), 1);
        // Owner installed the value.
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(3));
        // Writer caches the written value (M_i[x] := (v, VT_i)).
        assert_eq!(p1.peek(loc(0)).unwrap().0, &Word::Int(3));
    }

    #[test]
    fn serve_batch_matches_sequential_service_with_one_sweep() {
        // The same three pipelined writes served one-by-one and as a batch:
        // identical replies, identical final memory, but the batch pays a
        // single sweep pass where sequential service pays three.
        let mk = || pair();
        let (mut seq_owner, mut seq_writer) = mk();
        let (mut batch_owner, mut batch_writer) = mk();

        let writes = [
            (loc(0), Word::Int(1)),
            (loc(2), Word::Int(2)),
            (loc(0), Word::Int(3)),
        ];

        let mut seq_replies = Vec::new();
        let mut batch_requests = Vec::new();
        for (l, v) in writes {
            let WriteStep::Remote { request, .. } = seq_writer.begin_write(l, v) else {
                panic!("expected remote write");
            };
            seq_replies.push(seq_owner.serve(seq_writer.id(), request).unwrap());
            let WriteStep::Remote { request, .. } = batch_writer.begin_write(l, v) else {
                panic!("expected remote write");
            };
            batch_requests.push(request);
        }
        let sweeps_before = batch_owner.sweep_count();
        let batch_replies = batch_owner.serve_batch(batch_writer.id(), batch_requests);

        assert_eq!(batch_replies, seq_replies);
        assert_eq!(batch_owner.vt(), seq_owner.vt());
        assert_eq!(
            batch_owner.peek(loc(0)).unwrap().0,
            seq_owner.peek(loc(0)).unwrap().0
        );
        assert_eq!(batch_owner.sweep_count() - sweeps_before, 1);
        assert!(seq_owner.sweep_count() >= 3);
    }

    #[test]
    fn batched_sweep_drops_the_same_cache_entries_as_sequential() {
        // The owner caches a page of the writer's; a batch of writes must
        // invalidate it exactly as sequential service would.
        let (mut seq_owner, mut seq_writer) = pair();
        let (mut batch_owner, mut batch_writer) = pair();
        for (owner, writer) in [
            (&mut seq_owner, &mut seq_writer),
            (&mut batch_owner, &mut batch_writer),
        ] {
            writer.begin_write(loc(1), Word::Int(7));
            let _ = remote_read(owner, writer, loc(1));
            assert!(owner.has_valid_copy(loc(1)));
            // The writer writes x1 again so its next request's stamp
            // dominates the owner's cached copy of x1.
            writer.begin_write(loc(1), Word::Int(8));
        }

        let WriteStep::Remote { request, .. } = seq_writer.begin_write(loc(0), Word::Int(9)) else {
            panic!("expected remote write");
        };
        let _ = seq_owner.serve(seq_writer.id(), request).unwrap();

        let WriteStep::Remote { request, .. } = batch_writer.begin_write(loc(0), Word::Int(9))
        else {
            panic!("expected remote write");
        };
        let _ = batch_owner.serve_batch(batch_writer.id(), vec![request]);

        assert_eq!(
            batch_owner.has_valid_copy(loc(1)),
            seq_owner.has_valid_copy(loc(1))
        );
        assert!(!batch_owner.has_valid_copy(loc(1)));
        assert_eq!(
            batch_owner.invalidation_count(),
            seq_owner.invalidation_count()
        );
    }

    #[test]
    fn new_value_invalidates_causally_older_cache_entries() {
        // P1 caches x0 (owned by P0). P0 then writes x0 again and x2; when
        // P1 reads x2 it must invalidate its stale cached x0 because the
        // cached stamp is dominated by the incoming one.
        let (mut p0, mut p1) = pair();
        p0.begin_write(loc(0), Word::Int(1));
        let _ = remote_read(&mut p1, &mut p0, loc(0));
        assert!(p1.has_valid_copy(loc(0)));

        p0.begin_write(loc(0), Word::Int(2));
        p0.begin_write(loc(2), Word::Int(9));
        let (v, _) = remote_read(&mut p1, &mut p0, loc(2));
        assert_eq!(v, Word::Int(9));
        // The cached x0 (stamp [1,0]) is dominated by x2's stamp [3,0]:
        // invalidated.
        assert!(!p1.has_valid_copy(loc(0)));
        assert_eq!(p1.invalidation_count(), 1);
        // Next read of x0 misses and sees the new value.
        let (v, _) = remote_read(&mut p1, &mut p0, loc(0));
        assert_eq!(v, Word::Int(2));
    }

    #[test]
    fn concurrent_cache_entries_survive_introduction() {
        // P1 writes its own location x1 (concurrent with everything P0
        // does), then reads x0 from P0. The fetched stamp is concurrent
        // with nothing cached — and P1's own pages are owned, never
        // invalidated.
        let (mut p0, mut p1) = pair();
        p1.begin_write(loc(1), Word::Int(8));
        p0.begin_write(loc(0), Word::Int(4));
        let _ = remote_read(&mut p1, &mut p0, loc(0));
        assert_eq!(p1.peek(loc(1)).unwrap().0, &Word::Int(8));
    }

    #[test]
    fn owner_write_service_invalidates_owner_cache() {
        // P0 caches x1 (owned by P1). P1 then writes x1 (local), writes
        // again... to get the owner's cache swept we need P1 to *send* a
        // write to P0: P1 writes x0. P0's cached copy of x1 is older than
        // the merged stamp → invalidated.
        let (mut p0, mut p1) = pair();
        p1.begin_write(loc(1), Word::Int(1)); // VT1=[0,1]
        let _ = remote_read(&mut p0, &mut p1, loc(1)); // P0 caches x1@[0,1], VT0=[0,1]
        assert!(p0.has_valid_copy(loc(1)));

        p1.begin_write(loc(1), Word::Int(2)); // VT1=[0,2]
        let done = remote_write(&mut p1, &mut p0, loc(0), Word::Int(5)); // VT1=[0,3]
        assert!(done.is_applied());
        // P0's cached x1 has stamp [0,1] < merged [0,3] → invalidated.
        assert!(!p0.has_valid_copy(loc(1)));
    }

    #[test]
    fn paper_exact_mode_does_not_sweep_writer_cache() {
        // Figure 4's writer does not invalidate on W_REPLY. Construct:
        // P1 caches x0@old. P0 advances (writes x0 twice). P1 then writes
        // x2 (owned by P0); the merged reply stamp dominates the cached
        // x0, but PaperExact leaves it; WriterInvalidate drops it.
        for (mode, expect_valid) in [
            (InvalidationMode::PaperExact, true),
            (InvalidationMode::WriterInvalidate, false),
        ] {
            let config = CausalConfig::<Word>::builder(2, 4)
                .invalidation(mode)
                .build();
            let mut p0 = CausalState::new(p(0), config.clone());
            let mut p1 = CausalState::new(p(1), config);

            p0.begin_write(loc(0), Word::Int(1));
            let _ = remote_read(&mut p1, &mut p0, loc(0));
            p0.begin_write(loc(0), Word::Int(2));
            p0.begin_write(loc(0), Word::Int(3));
            let _ = remote_write(&mut p1, &mut p0, loc(2), Word::Int(9));
            assert_eq!(
                p1.has_valid_copy(loc(0)),
                expect_valid,
                "mode {mode:?}: cached x0 validity"
            );
        }
    }

    #[test]
    fn owner_favored_policy_rejects_concurrent_remote_write() {
        // §4.2 scenario: the owner (P0) writes x0; P1, not having seen
        // that write, concurrently writes x0. Under OwnerFavored the
        // remote write is rejected and P1 learns the surviving value.
        let config = CausalConfig::<Word>::builder(2, 4)
            .policy(WritePolicy::OwnerFavored)
            .build();
        let mut p0 = CausalState::new(p(0), config.clone());
        let mut p1 = CausalState::new(p(1), config);

        p0.begin_write(loc(0), Word::Int(10)); // owner's write, origin [1,0]
        let done = remote_write(&mut p1, &mut p0, loc(0), Word::Int(20)); // origin [0,1] — concurrent
        let WriteDone::Rejected { winner, .. } = done else {
            panic!("expected rejection, got {done:?}");
        };
        assert_eq!(winner.writer(), Some(p(0)));
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(10));
        // Loser's cache converged to the winner.
        assert_eq!(p1.peek(loc(0)).unwrap().0, &Word::Int(10));
    }

    #[test]
    fn owner_favored_policy_accepts_causally_later_write() {
        // P1 first *reads* x0 (seeing the owner's write), then writes: the
        // write causally follows and must be applied.
        let config = CausalConfig::<Word>::builder(2, 4)
            .policy(WritePolicy::OwnerFavored)
            .build();
        let mut p0 = CausalState::new(p(0), config.clone());
        let mut p1 = CausalState::new(p(1), config);

        p0.begin_write(loc(0), Word::Int(10));
        let _ = remote_read(&mut p1, &mut p0, loc(0));
        let done = remote_write(&mut p1, &mut p0, loc(0), Word::Int(20));
        assert!(done.is_applied());
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(20));
    }

    #[test]
    fn owner_favored_does_not_protect_non_owner_values() {
        // The installed value was written by P1 (remote); another
        // concurrent remote write by P1... use 3 nodes: P1 and P2 write
        // concurrently to x0 owned by P0. Neither is the owner, so even
        // OwnerFavored applies the later arrival.
        let config = CausalConfig::<Word>::builder(3, 3)
            .policy(WritePolicy::OwnerFavored)
            .build();
        let mut p0 = CausalState::new(p(0), config.clone());
        let mut p1 = CausalState::new(p(1), config.clone());
        let mut p2 = CausalState::new(p(2), config);

        let d1 = remote_write(&mut p1, &mut p0, loc(0), Word::Int(1));
        assert!(d1.is_applied());
        let d2 = remote_write(&mut p2, &mut p0, loc(0), Word::Int(2));
        assert!(d2.is_applied());
        assert_eq!(p0.peek(loc(0)).unwrap().0, &Word::Int(2));
    }

    #[test]
    fn discard_drops_cached_but_not_owned_pages() {
        let (mut p0, mut p1) = pair();
        p0.begin_write(loc(0), Word::Int(1));
        let _ = remote_read(&mut p1, &mut p0, loc(0));
        assert!(p1.has_valid_copy(loc(0)));
        assert!(p1.discard(loc(0)));
        assert!(!p1.has_valid_copy(loc(0)));
        assert!(!p1.discard(loc(0))); // already gone
        assert!(!p0.discard(loc(0))); // owner never discards
        assert!(p0.has_valid_copy(loc(0)));
    }

    #[test]
    fn discard_any_evicts_oldest_cached_page() {
        // Fetch the causally *newer* page first so the second fetch's
        // older stamp does not sweep it: both stay cached.
        let (mut p0, mut p1) = pair();
        p0.begin_write(loc(0), Word::Int(1)); // stamp [1,0]
        p0.begin_write(loc(2), Word::Int(2)); // stamp [2,0]
        let _ = remote_read(&mut p1, &mut p0, loc(2));
        let _ = remote_read(&mut p1, &mut p0, loc(0));
        assert_eq!(p1.cached_pages(), 2);
        let victim = p1.discard_any().unwrap();
        assert_eq!(victim, loc(2).page(1));
        assert_eq!(p1.cached_pages(), 1);
        assert!(p1.has_valid_copy(loc(0)));
    }

    #[test]
    fn cache_capacity_evicts_oldest() {
        let config = CausalConfig::<Word>::builder(2, 8)
            .cache_capacity(1)
            .build();
        let mut p0 = CausalState::new(p(0), config.clone());
        let mut p1 = CausalState::new(p(1), config);
        p0.begin_write(loc(0), Word::Int(1)); // stamp [1,0]
        p0.begin_write(loc(2), Word::Int(2)); // stamp [2,0]
                                              // Fetch newer first (no sweep on the second fetch), so capacity —
                                              // not invalidation — is what evicts.
        let _ = remote_read(&mut p1, &mut p0, loc(2));
        let _ = remote_read(&mut p1, &mut p0, loc(0));
        assert_eq!(p1.cached_pages(), 1);
        assert!(p1.has_valid_copy(loc(0)));
        assert!(!p1.has_valid_copy(loc(2)));
    }

    #[test]
    fn const_pages_survive_sweeps_and_discard() {
        let config = CausalConfig::<Word>::builder(2, 4)
            .const_pages([loc(2).page(1)])
            .build();
        let mut p0 = CausalState::new(p(0), config.clone());
        let mut p1 = CausalState::new(p(1), config);

        p0.begin_write(loc(2), Word::Int(9));
        let _ = remote_read(&mut p1, &mut p0, loc(2));
        // P0 races far ahead; P1 reads x0 with a dominating stamp.
        p0.begin_write(loc(0), Word::Int(1));
        p0.begin_write(loc(0), Word::Int(2));
        let _ = remote_read(&mut p1, &mut p0, loc(0));
        // Const page survived the sweep even though its stamp is dominated.
        assert!(p1.has_valid_copy(loc(2)));
        // And discard refuses to drop it.
        assert!(!p1.discard(loc(2)));
    }

    #[test]
    fn page_granularity_transfers_whole_pages() {
        let config = CausalConfig::<Word>::builder(2, 8).page_size(4).build();
        let mut p0 = CausalState::new(p(0), config.clone());
        let mut p1 = CausalState::new(p(1), config);
        // P0 owns page 0 (locations 0..4).
        p0.begin_write(loc(1), Word::Int(11));
        p0.begin_write(loc(3), Word::Int(33));
        let (v, _) = remote_read(&mut p1, &mut p0, loc(1));
        assert_eq!(v, Word::Int(11));
        // The whole page came over: location 3 now hits locally.
        match p1.begin_read(loc(3)) {
            ReadStep::Hit { value, .. } => assert_eq!(*value, Word::Int(33)),
            ReadStep::Miss { .. } => panic!("page fetch must cache all slots"),
        }
    }

    #[test]
    fn weakly_consistent_execution_of_figure_5_is_produced() {
        // Figure 5: P1: r(y)0 w(x)1 r(y)0 / P2: r(x)0 w(y)1 r(x)0, with
        // P1 = owner(x), P2 = owner(y). Our implementation admits it when
        // each process reads the other's location before any communication.
        let config = CausalConfig::<Word>::builder(2, 2).build();
        // loc0 = x (owner P0), loc1 = y (owner P1).
        let mut p0 = CausalState::new(p(0), config.clone());
        let mut p1 = CausalState::new(p(1), config);

        // Both fetch the other's location first (caching the 0s).
        let (y0, _) = remote_read(&mut p0, &mut p1, loc(1));
        let (x0, _) = remote_read(&mut p1, &mut p0, loc(0));
        assert_eq!((y0, x0), (Word::Zero, Word::Zero));

        // Both write their own location locally (no messages).
        assert!(matches!(
            p0.begin_write(loc(0), Word::Int(1)),
            WriteStep::Done { .. }
        ));
        assert!(matches!(
            p1.begin_write(loc(1), Word::Int(1)),
            WriteStep::Done { .. }
        ));

        // Both re-read the cached copy: still 0. This is the weakly
        // consistent outcome no sequentially consistent memory allows.
        match p0.begin_read(loc(1)) {
            ReadStep::Hit { value, .. } => assert_eq!(*value, Word::Zero),
            ReadStep::Miss { .. } => panic!("cached"),
        }
        match p1.begin_read(loc(0)) {
            ReadStep::Hit { value, .. } => assert_eq!(*value, Word::Zero),
            ReadStep::Miss { .. } => panic!("cached"),
        }
    }

    #[test]
    fn serve_ignores_non_requests() {
        let (mut p0, _) = pair();
        assert!(p0.serve(p(1), Msg::Halt).is_none());
        assert!(p0
            .serve(
                p(1),
                Msg::WriteReply {
                    loc: loc(0),
                    wid: memcore::WriteId::new(p(1), 0),
                    vt: VectorClock::new(2).into(),
                    verdict: WriteVerdict::Applied,
                }
            )
            .is_none());
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn misrouted_read_panics() {
        let (_, mut p1) = pair();
        let _ = p1.serve(
            p(0),
            Msg::Read {
                page: loc(0).page(1),
            },
        );
    }

    #[test]
    fn late_stale_write_does_not_clobber_causally_newer_value() {
        // Regression for the non-blocking enhancement: P2 issues a
        // non-blocking write w2 of x (owned by P0) whose request is slow;
        // P2 then writes its own y; P1 reads y (learning of w2's
        // existence) and writes w1 of x, which the owner certifies FIRST.
        // Causally w2 →* w1. When w2 finally arrives, the owner must NOT
        // install it over w1 — otherwise later readers regress to an
        // overwritten value, violating Definition 2.
        let config = CausalConfig::<Word>::builder(3, 3).build();
        // Round-robin: P0 owns x0, P1 owns x1, P2 owns x2. Use x0 as "x"
        // and x2 as "y".
        let mut p0 = CausalState::new(p(0), config.clone());
        let mut p1 = CausalState::new(p(1), config.clone());
        let mut p2 = CausalState::new(p(2), config);
        let (x, y) = (loc(0), loc(2));

        // P2's slow non-blocking write of x.
        let WriteStep::Remote {
            request: w2_request,
            ..
        } = p2.begin_write_nonblocking(x, Word::Int(2))
        else {
            panic!("P2 does not own x");
        };
        // P2 writes its own y (local).
        assert!(matches!(
            p2.begin_write(y, Word::Int(7)),
            WriteStep::Done { .. }
        ));
        // P1 reads y from P2, picking up w2's causal footprint.
        let (v, _) = remote_read(&mut p1, &mut p2, y);
        assert_eq!(v, Word::Int(7));
        // P1 writes x; the owner certifies it first.
        let done = remote_write(&mut p1, &mut p0, x, Word::Int(1));
        assert!(done.is_applied());
        // Now w2's stale request finally lands at the owner.
        let reply = p0.serve(p(2), w2_request).expect("serve write");
        p2.absorb_write_reply(reply);
        // The owner keeps the causally newer value.
        assert_eq!(
            p0.peek(x).unwrap().0,
            &Word::Int(1),
            "stale write clobbered a causally newer value"
        );
    }

    #[test]
    fn late_reply_is_not_cached_over_fresher_knowledge() {
        // The race the threaded stress suite caught: P1's fetch of x2 is
        // served, then — while the reply is in flight — P1 (as owner of
        // x1) services a write from P0 that causally carries knowledge of
        // a NEWER write of x2. Installing the stale page would let P1's
        // later reads return a provably overwritten value.
        let config = CausalConfig::<Word>::builder(3, 3).build();
        // Round-robin: P0 owns x0, P1 owns x1, P2 owns x2.
        let mut p0 = CausalState::new(p(0), config.clone());
        let mut p1 = CausalState::new(p(1), config.clone());
        let mut p2 = CausalState::new(p(2), config);
        let (x1, x2) = (loc(1), loc(2));

        // P2 writes A; P1's fetch of x2 is served with A; the reply is
        // now "in flight".
        p2.begin_write(x2, Word::Int(100));
        let ReadStep::Miss { request, .. } = p1.begin_read(x2) else {
            panic!("P1 does not own x2");
        };
        let stale_reply = p2.serve(p(1), request).expect("serve read");

        // P2 overwrites with B; P0 reads B (learning of it), then writes
        // x1 — serviced by P1, which thereby absorbs B's causal footprint.
        p2.begin_write(x2, Word::Int(200));
        let _ = remote_read(&mut p0, &mut p2, x2);
        let done = remote_write(&mut p0, &mut p1, x1, Word::Int(7));
        assert!(done.is_applied());

        // The stale reply lands. The read completes with A (legal: no
        // operation of P1 yet follows B), but the page must NOT be cached.
        let (v, _) = p1.finish_read(x2, stale_reply);
        assert_eq!(*v, Word::Int(100));
        assert!(
            !p1.has_valid_copy(x2),
            "stale page cached over fresher knowledge"
        );

        // P1 reads its own x1 (an operation causally following B), then
        // re-reads x2: it must MISS and fetch the current value.
        let ReadStep::Hit { .. } = p1.begin_read(x1) else {
            panic!("owned")
        };
        let (v, _) = remote_read(&mut p1, &mut p2, x2);
        assert_eq!(v, Word::Int(200), "must observe the overwrite");
    }

    #[test]
    fn writer_owner_race_keeps_cache_sweepable() {
        // The race the ring-ownership scale sims caught: P0's write of x1
        // is in flight at owner P1 while P0 — itself the owner of x0 —
        // certifies a write from P2, inflating P0's clock with knowledge
        // P1 never saw. The W_REPLY's stamp is then *concurrent* with
        // P0's clock (neither dominates), so the overtaken guard cannot
        // fire. Caching the written value under the merged clock would
        // fold P2's unrelated component into the entry's stamp, and P1's
        // later page stamps — which causally dominate every overwrite of
        // x1 — could never dominate the inflated entry: the copy would be
        // unsweepable, and P0 could read its own provably overwritten
        // write forever. Caching under the sent stamp VT' keeps the sweep
        // exact.
        let config = CausalConfig::<Word>::builder(3, 6).build();
        // Round-robin: P0 owns x0/x3, P1 owns x1/x4, P2 owns x2/x5.
        let mut p0 = CausalState::new(p(0), config.clone());
        let mut p1 = CausalState::new(p(1), config.clone());
        let mut p2 = CausalState::new(p(2), config);
        let (x0, x1, x4) = (loc(0), loc(1), loc(4));

        // P1 has local activity of its own, so its certification stamp
        // will be concurrent with (not dominated by) P0's inflated clock.
        p1.begin_write(x4, Word::Int(0));

        // P0's remote write of x1 goes in flight.
        let WriteStep::Remote { wid, request, .. } = p0.begin_write(x1, Word::Int(10)) else {
            panic!("P0 does not own x1");
        };

        // While it travels, P0 (as owner of x0) certifies P2's write —
        // absorbing P2's clock component, which P1 knows nothing about.
        let done = remote_write(&mut p2, &mut p0, x0, Word::Int(99));
        assert!(done.is_applied());

        // P1 certifies P0's write and the reply lands: concurrent stamps,
        // so the value caches — and must cache under P1's stamp.
        let reply = p1.serve(p(0), request).expect("serve write");
        let done = p0.finish_write(Arc::new(Word::Int(10)), wid, reply);
        assert!(done.is_applied());
        assert!(p0.has_valid_copy(x1), "certified write caches normally");

        // P1 overwrites x1 locally, then touches x4 so its next page
        // stamp carries the overwrite's causal footprint.
        p1.begin_write(x1, Word::Int(20));
        p1.begin_write(x4, Word::Int(1));

        // P0 fetches x4: the reply stamp dominates P1's certification
        // stamp for x1, so the sweep must evict P0's now-stale copy.
        let _ = remote_read(&mut p0, &mut p1, x4);
        assert!(
            !p0.has_valid_copy(x1),
            "stale copy survived the sweep under an inflated stamp"
        );

        // And the re-read observes the overwrite.
        let (v, _) = remote_read(&mut p0, &mut p1, x1);
        assert_eq!(v, Word::Int(20), "must observe P1's overwrite");
    }

    #[test]
    fn write_ids_are_unique_and_ordered_per_writer() {
        let (mut p0, _) = pair();
        let WriteStep::Done { wid: w1 } = p0.begin_write(loc(0), Word::Int(1)) else {
            panic!()
        };
        let WriteStep::Done { wid: w2 } = p0.begin_write(loc(0), Word::Int(2)) else {
            panic!()
        };
        assert_ne!(w1, w2);
        assert!(w1.seq() < w2.seq());
    }

    #[test]
    fn interest_registers_on_service_and_drops_on_eviction() {
        // Registration is implicit in the request: serving a READ or a
        // WRITE records the peer as holding a copy. Eviction queues the
        // one explicit message the feature has, an [INTEREST] drop to the
        // owner, and absorbing it removes the peer from the set.
        let config = CausalConfig::<Word>::builder(2, 4)
            .interest_scoping(true)
            .cache_capacity(1)
            .build();
        let mut p0 = CausalState::new(p(0), config.clone());
        let mut p1 = CausalState::new(p(1), config);
        let (page0, page2) = (PageId::new(0), PageId::new(2));

        assert!(p0.interested(page0).is_empty());

        // A served READ registers the reader...
        let _ = remote_read(&mut p1, &mut p0, loc(0));
        assert_eq!(p0.interested(page0), &[p(1)]);
        // ...idempotently...
        p1.discard(loc(0));
        let _ = p1.take_interest_msgs(); // drop from the explicit discard
        let _ = remote_read(&mut p1, &mut p0, loc(0));
        assert_eq!(p0.interested(page0), &[p(1)]);
        // ...and a certified WRITE registers the writer too.
        let done = remote_write(&mut p1, &mut p0, loc(2), Word::Int(5));
        assert!(done.is_applied());
        assert_eq!(p0.interested(page2), &[p(1)]);

        // Capacity 1: caching page 2 evicted page 0, queueing a drop.
        let drops = p1.take_interest_msgs();
        assert_eq!(drops.len(), 1);
        let (to, msg) = &drops[0];
        assert_eq!(*to, p(0));
        assert!(matches!(msg, Msg::Interest { page } if *page == page0));
        // The owner absorbs it and forgets the evicted copy — but keeps
        // the page the peer still holds.
        p0.handle_interest_drop(page0, p(1));
        assert!(p0.interested(page0).is_empty());
        assert_eq!(p0.interested(page2), &[p(1)]);
    }

    #[test]
    fn heartbeat_fanout_pins_probe_bill_to_n_times_k() {
        // The satellite claim: scoped probing sends n·k heartbeats per
        // interval instead of all-pairs' n·(n−1) — at n=128, k=2 that is
        // 256 probes instead of 16,256. Pinned exactly, per node, over
        // the whole ring, with monit() as the inverse relation so every
        // probe has a judge and nobody judges an unprobed peer.
        let n = 128u32;
        let k = 2u32;
        let fanout = FailoverConfig {
            heartbeat_fanout: k,
            ..FailoverConfig::default()
        };
        let all_pairs = FailoverConfig::default();
        let ring = memcore::HashRingOwners::new(n, 1, 16);

        let mk = |fo: FailoverConfig| {
            let config = CausalConfig::<Word>::builder(n, n)
                .owners(ring.clone())
                .failover(fo)
                .build();
            (0..n)
                .map(|i| CausalState::new(p(i), config.clone()))
                .collect::<Vec<_>>()
        };

        let scoped: usize = mk(fanout)
            .iter()
            .map(|node| {
                let targets = node.heartbeat_targets();
                assert_eq!(targets.len(), k as usize);
                assert!(!targets.contains(&node.id()));
                targets.len()
            })
            .sum();
        assert_eq!(scoped, (n * k) as usize);

        let unscoped: usize = mk(all_pairs)
            .iter()
            .map(|node| node.heartbeat_targets().len())
            .sum();
        assert_eq!(unscoped, (n * (n - 1)) as usize);
    }
}
